//! # `pulp-hd` — reproduction of *PULP-HD* (DAC 2018)
//!
//! Umbrella crate re-exporting the whole system:
//!
//! * [`hdc`] — binary hyperdimensional computing (the algorithm and
//!   golden model),
//! * [`pulp_sim`] — the cycle-stepped PULP-cluster simulator (cores,
//!   banked TCDM, DMA, barriers, power model),
//! * [`core`](pulp_hd_core) — the accelerator: HD kernels lowered onto
//!   the simulated cluster, platform presets, and the experiment
//!   runners for every table and figure,
//! * [`serve`](pulp_hd_serve) — the concurrent serving front-end:
//!   adaptive micro-batching over any execution backend, with
//!   backpressure, graceful shutdown, and p50/p99 telemetry,
//! * [`emg`] — the synthetic EMG hand-gesture workload,
//! * [`svm`] — the SVM baseline.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example emg_gesture
//! cargo run --release --example scalability
//! cargo run --release --example online_learning
//! ```

#![warn(missing_docs)]

pub use emg;
pub use hdc;
pub use pulp_hd_core;
pub use pulp_hd_serve;
pub use pulp_sim;
pub use svm;
