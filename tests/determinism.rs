//! Whole-system determinism and backend equivalence: every layer, from
//! signal synthesis to the cycle-stepped simulation, is a pure function
//! of its seeds, and every execution backend computes the same
//! classification function.

use emg::{Dataset, SynthConfig};
use hdc::{HdClassifier, HdConfig};
use pulp_hd_core::backend::{
    AccelBackend, ExecutionBackend, FastBackend, GoldenBackend, HdModel, TrainSpec,
    TrainableBackend,
};
use pulp_hd_core::experiments::measure_chain;
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

#[test]
fn dataset_and_simulation_are_reproducible() {
    let synth = SynthConfig {
        reps: 2,
        trial_secs: 0.5,
        ..SynthConfig::paper()
    };
    assert_eq!(
        Dataset::generate(&synth, 3, 1234),
        Dataset::generate(&synth, 3, 1234)
    );

    let params = AccelParams {
        n_words: 32,
        ..AccelParams::emg_default()
    };
    let a = measure_chain(&Platform::wolf_builtin(8), params).unwrap();
    let b = measure_chain(&Platform::wolf_builtin(8), params).unwrap();
    assert_eq!(a.total, b.total);
    assert_eq!(a.map_encode, b.map_encode);
    assert_eq!(a.am, b.am);
}

/// Cross-backend property: on a model trained from synthetic EMG and a
/// stream of random EMG windows, the golden, fast, and accelerated
/// backends return identical predicted classes and Hamming distances
/// (and identical query hypervectors).
#[test]
fn backends_agree_on_random_emg_windows() {
    let synth = SynthConfig {
        reps: 3,
        trial_secs: 1.0,
        ..SynthConfig::paper()
    };
    let data = Dataset::generate(&synth, 2, 4321);
    // Reduced dimension keeps the cycle-level simulation quick; full
    // 313-word and random-shape equivalence is covered in
    // `crates/core/tests/prop_equivalence.rs`.
    let config = HdConfig {
        n_words: 32,
        ..HdConfig::emg_default()
    };
    let mut clf = HdClassifier::new(config, data.classes()).unwrap();
    for w in data.windows_of(&data.training_trial_indices(0.34), config.window) {
        clf.train_window(w.label, &w.codes).unwrap();
    }
    clf.finalize();
    let model = HdModel::from_classifier(&mut clf);

    let all: Vec<usize> = (0..data.trials().len()).collect();
    // The simulated chain consumes one N-gram (= 1 sample) per run, so
    // the shared windows are single samples.
    let windows: Vec<Vec<Vec<u16>>> = data
        .windows_of(&all, 1)
        .into_iter()
        .step_by(113)
        .map(|w| w.codes)
        .collect();
    assert!(windows.len() >= 20, "enough probe windows");

    let mut golden = GoldenBackend.prepare(&model).unwrap();
    let mut fast = FastBackend::with_threads(4).prepare(&model).unwrap();
    let mut accel = AccelBackend::new(Platform::pulpv3(4))
        .prepare(&model)
        .unwrap();

    let golden_verdicts = golden.classify_batch(&windows).unwrap();
    let fast_verdicts = fast.classify_batch(&windows).unwrap();
    for (i, (g, f)) in golden_verdicts.iter().zip(&fast_verdicts).enumerate() {
        assert_eq!(f.class, g.class, "window {i}: fast class diverged");
        assert_eq!(
            f.distances, g.distances,
            "window {i}: fast distances diverged"
        );
        assert_eq!(f.query, g.query, "window {i}: fast query diverged");
    }
    for (i, (w, g)) in windows.iter().zip(&golden_verdicts).enumerate() {
        let a = accel.classify(w).unwrap();
        assert_eq!(a.class, g.class, "window {i}: accel class diverged");
        assert_eq!(
            a.distances, g.distances,
            "window {i}: accel distances diverged"
        );
        assert_eq!(a.query, g.query, "window {i}: accel query diverged");
    }
}

/// Training equivalence on real synthetic EMG: the classic
/// `HdClassifier` loop, the golden trainable session, and the fast
/// trainable session (threaded) all produce the same model from the
/// same labelled windows — and the models they hand off classify the
/// held-out stream identically.
#[test]
fn trainable_backends_reproduce_classifier_training_on_emg() {
    let synth = SynthConfig {
        reps: 3,
        trial_secs: 1.0,
        ..SynthConfig::paper()
    };
    let data = Dataset::generate(&synth, 1, 77);
    let config = HdConfig {
        n_words: 32,
        ..HdConfig::emg_default()
    };
    let train: Vec<emg::Window> =
        data.windows_of(&data.training_trial_indices(0.34), config.window);
    let windows: Vec<Vec<Vec<u16>>> = train.iter().map(|w| w.codes.clone()).collect();
    let labels: Vec<usize> = train.iter().map(|w| w.label).collect();

    // Reference: the golden classifier's own training loop.
    let mut clf = HdClassifier::new(config, data.classes()).unwrap();
    for w in &train {
        clf.train_window(w.label, &w.codes).unwrap();
    }
    clf.finalize();
    let expected = HdModel::from_classifier(&mut clf);

    let spec = TrainSpec::from_config(&config, data.classes()).unwrap();
    let mut golden = GoldenBackend.begin_training(&spec).unwrap();
    let mut fast = FastBackend::with_threads(4).begin_training(&spec).unwrap();
    golden.train_batch(&windows, &labels).unwrap();
    fast.train_batch(&windows, &labels).unwrap();
    let g_model = golden.finalize().unwrap();
    let f_model = fast.finalize().unwrap();
    assert_eq!(g_model.prototypes(), expected.prototypes());
    assert_eq!(f_model.prototypes(), expected.prototypes());

    // Served verdicts agree on the full stream.
    let all: Vec<usize> = (0..data.trials().len()).collect();
    let probe: Vec<Vec<Vec<u16>>> = data
        .windows_of(&all, config.window)
        .into_iter()
        .step_by(53)
        .map(|w| w.codes)
        .collect();
    assert!(probe.len() >= 10, "enough probe windows");
    let mut reference = GoldenBackend.prepare(&expected).unwrap();
    let mut served = fast.into_serving().unwrap();
    assert_eq!(
        served.classify_batch(&probe).unwrap(),
        reference.classify_batch(&probe).unwrap()
    );
}

/// Backend sessions are themselves deterministic: preparing twice from
/// the same model and classifying the same batch reproduces verdicts
/// exactly, independent of thread count.
#[test]
fn backend_sessions_are_reproducible() {
    let params = AccelParams {
        n_words: 16,
        ..AccelParams::emg_default()
    };
    let model = HdModel::random(&params, 99);
    let windows: Vec<Vec<Vec<u16>>> = (0..64)
        .map(|i: usize| {
            vec![(0..params.channels)
                .map(|c| ((i * 257 + c * 6151) % 65_536) as u16)
                .collect()]
        })
        .collect();
    let mut a = FastBackend::with_threads(1).prepare(&model).unwrap();
    let mut b = FastBackend::with_threads(8).prepare(&model).unwrap();
    let va = a.classify_batch(&windows).unwrap();
    let vb = b.classify_batch(&windows).unwrap();
    assert_eq!(va, vb);
}
