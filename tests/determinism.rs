//! Whole-system determinism: every layer, from signal synthesis to the
//! cycle-stepped simulation, is a pure function of its seeds.

use emg::{Dataset, SynthConfig};
use pulp_hd_core::experiments::measure_chain;
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

#[test]
fn dataset_and_simulation_are_reproducible() {
    let synth = SynthConfig { reps: 2, trial_secs: 0.5, ..SynthConfig::paper() };
    assert_eq!(
        Dataset::generate(&synth, 3, 1234),
        Dataset::generate(&synth, 3, 1234)
    );

    let params = AccelParams { n_words: 32, ..AccelParams::emg_default() };
    let a = measure_chain(&Platform::wolf_builtin(8), params).unwrap();
    let b = measure_chain(&Platform::wolf_builtin(8), params).unwrap();
    assert_eq!(a.total, b.total);
    assert_eq!(a.map_encode, b.map_encode);
    assert_eq!(a.am, b.am);
}
