//! Full-scale experiment invariants: the headline numbers of the paper,
//! regenerated at the exact paper workload (313 words, 4 channels,
//! 5 classes, N = 1).

use pulp_hd_core::experiments::{measure_chain, table3};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

#[test]
fn table3_full_scale_speedups_match_paper_shape() {
    let t = table3::run().unwrap();
    let base = t.columns[0].measured;

    // PULPv3 4 cores: paper 3.73x.
    let sp4 = t.columns[1].speedup_vs(&base);
    assert!((3.4..4.1).contains(&sp4), "PULPv3 4c speed-up {sp4}");
    // Wolf 1 core plain: paper 1.23x.
    let spw = t.columns[2].speedup_vs(&base);
    assert!((1.1..1.4).contains(&spw), "Wolf plain speed-up {spw}");
    // Wolf 1 core built-in: paper 2.84x.
    let spb = t.columns[3].speedup_vs(&base);
    assert!((2.2..3.2).contains(&spb), "Wolf built-in speed-up {spb}");
    // Wolf 8 cores built-in: paper 18.38x.
    let sp8 = t.columns[4].speedup_vs(&base);
    assert!((15.0..21.0).contains(&sp8), "Wolf 8c speed-up {sp8}");

    // Kernel load split on one PULPv3 core: paper 92.3% / 7.7%.
    let share = t.columns[0].map_encode_share();
    assert!((0.85..0.95).contains(&share), "MAP+ENC share {share}");

    // AM kernel absolute cycles land within 15% of the paper's 41k.
    let am = t.columns[0].measured.am as f64;
    assert!((34_800.0..47_200.0).contains(&am), "AM cycles {am}");
}

#[test]
fn m4_needs_fewer_cycles_than_pulpv3_single_core() {
    // Table 2's relationship: the M4 runs the serial chain in fewer
    // cycles than the single-core PULPv3 (439k vs 533k in the paper).
    let params = AccelParams::emg_default();
    let m4 = measure_chain(&Platform::cortex_m4(), params).unwrap();
    let p1 = measure_chain(&Platform::pulpv3(1), params).unwrap();
    assert!(
        m4.total < p1.total,
        "M4 {} vs PULPv3 {}",
        m4.total,
        p1.total
    );
}
