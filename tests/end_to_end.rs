//! Cross-crate integration tests: the full system from synthetic EMG to
//! accelerated classification on the simulated platforms.

use emg::{Dataset, SynthConfig};
use hdc::{BinaryHv, HdClassifier, HdConfig};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::pipeline::{native_reference, AccelChain};
use pulp_hd_core::platform::Platform;

/// Train on real (synthetic-EMG) data and verify the accelerated chain
/// classifies a stream of windows identically to the golden model, on
/// every platform.
#[test]
fn trained_model_runs_identically_on_all_platforms() {
    let synth = SynthConfig {
        reps: 3,
        trial_secs: 1.0,
        ..SynthConfig::paper()
    };
    let data = Dataset::generate(&synth, 0, 99);
    // Reduced dimension keeps the cycle-level simulation quick; the
    // full 313-word equivalence is covered in pulp-hd-core's tests.
    let config = HdConfig {
        n_words: 32,
        ..HdConfig::emg_default()
    };
    let mut clf = HdClassifier::new(config, data.classes()).unwrap();
    for w in data.windows_of(&data.training_trial_indices(0.34), config.window) {
        clf.train_window(w.label, &w.codes).unwrap();
    }
    clf.finalize();

    let params = AccelParams {
        n_words: 32,
        ..AccelParams::emg_default()
    };
    let prototypes: Vec<BinaryHv> = (0..data.classes())
        .map(|k| clf.am_mut().prototype(k).clone())
        .collect();

    let all: Vec<usize> = (0..data.trials().len()).collect();
    let windows = data.windows_of(&all, 1); // chain consumes N=1 windows

    for platform in [
        Platform::pulpv3(4),
        Platform::wolf_builtin(8),
        Platform::cortex_m4(),
    ] {
        let mut chain = AccelChain::new(&platform, params).unwrap();
        chain
            .load_model(clf.spatial().cim(), clf.spatial().im(), &prototypes)
            .unwrap();
        for w in windows.iter().step_by(97) {
            let run = chain.classify(&w.codes).unwrap();
            let (query, distances, class) = native_reference(
                clf.spatial().cim(),
                clf.spatial().im(),
                &prototypes,
                &w.codes,
            );
            assert_eq!(run.query, query, "{}: query diverged", platform.name);
            assert_eq!(run.distances, distances, "{}", platform.name);
            assert_eq!(run.class, class, "{}", platform.name);
        }
    }
}

/// The ngram chain (N > 1) agrees with the golden model across a sweep
/// of shapes — channels around the register/scratch boundary, varying N.
#[test]
fn shape_sweep_bit_exactness() {
    for (channels, ngram, cores) in [(3usize, 2usize, 4usize), (5, 3, 8), (6, 5, 2), (8, 10, 8)] {
        let params = AccelParams {
            n_words: 12,
            channels,
            ngram,
            classes: 3,
            ..AccelParams::emg_default()
        };
        let cim = hdc::ContinuousItemMemory::new(params.levels, params.n_words, 5);
        let im = hdc::ItemMemory::new(channels, params.n_words, 6);
        let protos: Vec<BinaryHv> = (0..3).map(|k| BinaryHv::random(12, 70 + k)).collect();
        let mut chain = AccelChain::new(&Platform::wolf_builtin(cores), params).unwrap();
        chain.load_model(&cim, &im, &protos).unwrap();
        let window: Vec<Vec<u16>> = (0..ngram)
            .map(|t| {
                (0..channels)
                    .map(|c| ((t * 7 + c * 13) * 997 % 65536) as u16)
                    .collect()
            })
            .collect();
        let run = chain.classify(&window).unwrap();
        let (query, distances, class) = native_reference(&cim, &im, &protos, &window);
        assert_eq!(run.query, query, "C={channels} N={ngram} cores={cores}");
        assert_eq!(run.distances, distances);
        assert_eq!(run.class, class);
    }
}

/// Robustness claim: classification survives faulty prototype memory
/// (the paper's graceful-degradation argument), end to end through the
/// accelerated chain.
#[test]
fn accelerated_chain_tolerates_prototype_faults() {
    let params = AccelParams {
        n_words: 64,
        ..AccelParams::emg_default()
    };
    let cim = hdc::ContinuousItemMemory::new(params.levels, params.n_words, 1);
    let im = hdc::ItemMemory::new(params.channels, params.n_words, 2);
    // Prototypes from distinct level patterns.
    let patterns: [[u16; 4]; 5] = [
        [1000, 1000, 1000, 1000],
        [60000, 50000, 20000, 9000],
        [12000, 58000, 47000, 15000],
        [40000, 18000, 56000, 35000],
        [14000, 30000, 21000, 61000],
    ];
    let protos: Vec<BinaryHv> = patterns
        .iter()
        .map(|p| native_reference(&cim, &im, &[BinaryHv::zeros(64)], &[p.to_vec()]).0)
        .collect();
    // Flip 8% of every prototype's bits (faulty AM cells).
    let faulty: Vec<BinaryHv> = protos
        .iter()
        .enumerate()
        .map(|(i, p)| p.with_bit_flips(64 * 32 * 8 / 100, i as u64))
        .collect();
    let mut chain = AccelChain::new(&Platform::wolf_builtin(8), params).unwrap();
    chain.load_model(&cim, &im, &faulty).unwrap();
    for (expected, p) in patterns.iter().enumerate() {
        let run = chain.classify(&[p.to_vec()]).unwrap();
        assert_eq!(
            run.class, expected,
            "pattern {expected} misclassified under faults"
        );
    }
}
