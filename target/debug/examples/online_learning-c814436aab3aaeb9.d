/root/repo/target/debug/examples/online_learning-c814436aab3aaeb9.d: examples/online_learning.rs

/root/repo/target/debug/examples/online_learning-c814436aab3aaeb9: examples/online_learning.rs

examples/online_learning.rs:
