/root/repo/target/debug/examples/emg_gesture-69c97a4282894aec.d: examples/emg_gesture.rs Cargo.toml

/root/repo/target/debug/examples/libemg_gesture-69c97a4282894aec.rmeta: examples/emg_gesture.rs Cargo.toml

examples/emg_gesture.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
