/root/repo/target/debug/examples/online_learning-ef9964096ba2bfda.d: examples/online_learning.rs Cargo.toml

/root/repo/target/debug/examples/libonline_learning-ef9964096ba2bfda.rmeta: examples/online_learning.rs Cargo.toml

examples/online_learning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
