/root/repo/target/debug/examples/emg_gesture-8edc3ccdd534c489.d: examples/emg_gesture.rs

/root/repo/target/debug/examples/emg_gesture-8edc3ccdd534c489: examples/emg_gesture.rs

examples/emg_gesture.rs:
