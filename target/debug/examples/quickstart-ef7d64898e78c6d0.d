/root/repo/target/debug/examples/quickstart-ef7d64898e78c6d0.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ef7d64898e78c6d0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
