/root/repo/target/debug/examples/scalability-0d237de28760badc.d: examples/scalability.rs Cargo.toml

/root/repo/target/debug/examples/libscalability-0d237de28760badc.rmeta: examples/scalability.rs Cargo.toml

examples/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
