/root/repo/target/debug/examples/language_id-36245111244d1ed8.d: examples/language_id.rs Cargo.toml

/root/repo/target/debug/examples/liblanguage_id-36245111244d1ed8.rmeta: examples/language_id.rs Cargo.toml

examples/language_id.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
