/root/repo/target/debug/examples/language_id-abae9a01f5994024.d: examples/language_id.rs

/root/repo/target/debug/examples/language_id-abae9a01f5994024: examples/language_id.rs

examples/language_id.rs:
