/root/repo/target/debug/examples/scalability-ead774e567fac4cf.d: examples/scalability.rs

/root/repo/target/debug/examples/scalability-ead774e567fac4cf: examples/scalability.rs

examples/scalability.rs:
