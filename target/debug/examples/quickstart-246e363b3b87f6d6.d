/root/repo/target/debug/examples/quickstart-246e363b3b87f6d6.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-246e363b3b87f6d6: examples/quickstart.rs

examples/quickstart.rs:
