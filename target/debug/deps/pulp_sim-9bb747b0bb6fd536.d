/root/repo/target/debug/deps/pulp_sim-9bb747b0bb6fd536.d: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpulp_sim-9bb747b0bb6fd536.rmeta: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs Cargo.toml

crates/pulp-sim/src/lib.rs:
crates/pulp-sim/src/asm.rs:
crates/pulp-sim/src/cluster.rs:
crates/pulp-sim/src/config.rs:
crates/pulp-sim/src/core.rs:
crates/pulp-sim/src/dma.rs:
crates/pulp-sim/src/isa.rs:
crates/pulp-sim/src/mem.rs:
crates/pulp-sim/src/power.rs:
crates/pulp-sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
