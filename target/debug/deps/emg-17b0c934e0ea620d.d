/root/repo/target/debug/deps/emg-17b0c934e0ea620d.d: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libemg-17b0c934e0ea620d.rmeta: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs Cargo.toml

crates/emg/src/lib.rs:
crates/emg/src/dataset.rs:
crates/emg/src/filters.rs:
crates/emg/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
