/root/repo/target/debug/deps/ablation-9946e5f0794d8f10.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-9946e5f0794d8f10: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
