/root/repo/target/debug/deps/hdc-3cd7fed070911ec5.d: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs

/root/repo/target/debug/deps/libhdc-3cd7fed070911ec5.rlib: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs

/root/repo/target/debug/deps/libhdc-3cd7fed070911ec5.rmeta: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs

crates/hdc/src/lib.rs:
crates/hdc/src/am.rs:
crates/hdc/src/bundle.rs:
crates/hdc/src/classifier.rs:
crates/hdc/src/encoder.rs:
crates/hdc/src/hv.rs:
crates/hdc/src/hv64.rs:
crates/hdc/src/item_memory.rs:
crates/hdc/src/rng.rs:
