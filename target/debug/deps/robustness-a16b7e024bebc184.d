/root/repo/target/debug/deps/robustness-a16b7e024bebc184.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/robustness-a16b7e024bebc184: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
