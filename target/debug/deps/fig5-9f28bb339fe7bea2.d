/root/repo/target/debug/deps/fig5-9f28bb339fe7bea2.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-9f28bb339fe7bea2: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
