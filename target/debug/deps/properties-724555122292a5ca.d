/root/repo/target/debug/deps/properties-724555122292a5ca.d: crates/hdc/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-724555122292a5ca.rmeta: crates/hdc/tests/properties.rs Cargo.toml

crates/hdc/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
