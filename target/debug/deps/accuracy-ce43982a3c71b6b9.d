/root/repo/target/debug/deps/accuracy-ce43982a3c71b6b9.d: crates/bench/src/bin/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-ce43982a3c71b6b9.rmeta: crates/bench/src/bin/accuracy.rs Cargo.toml

crates/bench/src/bin/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
