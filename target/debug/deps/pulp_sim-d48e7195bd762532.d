/root/repo/target/debug/deps/pulp_sim-d48e7195bd762532.d: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs

/root/repo/target/debug/deps/libpulp_sim-d48e7195bd762532.rlib: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs

/root/repo/target/debug/deps/libpulp_sim-d48e7195bd762532.rmeta: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs

crates/pulp-sim/src/lib.rs:
crates/pulp-sim/src/asm.rs:
crates/pulp-sim/src/cluster.rs:
crates/pulp-sim/src/config.rs:
crates/pulp-sim/src/core.rs:
crates/pulp-sim/src/dma.rs:
crates/pulp-sim/src/isa.rs:
crates/pulp-sim/src/mem.rs:
crates/pulp-sim/src/power.rs:
crates/pulp-sim/src/stats.rs:
