/root/repo/target/debug/deps/robustness-b4a1cb85b4f8cbfc.d: crates/bench/src/bin/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-b4a1cb85b4f8cbfc.rmeta: crates/bench/src/bin/robustness.rs Cargo.toml

crates/bench/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
