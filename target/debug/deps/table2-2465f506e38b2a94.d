/root/repo/target/debug/deps/table2-2465f506e38b2a94.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2465f506e38b2a94: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
