/root/repo/target/debug/deps/figures-bb3b0ff584ba64c4.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-bb3b0ff584ba64c4.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
