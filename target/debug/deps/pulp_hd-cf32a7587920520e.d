/root/repo/target/debug/deps/pulp_hd-cf32a7587920520e.d: src/lib.rs

/root/repo/target/debug/deps/libpulp_hd-cf32a7587920520e.rlib: src/lib.rs

/root/repo/target/debug/deps/libpulp_hd-cf32a7587920520e.rmeta: src/lib.rs

src/lib.rs:
