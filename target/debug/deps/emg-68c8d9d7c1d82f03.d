/root/repo/target/debug/deps/emg-68c8d9d7c1d82f03.d: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

/root/repo/target/debug/deps/emg-68c8d9d7c1d82f03: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

crates/emg/src/lib.rs:
crates/emg/src/dataset.rs:
crates/emg/src/filters.rs:
crates/emg/src/synth.rs:
