/root/repo/target/debug/deps/pulp_hd-d96f8e1bab31af55.d: src/lib.rs

/root/repo/target/debug/deps/pulp_hd-d96f8e1bab31af55: src/lib.rs

src/lib.rs:
