/root/repo/target/debug/deps/hdc-aba40abb7062f8d7.d: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libhdc-aba40abb7062f8d7.rmeta: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs Cargo.toml

crates/hdc/src/lib.rs:
crates/hdc/src/am.rs:
crates/hdc/src/bundle.rs:
crates/hdc/src/classifier.rs:
crates/hdc/src/encoder.rs:
crates/hdc/src/hv.rs:
crates/hdc/src/hv64.rs:
crates/hdc/src/item_memory.rs:
crates/hdc/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
