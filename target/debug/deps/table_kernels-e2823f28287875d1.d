/root/repo/target/debug/deps/table_kernels-e2823f28287875d1.d: crates/bench/benches/table_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libtable_kernels-e2823f28287875d1.rmeta: crates/bench/benches/table_kernels.rs Cargo.toml

crates/bench/benches/table_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
