/root/repo/target/debug/deps/properties-a4b48f99e4cae0e6.d: crates/pulp-sim/tests/properties.rs

/root/repo/target/debug/deps/properties-a4b48f99e4cae0e6: crates/pulp-sim/tests/properties.rs

crates/pulp-sim/tests/properties.rs:
