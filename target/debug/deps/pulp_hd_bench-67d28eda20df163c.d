/root/repo/target/debug/deps/pulp_hd_bench-67d28eda20df163c.d: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libpulp_hd_bench-67d28eda20df163c.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
