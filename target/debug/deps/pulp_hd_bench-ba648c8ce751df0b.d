/root/repo/target/debug/deps/pulp_hd_bench-ba648c8ce751df0b.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libpulp_hd_bench-ba648c8ce751df0b.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libpulp_hd_bench-ba648c8ce751df0b.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
