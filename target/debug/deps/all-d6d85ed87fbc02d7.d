/root/repo/target/debug/deps/all-d6d85ed87fbc02d7.d: crates/bench/src/bin/all.rs

/root/repo/target/debug/deps/all-d6d85ed87fbc02d7: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
