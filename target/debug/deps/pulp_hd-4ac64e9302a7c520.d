/root/repo/target/debug/deps/pulp_hd-4ac64e9302a7c520.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpulp_hd-4ac64e9302a7c520.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
