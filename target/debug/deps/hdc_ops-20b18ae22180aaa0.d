/root/repo/target/debug/deps/hdc_ops-20b18ae22180aaa0.d: crates/bench/benches/hdc_ops.rs Cargo.toml

/root/repo/target/debug/deps/libhdc_ops-20b18ae22180aaa0.rmeta: crates/bench/benches/hdc_ops.rs Cargo.toml

crates/bench/benches/hdc_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
