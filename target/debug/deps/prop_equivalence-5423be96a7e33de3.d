/root/repo/target/debug/deps/prop_equivalence-5423be96a7e33de3.d: crates/core/tests/prop_equivalence.rs

/root/repo/target/debug/deps/prop_equivalence-5423be96a7e33de3: crates/core/tests/prop_equivalence.rs

crates/core/tests/prop_equivalence.rs:
