/root/repo/target/debug/deps/accuracy-c96f1a766237dea9.d: crates/bench/src/bin/accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libaccuracy-c96f1a766237dea9.rmeta: crates/bench/src/bin/accuracy.rs Cargo.toml

crates/bench/src/bin/accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
