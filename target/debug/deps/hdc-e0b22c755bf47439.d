/root/repo/target/debug/deps/hdc-e0b22c755bf47439.d: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs

/root/repo/target/debug/deps/hdc-e0b22c755bf47439: crates/hdc/src/lib.rs crates/hdc/src/am.rs crates/hdc/src/bundle.rs crates/hdc/src/classifier.rs crates/hdc/src/encoder.rs crates/hdc/src/hv.rs crates/hdc/src/hv64.rs crates/hdc/src/item_memory.rs crates/hdc/src/rng.rs

crates/hdc/src/lib.rs:
crates/hdc/src/am.rs:
crates/hdc/src/bundle.rs:
crates/hdc/src/classifier.rs:
crates/hdc/src/encoder.rs:
crates/hdc/src/hv.rs:
crates/hdc/src/hv64.rs:
crates/hdc/src/item_memory.rs:
crates/hdc/src/rng.rs:
