/root/repo/target/debug/deps/accuracy-9bba7e81e219bae5.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/debug/deps/accuracy-9bba7e81e219bae5: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
