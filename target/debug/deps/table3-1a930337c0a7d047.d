/root/repo/target/debug/deps/table3-1a930337c0a7d047.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-1a930337c0a7d047: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
