/root/repo/target/debug/deps/pulp_hd-3565c2cc945f77c3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpulp_hd-3565c2cc945f77c3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
