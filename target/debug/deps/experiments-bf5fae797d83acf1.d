/root/repo/target/debug/deps/experiments-bf5fae797d83acf1.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-bf5fae797d83acf1: tests/experiments.rs

tests/experiments.rs:
