/root/repo/target/debug/deps/ablation-bc560e1e4bd4834e.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-bc560e1e4bd4834e.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
