/root/repo/target/debug/deps/svm-e09e5f40265c43c8.d: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

/root/repo/target/debug/deps/libsvm-e09e5f40265c43c8.rlib: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

/root/repo/target/debug/deps/libsvm-e09e5f40265c43c8.rmeta: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

crates/svm/src/lib.rs:
crates/svm/src/fixed.rs:
crates/svm/src/kernel.rs:
crates/svm/src/multiclass.rs:
crates/svm/src/smo.rs:
