/root/repo/target/debug/deps/svm-d202cc9a22a8f159.d: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs Cargo.toml

/root/repo/target/debug/deps/libsvm-d202cc9a22a8f159.rmeta: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs Cargo.toml

crates/svm/src/lib.rs:
crates/svm/src/fixed.rs:
crates/svm/src/kernel.rs:
crates/svm/src/multiclass.rs:
crates/svm/src/smo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
