/root/repo/target/debug/deps/emg-98d99084aba7e2da.d: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

/root/repo/target/debug/deps/libemg-98d99084aba7e2da.rlib: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

/root/repo/target/debug/deps/libemg-98d99084aba7e2da.rmeta: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

crates/emg/src/lib.rs:
crates/emg/src/dataset.rs:
crates/emg/src/filters.rs:
crates/emg/src/synth.rs:
