/root/repo/target/debug/deps/pulp_hd_bench-df228ba9daaba14b.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/pulp_hd_bench-df228ba9daaba14b: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
