/root/repo/target/debug/deps/fig4-6fe809dd705be430.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-6fe809dd705be430: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
