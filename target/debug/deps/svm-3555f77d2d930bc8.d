/root/repo/target/debug/deps/svm-3555f77d2d930bc8.d: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs Cargo.toml

/root/repo/target/debug/deps/libsvm-3555f77d2d930bc8.rmeta: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs Cargo.toml

crates/svm/src/lib.rs:
crates/svm/src/fixed.rs:
crates/svm/src/kernel.rs:
crates/svm/src/multiclass.rs:
crates/svm/src/smo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
