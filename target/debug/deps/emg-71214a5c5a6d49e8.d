/root/repo/target/debug/deps/emg-71214a5c5a6d49e8.d: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libemg-71214a5c5a6d49e8.rmeta: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs Cargo.toml

crates/emg/src/lib.rs:
crates/emg/src/dataset.rs:
crates/emg/src/filters.rs:
crates/emg/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
