/root/repo/target/debug/deps/experiments-b12f8c2dc91b21f4.d: tests/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-b12f8c2dc91b21f4.rmeta: tests/experiments.rs Cargo.toml

tests/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
