/root/repo/target/debug/deps/ablation-c16f313d261606fd.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-c16f313d261606fd.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
