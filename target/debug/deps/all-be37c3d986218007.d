/root/repo/target/debug/deps/all-be37c3d986218007.d: crates/bench/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-be37c3d986218007.rmeta: crates/bench/src/bin/all.rs Cargo.toml

crates/bench/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
