/root/repo/target/debug/deps/end_to_end-8b895a29a1058a14.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8b895a29a1058a14: tests/end_to_end.rs

tests/end_to_end.rs:
