/root/repo/target/debug/deps/determinism-b7d92daa9c1c7423.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-b7d92daa9c1c7423: tests/determinism.rs

tests/determinism.rs:
