/root/repo/target/debug/deps/fig3-c8a8fbc3e3c714ec.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-c8a8fbc3e3c714ec: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
