/root/repo/target/debug/deps/properties-e57b89785e750312.d: crates/hdc/tests/properties.rs

/root/repo/target/debug/deps/properties-e57b89785e750312: crates/hdc/tests/properties.rs

crates/hdc/tests/properties.rs:
