/root/repo/target/debug/deps/table1-79ba3cb15f999d25.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-79ba3cb15f999d25: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
