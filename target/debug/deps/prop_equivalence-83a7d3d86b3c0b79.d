/root/repo/target/debug/deps/prop_equivalence-83a7d3d86b3c0b79.d: crates/core/tests/prop_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libprop_equivalence-83a7d3d86b3c0b79.rmeta: crates/core/tests/prop_equivalence.rs Cargo.toml

crates/core/tests/prop_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
