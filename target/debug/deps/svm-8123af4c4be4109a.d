/root/repo/target/debug/deps/svm-8123af4c4be4109a.d: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

/root/repo/target/debug/deps/svm-8123af4c4be4109a: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

crates/svm/src/lib.rs:
crates/svm/src/fixed.rs:
crates/svm/src/kernel.rs:
crates/svm/src/multiclass.rs:
crates/svm/src/smo.rs:
