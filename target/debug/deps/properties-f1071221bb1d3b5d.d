/root/repo/target/debug/deps/properties-f1071221bb1d3b5d.d: crates/pulp-sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f1071221bb1d3b5d.rmeta: crates/pulp-sim/tests/properties.rs Cargo.toml

crates/pulp-sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
