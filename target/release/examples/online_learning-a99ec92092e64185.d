/root/repo/target/release/examples/online_learning-a99ec92092e64185.d: examples/online_learning.rs

/root/repo/target/release/examples/online_learning-a99ec92092e64185: examples/online_learning.rs

examples/online_learning.rs:
