/root/repo/target/release/examples/quickstart-ea29015f089d4893.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ea29015f089d4893: examples/quickstart.rs

examples/quickstart.rs:
