/root/repo/target/release/examples/scalability-466b9f511b30e638.d: examples/scalability.rs

/root/repo/target/release/examples/scalability-466b9f511b30e638: examples/scalability.rs

examples/scalability.rs:
