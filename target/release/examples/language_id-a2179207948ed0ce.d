/root/repo/target/release/examples/language_id-a2179207948ed0ce.d: examples/language_id.rs

/root/repo/target/release/examples/language_id-a2179207948ed0ce: examples/language_id.rs

examples/language_id.rs:
