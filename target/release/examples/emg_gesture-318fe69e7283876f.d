/root/repo/target/release/examples/emg_gesture-318fe69e7283876f.d: examples/emg_gesture.rs

/root/repo/target/release/examples/emg_gesture-318fe69e7283876f: examples/emg_gesture.rs

examples/emg_gesture.rs:
