/root/repo/target/release/deps/fig3-9e6aa7e9906f2e14.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-9e6aa7e9906f2e14: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
