/root/repo/target/release/deps/robustness-e9dfc85b65d4f917.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-e9dfc85b65d4f917: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
