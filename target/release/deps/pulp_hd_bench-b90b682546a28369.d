/root/repo/target/release/deps/pulp_hd_bench-b90b682546a28369.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libpulp_hd_bench-b90b682546a28369.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libpulp_hd_bench-b90b682546a28369.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
