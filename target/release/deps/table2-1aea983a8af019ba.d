/root/repo/target/release/deps/table2-1aea983a8af019ba.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-1aea983a8af019ba: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
