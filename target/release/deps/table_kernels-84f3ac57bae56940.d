/root/repo/target/release/deps/table_kernels-84f3ac57bae56940.d: crates/bench/benches/table_kernels.rs

/root/repo/target/release/deps/table_kernels-84f3ac57bae56940: crates/bench/benches/table_kernels.rs

crates/bench/benches/table_kernels.rs:
