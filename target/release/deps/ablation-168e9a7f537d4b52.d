/root/repo/target/release/deps/ablation-168e9a7f537d4b52.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-168e9a7f537d4b52: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
