/root/repo/target/release/deps/figures-766e1ffe8a87638b.d: crates/bench/benches/figures.rs

/root/repo/target/release/deps/figures-766e1ffe8a87638b: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
