/root/repo/target/release/deps/pulp_sim-55ca542fc663755f.d: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs

/root/repo/target/release/deps/libpulp_sim-55ca542fc663755f.rlib: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs

/root/repo/target/release/deps/libpulp_sim-55ca542fc663755f.rmeta: crates/pulp-sim/src/lib.rs crates/pulp-sim/src/asm.rs crates/pulp-sim/src/cluster.rs crates/pulp-sim/src/config.rs crates/pulp-sim/src/core.rs crates/pulp-sim/src/dma.rs crates/pulp-sim/src/isa.rs crates/pulp-sim/src/mem.rs crates/pulp-sim/src/power.rs crates/pulp-sim/src/stats.rs

crates/pulp-sim/src/lib.rs:
crates/pulp-sim/src/asm.rs:
crates/pulp-sim/src/cluster.rs:
crates/pulp-sim/src/config.rs:
crates/pulp-sim/src/core.rs:
crates/pulp-sim/src/dma.rs:
crates/pulp-sim/src/isa.rs:
crates/pulp-sim/src/mem.rs:
crates/pulp-sim/src/power.rs:
crates/pulp-sim/src/stats.rs:
