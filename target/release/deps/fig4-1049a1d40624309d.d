/root/repo/target/release/deps/fig4-1049a1d40624309d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-1049a1d40624309d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
