/root/repo/target/release/deps/throughput-e4b52343397012ea.d: crates/bench/benches/throughput.rs

/root/repo/target/release/deps/throughput-e4b52343397012ea: crates/bench/benches/throughput.rs

crates/bench/benches/throughput.rs:
