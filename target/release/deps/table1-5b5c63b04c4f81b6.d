/root/repo/target/release/deps/table1-5b5c63b04c4f81b6.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-5b5c63b04c4f81b6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
