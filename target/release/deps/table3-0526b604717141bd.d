/root/repo/target/release/deps/table3-0526b604717141bd.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-0526b604717141bd: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
