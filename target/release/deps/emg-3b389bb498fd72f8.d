/root/repo/target/release/deps/emg-3b389bb498fd72f8.d: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

/root/repo/target/release/deps/libemg-3b389bb498fd72f8.rlib: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

/root/repo/target/release/deps/libemg-3b389bb498fd72f8.rmeta: crates/emg/src/lib.rs crates/emg/src/dataset.rs crates/emg/src/filters.rs crates/emg/src/synth.rs

crates/emg/src/lib.rs:
crates/emg/src/dataset.rs:
crates/emg/src/filters.rs:
crates/emg/src/synth.rs:
