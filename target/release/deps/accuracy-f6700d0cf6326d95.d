/root/repo/target/release/deps/accuracy-f6700d0cf6326d95.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/release/deps/accuracy-f6700d0cf6326d95: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
