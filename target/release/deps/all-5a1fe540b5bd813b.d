/root/repo/target/release/deps/all-5a1fe540b5bd813b.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-5a1fe540b5bd813b: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
