/root/repo/target/release/deps/pulp_hd-95d5724ea1ddd6cb.d: src/lib.rs

/root/repo/target/release/deps/libpulp_hd-95d5724ea1ddd6cb.rlib: src/lib.rs

/root/repo/target/release/deps/libpulp_hd-95d5724ea1ddd6cb.rmeta: src/lib.rs

src/lib.rs:
