/root/repo/target/release/deps/accuracy-34a7deb84a4aa774.d: crates/bench/src/bin/accuracy.rs

/root/repo/target/release/deps/accuracy-34a7deb84a4aa774: crates/bench/src/bin/accuracy.rs

crates/bench/src/bin/accuracy.rs:
