/root/repo/target/release/deps/hdc_ops-5c8fbb7d65088574.d: crates/bench/benches/hdc_ops.rs

/root/repo/target/release/deps/hdc_ops-5c8fbb7d65088574: crates/bench/benches/hdc_ops.rs

crates/bench/benches/hdc_ops.rs:
