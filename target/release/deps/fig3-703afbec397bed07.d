/root/repo/target/release/deps/fig3-703afbec397bed07.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-703afbec397bed07: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
