/root/repo/target/release/deps/svm-bc69554a0216785f.d: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

/root/repo/target/release/deps/libsvm-bc69554a0216785f.rlib: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

/root/repo/target/release/deps/libsvm-bc69554a0216785f.rmeta: crates/svm/src/lib.rs crates/svm/src/fixed.rs crates/svm/src/kernel.rs crates/svm/src/multiclass.rs crates/svm/src/smo.rs

crates/svm/src/lib.rs:
crates/svm/src/fixed.rs:
crates/svm/src/kernel.rs:
crates/svm/src/multiclass.rs:
crates/svm/src/smo.rs:
