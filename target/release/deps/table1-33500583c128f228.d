/root/repo/target/release/deps/table1-33500583c128f228.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-33500583c128f228: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
