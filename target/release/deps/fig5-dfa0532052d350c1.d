/root/repo/target/release/deps/fig5-dfa0532052d350c1.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-dfa0532052d350c1: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
