/root/repo/target/release/deps/robustness-05866233a44d20f3.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-05866233a44d20f3: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
