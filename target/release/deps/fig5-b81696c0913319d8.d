/root/repo/target/release/deps/fig5-b81696c0913319d8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-b81696c0913319d8: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
