/root/repo/target/release/deps/table2-04886201801c026a.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-04886201801c026a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
