/root/repo/target/release/deps/ablation-905283eae6f00cf0.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-905283eae6f00cf0: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
