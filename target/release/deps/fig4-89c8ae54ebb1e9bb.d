/root/repo/target/release/deps/fig4-89c8ae54ebb1e9bb.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-89c8ae54ebb1e9bb: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
