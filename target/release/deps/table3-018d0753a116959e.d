/root/repo/target/release/deps/table3-018d0753a116959e.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-018d0753a116959e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
