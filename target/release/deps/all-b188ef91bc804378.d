/root/repo/target/release/deps/all-b188ef91bc804378.d: crates/bench/src/bin/all.rs

/root/repo/target/release/deps/all-b188ef91bc804378: crates/bench/src/bin/all.rs

crates/bench/src/bin/all.rs:
