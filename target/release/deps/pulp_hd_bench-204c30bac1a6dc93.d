/root/repo/target/release/deps/pulp_hd_bench-204c30bac1a6dc93.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/pulp_hd_bench-204c30bac1a6dc93: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
