/root/repo/target/release/deps/pulp_hd_core-455dd984669b4b45.d: crates/core/src/lib.rs crates/core/src/backend/mod.rs crates/core/src/backend/accel.rs crates/core/src/backend/fast.rs crates/core/src/backend/golden.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/accuracy.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/report.rs crates/core/src/experiments/robustness.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/pipeline.rs crates/core/src/platform.rs crates/core/src/svm_kernel.rs

/root/repo/target/release/deps/libpulp_hd_core-455dd984669b4b45.rlib: crates/core/src/lib.rs crates/core/src/backend/mod.rs crates/core/src/backend/accel.rs crates/core/src/backend/fast.rs crates/core/src/backend/golden.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/accuracy.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/report.rs crates/core/src/experiments/robustness.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/pipeline.rs crates/core/src/platform.rs crates/core/src/svm_kernel.rs

/root/repo/target/release/deps/libpulp_hd_core-455dd984669b4b45.rmeta: crates/core/src/lib.rs crates/core/src/backend/mod.rs crates/core/src/backend/accel.rs crates/core/src/backend/fast.rs crates/core/src/backend/golden.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablation.rs crates/core/src/experiments/accuracy.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig4.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/report.rs crates/core/src/experiments/robustness.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/kernels.rs crates/core/src/layout.rs crates/core/src/pipeline.rs crates/core/src/platform.rs crates/core/src/svm_kernel.rs

crates/core/src/lib.rs:
crates/core/src/backend/mod.rs:
crates/core/src/backend/accel.rs:
crates/core/src/backend/fast.rs:
crates/core/src/backend/golden.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablation.rs:
crates/core/src/experiments/accuracy.rs:
crates/core/src/experiments/fig3.rs:
crates/core/src/experiments/fig4.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/report.rs:
crates/core/src/experiments/robustness.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/table2.rs:
crates/core/src/experiments/table3.rs:
crates/core/src/kernels.rs:
crates/core/src/layout.rs:
crates/core/src/pipeline.rs:
crates/core/src/platform.rs:
crates/core/src/svm_kernel.rs:
