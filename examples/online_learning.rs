//! Online learning (the paper notes the AM "can be continuously updated
//! for on-line learning"): a deployed classifier tracks electrode drift
//! by updating prototypes from labelled feedback.
//!
//! The whole lifecycle runs on the **fast trainable session**
//! (`TrainableBackend::begin_training`): one-shot batch training over
//! the worker pool, incremental `update_online` adaptation (one
//! counter addition + one vectorized re-threshold of the updated class
//! per feedback window), and `finalize()` exports for batched
//! evaluation — no scalar-only path anywhere, while staying
//! bit-identical to the golden model by the backend equivalence
//! properties.
//!
//! Run with: `cargo run --release --example online_learning`

use emg::{Dataset, SynthConfig};
use hdc::HdConfig;
use pulp_hd_core::backend::{
    ExecutionBackend, FastBackend, TrainSpec, TrainableBackend, TrainingSession,
};

/// Batched accuracy of the trainer's current model over `windows`,
/// served by the fast backend — the deployment path a serving
/// front-end would use.
fn accuracy(
    trainer: &mut dyn TrainingSession,
    windows: &[emg::Window],
) -> Result<f64, Box<dyn std::error::Error>> {
    let model = trainer.finalize()?;
    let mut session = FastBackend::new().prepare(&model)?;
    let batch: Vec<Vec<Vec<u16>>> = windows.iter().map(|w| w.codes.clone()).collect();
    let verdicts = session.classify_batch(&batch)?;
    let ok = verdicts
        .iter()
        .zip(windows)
        .filter(|(v, w)| v.class == w.label)
        .count();
    Ok(ok as f64 / windows.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HdConfig::emg_default();
    let synth = SynthConfig::paper();

    // Train on subject 0 — one-shot, batched through the worker pool.
    let day_one = Dataset::generate(&synth, 0, 42);
    let spec = TrainSpec::from_config(&config, day_one.classes())?;
    let mut trainer = FastBackend::new().begin_training(&spec)?;
    let train: Vec<emg::Window> =
        day_one.windows_of(&day_one.training_trial_indices(0.25), config.window);
    let batch: Vec<Vec<Vec<u16>>> = train.iter().map(|w| w.codes.clone()).collect();
    let labels: Vec<usize> = train.iter().map(|w| w.label).collect();
    trainer.train_batch(&batch, &labels)?;

    // …then deploy on a drifted session (same person, shifted
    // electrodes ⇒ a different synthetic subject shares gesture
    // structure but not pattern details).
    let day_two = Dataset::generate(&synth, 7, 42);
    let all: Vec<usize> = (0..day_two.trials().len()).collect();
    let windows = day_two.windows_of(&all, config.window);
    let before = accuracy(trainer.as_mut(), &windows)?;

    // Adapt online: the user occasionally confirms the gesture label,
    // and each confirmation costs one incremental prototype update.
    for (i, w) in windows.iter().enumerate() {
        if i % 7 == 0 {
            let _ = trainer.update_online(&w.codes, w.label)?;
        }
    }
    let after = accuracy(trainer.as_mut(), &windows)?;
    println!(
        "accuracy on drifted session: {:.1}% -> {:.1}% after online updates",
        100.0 * before,
        100.0 * after
    );
    assert!(after >= before, "online adaptation must not hurt");
    Ok(())
}
