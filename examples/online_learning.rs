//! Online learning (the paper notes the AM "can be continuously updated
//! for on-line learning"): a deployed classifier tracks electrode drift
//! by updating prototypes from labelled feedback. Accuracy before and
//! after adaptation is evaluated by exporting the model to the batched
//! fast backend — the deployment path a serving front-end would use.
//!
//! Run with: `cargo run --release --example online_learning`

use emg::{Dataset, SynthConfig};
use hdc::{HdClassifier, HdConfig};
use pulp_hd_core::backend::{ExecutionBackend, FastBackend, HdModel};

/// Batched accuracy of the classifier's current model over `windows`.
fn accuracy(
    clf: &mut HdClassifier,
    windows: &[emg::Window],
) -> Result<f64, Box<dyn std::error::Error>> {
    let model = HdModel::from_classifier(clf);
    let mut session = FastBackend::new().prepare(&model)?;
    let batch: Vec<Vec<Vec<u16>>> = windows.iter().map(|w| w.codes.clone()).collect();
    let verdicts = session.classify_batch(&batch)?;
    let ok = verdicts
        .iter()
        .zip(windows)
        .filter(|(v, w)| v.class == w.label)
        .count();
    Ok(ok as f64 / windows.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HdConfig::emg_default();
    let synth = SynthConfig::paper();

    // Train on subject 0…
    let day_one = Dataset::generate(&synth, 0, 42);
    let mut clf = HdClassifier::new(config, day_one.classes())?;
    for w in day_one.windows_of(&day_one.training_trial_indices(0.25), config.window) {
        clf.train_window(w.label, &w.codes)?;
    }
    clf.finalize();

    // …then deploy on a drifted session (same person, shifted
    // electrodes ⇒ a different synthetic subject shares gesture
    // structure but not pattern details).
    let day_two = Dataset::generate(&synth, 7, 42);
    let all: Vec<usize> = (0..day_two.trials().len()).collect();
    let windows = day_two.windows_of(&all, config.window);
    let before = accuracy(&mut clf, &windows)?;

    // Adapt online: the user occasionally confirms the gesture label.
    for (i, w) in windows.iter().enumerate() {
        if i % 7 == 0 {
            let _ = clf.predict_and_adapt(&w.codes, Some(w.label))?;
        }
    }
    let after = accuracy(&mut clf, &windows)?;
    println!(
        "accuracy on drifted session: {:.1}% -> {:.1}% after online updates",
        100.0 * before,
        100.0 * after
    );
    assert!(after >= before, "online adaptation must not hurt");
    Ok(())
}
