//! Online learning (the paper notes the AM "can be continuously updated
//! for on-line learning"): a deployed classifier tracks electrode drift
//! by updating prototypes from labelled feedback.
//!
//! Run with: `cargo run --release --example online_learning`

use emg::{Dataset, SynthConfig};
use hdc::{HdClassifier, HdConfig};

fn accuracy(clf: &HdClassifier, windows: &[emg::Window]) -> f64 {
    let ok = windows
        .iter()
        .filter(|w| clf.predict(&w.codes).unwrap().class() == w.label)
        .count();
    ok as f64 / windows.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HdConfig::emg_default();
    let synth = SynthConfig::paper();

    // Train on subject 0…
    let day_one = Dataset::generate(&synth, 0, 42);
    let mut clf = HdClassifier::new(config, day_one.classes())?;
    for w in day_one.windows_of(&day_one.training_trial_indices(0.25), config.window) {
        clf.train_window(w.label, &w.codes)?;
    }
    clf.finalize();

    // …then deploy on a drifted session (same person, shifted
    // electrodes ⇒ a different synthetic subject shares gesture
    // structure but not pattern details).
    let day_two = Dataset::generate(&synth, 7, 42);
    let all: Vec<usize> = (0..day_two.trials().len()).collect();
    let windows = day_two.windows_of(&all, config.window);
    let before = accuracy(&clf, &windows);

    // Adapt online: the user occasionally confirms the gesture label.
    for (i, w) in windows.iter().enumerate() {
        if i % 7 == 0 {
            let _ = clf.predict_and_adapt(&w.codes, Some(w.label))?;
        }
    }
    let after = accuracy(&clf, &windows);
    println!("accuracy on drifted session: {:.1}% -> {:.1}% after online updates",
             100.0 * before, 100.0 * after);
    assert!(after >= before, "online adaptation must not hurt");
    Ok(())
}
