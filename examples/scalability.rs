//! Scalability exploration (the paper's §5.2): how cycles scale with
//! hypervector dimension, N-gram size, core count, and channel count on
//! the Wolf cluster — a compact interactive version of Figs. 3–5 — plus
//! the host-side axes the backend layer adds: batched throughput of the
//! fast backend against the golden model, and a `ShardedBackend` shard
//! sweep (both strategies, cross-checked bit-exact against golden —
//! the in-process analogue of the paper's multi-cluster scaling).
//!
//! Run with: `cargo run --release --example scalability`

use std::time::Instant;

use pulp_hd_core::backend::{
    ExecutionBackend, FastBackend, GoldenBackend, HdModel, ShardSpec, ShardedBackend,
};
use pulp_hd_core::experiments::{measure_chain, required_mhz};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = AccelParams::emg_default();

    println!("dimension sweep (Wolf 8 cores built-in, N=1):");
    for words in [63usize, 125, 188, 250, 313] {
        let run = measure_chain(
            &Platform::wolf_builtin(8),
            AccelParams {
                n_words: words,
                ..base
            },
        )?;
        println!("  D = {:>6} bits: {:>7} cycles", words * 32, run.total);
    }

    println!("\ncore sweep (Wolf built-in, 10,016-bit, N=5):");
    let params = AccelParams { ngram: 5, ..base };
    let one = measure_chain(&Platform::wolf_builtin(1), params)?;
    for cores in [1usize, 2, 4, 8] {
        let run = measure_chain(&Platform::wolf_builtin(cores), params)?;
        println!(
            "  {cores} core(s): {:>8} cycles  speed-up {:.2}x",
            run.total,
            one.total as f64 / run.total as f64
        );
    }

    println!("\nchannel sweep (Wolf 8 cores built-in, 10,016-bit, N=1):");
    for channels in [4usize, 16, 64, 256] {
        let run = measure_chain(&Platform::wolf_builtin(8), AccelParams { channels, ..base })?;
        println!(
            "  {channels:>3} channels: {:>8} cycles  ({:.1} MHz for 10 ms)",
            run.total,
            required_mhz(run.total)
        );
    }

    println!("\nhost batch throughput (10,016-bit, batch of 256 windows):");
    let model = HdModel::random(&base, 0x5CA1E);
    let windows: Vec<Vec<Vec<u16>>> = (0..256)
        .map(|i: usize| {
            vec![(0..base.channels)
                .map(|c| ((i * 131 + c * 7919) % 65_536) as u16)
                .collect()]
        })
        .collect();
    let mut golden = GoldenBackend.prepare(&model)?;
    let mut fast = FastBackend::new().prepare(&model)?;
    for (name, session) in [("golden", &mut golden), ("fast", &mut fast)] {
        let start = Instant::now();
        let verdicts = session.classify_batch(&windows)?;
        let secs = start.elapsed().as_secs_f64();
        println!(
            "  {name:6}: {:>8.0} windows/s ({} classified)",
            windows.len() as f64 / secs,
            verdicts.len()
        );
    }

    // The scale-out axis: one engine fanned across N sessions. Both
    // strategies must reproduce the golden verdicts bit for bit — the
    // merge (chunk reassembly for batch-sharding, min-distance across
    // AM slices for class-sharding) is part of the correctness
    // contract, not just a perf knob.
    println!("\nsharded fan-out (10,016-bit, batch of 256 windows, thread budget split):");
    let expected = golden.classify_batch(&windows)?;
    for shards in [1usize, 2, 4] {
        for spec in [ShardSpec::Batch(shards), ShardSpec::Class(shards)] {
            let mut session = ShardedBackend::fast(spec)?.prepare(&model)?;
            let start = Instant::now();
            let verdicts = session.classify_batch(&windows)?;
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(verdicts, expected, "{spec:?} diverged from golden");
            println!(
                "  {:>5}x{shards}: {:>8.0} windows/s (bit-exact vs golden)",
                match spec {
                    ShardSpec::Batch(_) => "batch",
                    ShardSpec::Class(_) => "class",
                },
                windows.len() as f64 / secs,
            );
        }
    }
    Ok(())
}
