//! The paper's headline application: EMG hand-gesture recognition.
//!
//! Generates a synthetic subject, trains per the paper's protocol (25 %
//! of trials), evaluates accuracy through the batched fast backend,
//! then executes classifications on the simulated PULPv3 and Wolf
//! platforms through the same backend interface and reports cycles,
//! operating frequency for the 10 ms deadline, and power from the
//! silicon-fitted model.
//!
//! Run with: `cargo run --release --example emg_gesture`

use emg::{Dataset, SynthConfig, GESTURE_NAMES};
use hdc::HdConfig;
use pulp_hd_core::backend::{
    AccelBackend, ExecutionBackend, FastBackend, TrainSpec, TrainableBackend,
};
use pulp_hd_core::platform::Platform;
use pulp_sim::{OperatingPoint, PowerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- data + one-shot training through the fast backend ----------
    let synth = SynthConfig::paper();
    let data = Dataset::generate(&synth, 0, 42);
    let config = HdConfig::emg_default();
    let spec = TrainSpec::from_config(&config, data.classes())?;
    let mut trainer = FastBackend::new().begin_training(&spec)?;

    let train_idx = data.training_trial_indices(0.25);
    let train = data.windows_of(&train_idx, config.window);
    let windows: Vec<Vec<Vec<u16>>> = train.iter().map(|w| w.codes.clone()).collect();
    let labels: Vec<usize> = train.iter().map(|w| w.label).collect();
    trainer.train_batch(&windows, &labels)?;
    let model = trainer.finalize()?;

    // --- accuracy over all windows, batched through the fast backend --
    let all_idx: Vec<usize> = (0..data.trials().len()).collect();
    let test = data.windows_of(&all_idx, config.window);
    let batch: Vec<Vec<Vec<u16>>> = test.iter().map(|w| w.codes.clone()).collect();
    let mut fast = FastBackend::new().prepare(&model)?;
    let verdicts = fast.classify_batch(&batch)?;
    let correct = verdicts
        .iter()
        .zip(&test)
        .filter(|(v, w)| v.class == w.label)
        .count();
    println!(
        "subject 0: {:.1}% window accuracy over {} windows ({} gestures)",
        100.0 * correct as f64 / test.len() as f64,
        test.len(),
        GESTURE_NAMES.len(),
    );

    // --- the same model on the simulated platforms ------------------
    // Demo input: a mid-hold sample of a "closed hand" trial.
    let demo = test
        .iter()
        .filter(|w| w.label == 1)
        .nth(60)
        .expect("class 1 windows exist");
    let sample = vec![demo.codes[0].clone()];
    let power = PowerModel::pulpv3();

    for platform in [
        Platform::pulpv3(1),
        Platform::pulpv3(4),
        Platform::wolf_builtin(8),
    ] {
        let mut session = AccelBackend::new(platform.clone()).prepare(&model)?;
        let verdict = session.classify(&sample)?;
        let cycles = verdict.cycles.expect("simulated backend reports cycles");
        let mhz = cycles.total as f64 / 10_000.0; // 10 ms deadline
        print!(
            "{:24} {:>8} cycles -> {:5.1} MHz for 10 ms",
            platform.name, cycles.total, mhz
        );
        if platform.name.starts_with("PULPv3") {
            let volts = if platform.cores() == 4 { 0.5 } else { 0.7 };
            let p = power.breakdown(platform.cores(), OperatingPoint::new(volts, mhz));
            print!("   {:4.2} mW @ {volts} V", p.total_mw());
        }
        println!("   predicted: {}", GESTURE_NAMES[verdict.class]);
    }
    Ok(())
}
