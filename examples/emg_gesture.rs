//! The paper's headline application: EMG hand-gesture recognition.
//!
//! Generates a synthetic subject, trains per the paper's protocol (25 %
//! of trials), evaluates accuracy, then executes classifications on the
//! simulated PULPv3 and Wolf platforms and reports cycles, operating
//! frequency for the 10 ms deadline, and power from the silicon-fitted
//! model.
//!
//! Run with: `cargo run --release --example emg_gesture`

use emg::{Dataset, SynthConfig, GESTURE_NAMES};
use hdc::{HdClassifier, HdConfig};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::pipeline::AccelChain;
use pulp_hd_core::platform::Platform;
use pulp_sim::{OperatingPoint, PowerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- data + golden-model training -------------------------------
    let synth = SynthConfig::paper();
    let data = Dataset::generate(&synth, 0, 42);
    let config = HdConfig::emg_default();
    let mut clf = HdClassifier::new(config, data.classes())?;

    let train_idx = data.training_trial_indices(0.25);
    let train = data.windows_of(&train_idx, config.window);
    for w in &train {
        clf.train_window(w.label, &w.codes)?;
    }
    clf.finalize();

    let all_idx: Vec<usize> = (0..data.trials().len()).collect();
    let test = data.windows_of(&all_idx, config.window);
    let correct = test
        .iter()
        .filter(|w| clf.predict(&w.codes).unwrap().class() == w.label)
        .count();
    println!(
        "subject 0: {:.1}% window accuracy over {} windows ({} gestures)",
        100.0 * correct as f64 / test.len() as f64,
        test.len(),
        GESTURE_NAMES.len(),
    );

    // --- the same model on the simulated platforms ------------------
    let params = AccelParams::emg_default();
    let prototypes: Vec<_> = (0..data.classes())
        .map(|k| clf.am_mut().prototype(k).clone())
        .collect();
    // Demo input: a mid-hold sample of a "closed hand" trial.
    let demo = test
        .iter()
        .filter(|w| w.label == 1)
        .nth(60)
        .expect("class 1 windows exist");
    let sample = vec![demo.codes[0].clone()];
    let power = PowerModel::pulpv3();

    for platform in [Platform::pulpv3(1), Platform::pulpv3(4), Platform::wolf_builtin(8)] {
        let mut chain = AccelChain::new(&platform, params)?;
        chain.load_model(clf.spatial().cim(), clf.spatial().im(), &prototypes)?;
        let run = chain.classify(&sample)?;
        let mhz = run.cycles_total as f64 / 10_000.0; // 10 ms deadline
        print!(
            "{:24} {:>8} cycles -> {:5.1} MHz for 10 ms",
            platform.name, run.cycles_total, mhz
        );
        if platform.name.starts_with("PULPv3") {
            let volts = if platform.cores() == 4 { 0.5 } else { 0.7 };
            let p = power.breakdown(platform.cores(), OperatingPoint::new(volts, mhz));
            print!("   {:4.2} mW @ {volts} V", p.total_mw());
        }
        println!(
            "   predicted: {}",
            GESTURE_NAMES[run.class]
        );
    }
    Ok(())
}
