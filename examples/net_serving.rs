//! The wire front-end end to end: train an EMG gesture model, serve it
//! over a Unix-domain socket through `pulp-hd-serve`'s network layer,
//! and drive it with a crowd of closed-loop [`NetClient`]s — then pull
//! the server's full telemetry *over the wire* (`Stats`) and probe its
//! health endpoint, exactly as a load balancer would. A served verdict
//! is cross-checked bit-identical against a direct session
//! classification.
//!
//! Run with: `cargo run --release --example net_serving`

use std::time::Duration;

use emg::{Dataset, SynthConfig};
use hdc::HdConfig;
use pulp_hd_core::backend::{ExecutionBackend, FastBackend, TrainSpec, TrainableBackend};
use pulp_hd_serve::net::{Endpoint, NetClient, NetClientConfig, NetConfig, NetServer};
use pulp_hd_serve::{ServeConfig, Server};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 100;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- train through the seam, exactly like the serving example -----
    let synth = SynthConfig::paper();
    let data = Dataset::generate(&synth, 0, 42);
    let config = HdConfig::emg_default();
    let spec = TrainSpec::from_config(&config, data.classes())?;
    let backend = FastBackend::try_with_threads(
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    )?;
    let mut trainer = backend.begin_training(&spec)?;
    let train_idx = data.training_trial_indices(0.25);
    let train = data.windows_of(&train_idx, config.window);
    let windows: Vec<Vec<Vec<u16>>> = train.iter().map(|w| w.codes.clone()).collect();
    let labels: Vec<usize> = train.iter().map(|w| w.label).collect();
    trainer.train_batch(&windows, &labels)?;
    let model = trainer.finalize()?;
    let mut direct = backend.prepare(&model)?;

    // --- put the trained session behind the wire ----------------------
    let serve_config = ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_micros(200),
        queue_depth: 1024,
        ..ServeConfig::default()
    };
    let server = Server::from_training(trainer, serve_config)?;
    let socket =
        std::env::temp_dir().join(format!("pulp-hd-net-serving-{}.sock", std::process::id()));
    let net = NetServer::spawn(
        server,
        &[Endpoint::Uds(socket.clone())],
        NetConfig::default(),
    )?;
    println!("serving the trained model on {}", socket.display());

    // --- a load balancer's view: the health endpoint -------------------
    let mut probe = NetClient::connect_uds(&socket, NetClientConfig::default())?;
    let health = probe.health()?;
    println!(
        "health probe: serving {} ({} shards reported)",
        health.serving,
        health.shard_healthy.len()
    );

    // --- a crowd of closed-loop wire clients ---------------------------
    let all_idx: Vec<usize> = (0..data.trials().len()).collect();
    let probes: Vec<Vec<Vec<u16>>> = data
        .windows_of(&all_idx, config.window)
        .into_iter()
        .map(|w| w.codes)
        .collect();
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let mut lanes = Vec::new();
        for lane in 0..CLIENTS {
            let mut client = NetClient::connect_uds(&socket, NetClientConfig::default())?;
            let probes = &probes;
            lanes.push(scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let probe = &probes[(lane * REQUESTS_PER_CLIENT + i) % probes.len()];
                    client.classify(probe).expect("wire classification");
                }
            }));
        }
        for lane in lanes {
            lane.join().expect("client lane");
        }
        Ok(())
    })?;

    // --- determinism: a wire verdict is bit-identical to the same
    //     window classified directly on the session --------------------
    let served = probe.classify(&probes[7])?;
    let direct_verdict = direct.classify(&probes[7])?;
    assert_eq!(served, direct_verdict, "the wire must not change verdicts");

    // --- the server's full telemetry, fetched over the wire ------------
    let stats = probe.stats()?;
    println!("\nwire ServerStats (fetched via the Stats command):");
    println!(
        "  {} requests in {} batches (mean batch {:.1}, largest service {} µs)",
        stats.completed, stats.batches, stats.mean_batch, stats.batch_service_max_us
    );
    println!(
        "  latency p50 {} µs   p95 {} µs   p99 {} µs   max {} µs",
        stats.p50_us, stats.p95_us, stats.p99_us, stats.latency_max_us
    );
    println!(
        "  {:.0} windows/s across {} wire clients ({} rejected, {} deadline-shed)",
        stats.windows_per_sec, CLIENTS, stats.rejected, stats.deadline_expired
    );

    drop(probe);
    let (_, net_stats) = net.shutdown();
    println!(
        "\nwire telemetry: {} connections accepted, {} frames, {} responses, {} malformed",
        net_stats.accepted, net_stats.frames, net_stats.responses, net_stats.malformed
    );
    println!("wire verdicts are bit-identical to direct classification ✓");
    Ok(())
}
