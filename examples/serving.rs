//! The serving front-end end to end: train an EMG gesture model through
//! the backend seam, put it behind `pulp-hd-serve`'s adaptive
//! micro-batcher, and drive it with a crowd of concurrent closed-loop
//! clients — then read the telemetry the server kept while it worked
//! (throughput, batch shapes, p50/p95/p99 latency) and cross-check a
//! served verdict against a direct session classification.
//!
//! Run with: `cargo run --release --example serving`

use std::time::Duration;

use emg::{Dataset, SynthConfig};
use hdc::HdConfig;
use pulp_hd_core::backend::{ExecutionBackend, FastBackend, TrainSpec, TrainableBackend};
use pulp_hd_serve::{ServeConfig, Server, TrySubmitError};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- train through the seam, exactly like emg_gesture ------------
    let synth = SynthConfig::paper();
    let data = Dataset::generate(&synth, 0, 42);
    let config = HdConfig::emg_default();
    let spec = TrainSpec::from_config(&config, data.classes())?;
    let backend = FastBackend::try_with_threads(
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    )?;
    let mut trainer = backend.begin_training(&spec)?;
    let train_idx = data.training_trial_indices(0.25);
    let train = data.windows_of(&train_idx, config.window);
    let windows: Vec<Vec<Vec<u16>>> = train.iter().map(|w| w.codes.clone()).collect();
    let labels: Vec<usize> = train.iter().map(|w| w.label).collect();
    trainer.train_batch(&windows, &labels)?;
    let model = trainer.finalize()?;

    // --- keep a direct session for the determinism cross-check --------
    let mut direct = backend.prepare(&model)?;

    // --- train → deploy: the trained session goes straight behind the
    //     server (Server::from_training == into_serving + spawn) -------
    let serve_config = ServeConfig {
        max_batch: 64,
        max_delay: Duration::from_micros(200),
        queue_depth: 1024,
        ..ServeConfig::default()
    };
    let server = Server::from_training(trainer, serve_config)?;
    println!(
        "serving the trained model: max_batch {}, max_delay {:?}, queue depth {}",
        serve_config.max_batch, serve_config.max_delay, serve_config.queue_depth
    );

    // --- a crowd of closed-loop clients -------------------------------
    let all_idx: Vec<usize> = (0..data.trials().len()).collect();
    let probes: Vec<Vec<Vec<u16>>> = data
        .windows_of(&all_idx, config.window)
        .into_iter()
        .map(|w| w.codes)
        .collect();
    std::thread::scope(|scope| {
        for lane in 0..CLIENTS {
            let client = server.client();
            let probes = &probes;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let probe = &probes[(lane * REQUESTS_PER_CLIENT + i) % probes.len()];
                    client.classify(probe).expect("served classification");
                }
            });
        }
    });

    // --- and one non-blocking caller that sheds load on overload ------
    let client = server.client();
    match client.try_submit(probes[0].clone()) {
        Ok(ticket) => {
            let verdict = ticket.wait()?;
            println!(
                "non-blocking submit answered: class {} (gesture window)",
                verdict.class
            );
        }
        Err(TrySubmitError::Overloaded) => {
            println!("non-blocking submit shed load: queue full (Overloaded)");
        }
        Err(e) => return Err(e.into()),
    }

    // --- determinism: a served verdict is bit-identical to the same
    //     window classified directly on the session --------------------
    let served = client.classify(&probes[7])?;
    let direct_verdict = direct.classify(&probes[7])?;
    assert_eq!(served, direct_verdict, "serving must not change verdicts");

    // --- the server's own account of its work --------------------------
    let stats = server.shutdown();
    println!("\nserver telemetry after shutdown:");
    println!(
        "  {} requests in {} batches (mean batch {:.1}, largest service {} µs)",
        stats.completed, stats.batches, stats.mean_batch, stats.batch_service_max_us
    );
    println!(
        "  latency p50 {} µs   p95 {} µs   p99 {} µs   max {} µs",
        stats.p50_us, stats.p95_us, stats.p99_us, stats.latency_max_us
    );
    println!(
        "  {:.0} windows/s across {} concurrent clients ({} rejected)",
        stats.windows_per_sec, CLIENTS, stats.rejected
    );
    println!("\nserved verdicts are bit-identical to direct classification ✓");
    Ok(())
}
