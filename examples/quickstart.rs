//! Quickstart: train an HD classifier on two artificial gestures, then
//! run the same classification on the simulated 4-core PULPv3 and check
//! that silicon and golden model agree bit for bit.
//!
//! Run with: `cargo run --release --example quickstart`

use hdc::{HdClassifier, HdConfig};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::pipeline::{native_reference, AccelChain};
use pulp_hd_core::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the golden model: 10,016-bit hypervectors, 4 channels.
    let config = HdConfig::emg_default();
    let mut clf = HdClassifier::new(config, 2)?;
    let relaxed = vec![[1_500u16, 2_000, 1_200, 1_800]; 5];
    let fist = vec![[52_000u16, 48_000, 20_000, 12_000]; 5];
    for _ in 0..3 {
        clf.train_window(0, &relaxed)?;
        clf.train_window(1, &fist)?;
    }
    clf.finalize();
    println!("golden model trained: fist  -> class {}", clf.predict(&fist)?.class());

    // 2. Move the model onto the simulated PULPv3 cluster.
    let params = AccelParams {
        classes: 2,
        ..AccelParams::emg_default()
    };
    let mut chain = AccelChain::new(&Platform::pulpv3(4), params)?;
    let prototypes: Vec<_> = (0..2).map(|k| clf.am_mut().prototype(k).clone()).collect();
    chain.load_model(clf.spatial().cim(), clf.spatial().im(), &prototypes)?;

    // 3. Classify one sample on the accelerator and cross-check.
    let sample = vec![vec![51_000u16, 47_500, 21_000, 11_500]];
    let run = chain.classify(&sample)?;
    let (query, distances, class) =
        native_reference(clf.spatial().cim(), clf.spatial().im(), &prototypes, &sample);
    assert_eq!(run.query, query, "simulated kernels match the golden model");
    assert_eq!(run.distances, distances);
    assert_eq!(run.class, class);

    println!(
        "PULPv3 4-core: class {} in {} cycles (map+encode {}, AM {})",
        run.class, run.cycles_total, run.cycles_map_encode, run.cycles_am
    );
    println!("simulated platform and golden model agree bit for bit ✓");
    Ok(())
}
