//! Quickstart: train an HD classifier on two artificial gestures
//! through the trainable-backend API, then run the same classification
//! through every execution backend — the scalar golden model, the
//! `u64`-packed fast engine, and the simulated 4-core PULPv3 — and
//! check that all three agree bit for bit.
//!
//! Run with: `cargo run --release --example quickstart`

use hdc::HdConfig;
use pulp_hd_core::backend::{
    AccelBackend, ExecutionBackend, FastBackend, GoldenBackend, TrainSpec, TrainableBackend,
};
use pulp_hd_core::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train: 10,016-bit hypervectors, 4 channels, through the fast
    //    trainable session (bit-identical to the golden classifier).
    let config = HdConfig::emg_default();
    let spec = TrainSpec::from_config(&config, 2)?;
    let mut trainer = FastBackend::new().begin_training(&spec)?;
    let relaxed: Vec<Vec<u16>> = vec![vec![1_500, 2_000, 1_200, 1_800]; 5];
    let fist: Vec<Vec<u16>> = vec![vec![52_000, 48_000, 20_000, 12_000]; 5];
    for _ in 0..3 {
        trainer.train(&relaxed, 0)?;
        trainer.train(&fist, 1)?;
    }
    let model = trainer.finalize()?;
    let mut serve = trainer.into_serving()?;
    println!(
        "model trained: fist  -> class {}",
        serve.classify(&fist)?.class
    );

    // 2. One model, three substrates, one interface.
    let backends: Vec<Box<dyn ExecutionBackend>> = vec![
        Box::new(GoldenBackend),
        Box::new(FastBackend::new()),
        Box::new(AccelBackend::new(Platform::pulpv3(4))),
    ];

    // 3. Classify one sample on each backend and cross-check.
    let sample = vec![vec![51_000u16, 47_500, 21_000, 11_500]];
    let mut verdicts = Vec::new();
    for backend in &backends {
        let mut session = backend.prepare(&model)?;
        let verdict = session.classify(&sample)?;
        print!("{:8} -> class {}", backend.name(), verdict.class);
        match &verdict.cycles {
            Some(c) => println!(
                " in {} cycles (map+encode {}, AM {})",
                c.total, c.map_encode, c.am
            ),
            None => println!(" (host execution, no cycle model)"),
        }
        verdicts.push(verdict);
    }
    for v in &verdicts[1..] {
        assert_eq!(v.class, verdicts[0].class, "backends must agree");
        assert_eq!(v.distances, verdicts[0].distances);
        assert_eq!(v.query, verdicts[0].query);
    }

    println!("all {} backends agree bit for bit ✓", verdicts.len());
    Ok(())
}
