//! Language identification with hypervector n-grams — the workload the
//! paper's introduction cites for HD computing ("language recognitions
//! [11, 12]"), built from the same `hdc` primitives the EMG chain uses:
//! an item memory over letters, trigram binding via rotate+XOR, bundling
//! into language prototypes, and nearest-prototype search.
//!
//! The search runs twice: through the associative memory (the golden
//! path) and over `u64`-repacked prototypes (`hdc::hv64`, the packing
//! the fast execution backend uses) — demonstrating that the packed
//! representation is a drop-in for any HD workload, not just EMG.
//!
//! Run with: `cargo run --release --example language_id`

use hdc::bundle::Bundler;
use hdc::encoder::ngram;
use hdc::hv64::Hv64;
use hdc::{AssociativeMemory, BinaryHv, ItemMemory, TieBreak};

const N_WORDS: usize = 313; // 10,016-bit hypervectors
const ALPHABET: &str = "abcdefghijklmnopqrstuvwxyz ";

const TRAIN: [(&str, &str); 3] = [
    (
        "english",
        "the quick brown fox jumps over the lazy dog while the \
                  rain in spain stays mainly in the plain and every good \
                  boy deserves fudge because knowledge is power and it is \
                  a truth universally acknowledged that a single man in \
                  possession of a good fortune must be in want of a wife \
                  all happy families are alike but each unhappy family is \
                  unhappy in its own way when in the course of human \
                  events it becomes necessary for one people to dissolve \
                  the political bands which have connected them with \
                  another they should declare the causes of the separation",
    ),
    (
        "german",
        "der schnelle braune fuchs springt ueber den faulen hund \
                waehrend der regen in spanien hauptsaechlich in der ebene \
                bleibt und wissen ist macht fuer jeden guten jungen es ist \
                eine allgemein anerkannte wahrheit dass ein junggeselle im \
                besitz eines schoenen vermoegens nach einer frau sucht \
                alle gluecklichen familien gleichen einander jede \
                unglueckliche familie ist auf ihre eigene weise \
                ungluecklich im laufe der menschlichen ereignisse wird es \
                notwendig dass ein volk die politischen bande aufloest die \
                es mit einem anderen verbunden haben",
    ),
    (
        "italian",
        "la volpe marrone veloce salta sopra il cane pigro mentre \
                 la pioggia in spagna rimane principalmente nella pianura \
                 e la conoscenza e potere per ogni bravo ragazzo e una \
                 verita universalmente riconosciuta che uno scapolo in \
                 possesso di una buona fortuna debba essere in cerca di \
                 una moglie tutte le famiglie felici si somigliano ma ogni \
                 famiglia infelice e infelice a modo suo nel corso degli \
                 eventi umani diventa necessario che un popolo sciolga i \
                 legami politici che lo hanno connesso con un altro",
    ),
];

const TEST: [(&str, &str); 3] = [
    (
        "english",
        "power tends to corrupt and absolute power corrupts absolutely",
    ),
    (
        "german",
        "die grenzen meiner sprache bedeuten die grenzen meiner welt",
    ),
    (
        "italian",
        "nel mezzo del cammin di nostra vita mi ritrovai per una selva oscura",
    ),
];

fn letter_index(c: char) -> usize {
    ALPHABET.find(c).unwrap_or(ALPHABET.len() - 1)
}

/// Encodes text into a hypervector: bundle of all letter trigrams.
fn encode(text: &str, letters: &ItemMemory) -> BinaryHv {
    let chars: Vec<char> = text.chars().filter(|c| ALPHABET.contains(*c)).collect();
    let mut bundler = Bundler::new(N_WORDS);
    for tri in chars.windows(3) {
        let seq: Vec<BinaryHv> = tri
            .iter()
            .map(|&c| letters.get(letter_index(c)).clone())
            .collect();
        bundler.add(&ngram(&seq));
    }
    bundler.majority(TieBreak::Seeded(0x1A06))
}

fn main() {
    let letters = ItemMemory::new(ALPHABET.len(), N_WORDS, 0xBABE);
    let mut am = AssociativeMemory::new(TRAIN.len(), N_WORDS, 0x7E57);
    for (label, (name, text)) in TRAIN.iter().enumerate() {
        am.train(label, &encode(text, &letters));
        println!("trained prototype for {name}");
    }
    am.finalize();

    // The same prototypes repacked into u64 words, as the fast backend
    // stores them.
    let packed: Vec<Hv64> = am.prototypes().iter().map(Hv64::from_binary).collect();

    let mut correct = 0;
    for (expected, (name, text)) in TEST.iter().enumerate() {
        let query = encode(text, &letters);
        let result = am.classify(&query);

        // Packed nearest-prototype search agrees exactly.
        let query64 = Hv64::from_binary(&query);
        let packed_distances: Vec<u32> = packed.iter().map(|p| p.hamming(&query64)).collect();
        assert_eq!(
            packed_distances,
            result.distances(),
            "u64 packing must not change distances"
        );

        let predicted = TRAIN[result.class()].0;
        let ok = result.class() == expected;
        correct += usize::from(ok);
        println!(
            "{name:8} -> {predicted:8} {} (distances {:?})",
            if ok { "✓" } else { "✗" },
            result.distances()
        );
    }
    assert_eq!(correct, TEST.len(), "all held-out sentences identified");
    println!(
        "\n{}/{} held-out sentences identified from trigram statistics",
        correct,
        TEST.len()
    );
    println!("u32 and u64 packings agree on every distance ✓");
}
