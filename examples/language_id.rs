//! Language identification with hypervector n-grams — the workload the
//! paper's introduction cites for HD computing ("language recognitions
//! [11, 12]"), expressed **entirely through the execution-backend
//! seam**: letters become quantization levels of a
//! [`ContinuousItemMemory`] (via `from_levels`, which serves the
//! quasi-orthogonal letter vectors verbatim), a text becomes a
//! one-channel window with one sample per letter, and the chain's
//! trigram temporal encoder does the rotate-and-bind n-gram encoding.
//!
//! Training runs through [`TrainSpec`] +
//! [`TrainableBackend::begin_training`] and deploys with
//! `into_serving()` — the same one-shot train → serve path as the EMG
//! examples, on the fast (`u64`-packed, SIMD-dispatched) backend — and
//! the verdicts are cross-checked bit for bit against the scalar golden
//! backend, demonstrating that the packed engine is a drop-in for any
//! HD workload, not just EMG.
//!
//! Run with: `cargo run --release --example language_id`

use hdc::item_memory::quantize_code;
use hdc::{ContinuousItemMemory, ItemMemory};
use pulp_hd_core::backend::{
    ExecutionBackend, FastBackend, GoldenBackend, TrainSpec, TrainableBackend,
};

const N_WORDS: usize = 313; // 10,016-bit hypervectors
const ALPHABET: &str = "abcdefghijklmnopqrstuvwxyz ";
const NGRAM: usize = 3; // letter trigrams

const TRAIN: [(&str, &str); 3] = [
    (
        "english",
        "the quick brown fox jumps over the lazy dog while the \
                  rain in spain stays mainly in the plain and every good \
                  boy deserves fudge because knowledge is power and it is \
                  a truth universally acknowledged that a single man in \
                  possession of a good fortune must be in want of a wife \
                  all happy families are alike but each unhappy family is \
                  unhappy in its own way when in the course of human \
                  events it becomes necessary for one people to dissolve \
                  the political bands which have connected them with \
                  another they should declare the causes of the separation",
    ),
    (
        "german",
        "der schnelle braune fuchs springt ueber den faulen hund \
                waehrend der regen in spanien hauptsaechlich in der ebene \
                bleibt und wissen ist macht fuer jeden guten jungen es ist \
                eine allgemein anerkannte wahrheit dass ein junggeselle im \
                besitz eines schoenen vermoegens nach einer frau sucht \
                alle gluecklichen familien gleichen einander jede \
                unglueckliche familie ist auf ihre eigene weise \
                ungluecklich im laufe der menschlichen ereignisse wird es \
                notwendig dass ein volk die politischen bande aufloest die \
                es mit einem anderen verbunden haben",
    ),
    (
        "italian",
        "la volpe marrone veloce salta sopra il cane pigro mentre \
                 la pioggia in spagna rimane principalmente nella pianura \
                 e la conoscenza e potere per ogni bravo ragazzo e una \
                 verita universalmente riconosciuta che uno scapolo in \
                 possesso di una buona fortuna debba essere in cerca di \
                 una moglie tutte le famiglie felici si somigliano ma ogni \
                 famiglia infelice e infelice a modo suo nel corso degli \
                 eventi umani diventa necessario che un popolo sciolga i \
                 legami politici che lo hanno connesso con un altro",
    ),
];

const TEST: [(&str, &str); 3] = [
    (
        "english",
        "power tends to corrupt and absolute power corrupts absolutely",
    ),
    (
        "german",
        "die grenzen meiner sprache bedeuten die grenzen meiner welt",
    ),
    (
        "italian",
        "nel mezzo del cammin di nostra vita mi ritrovai per una selva oscura",
    ),
];

fn letter_index(c: char) -> usize {
    ALPHABET.find(c).unwrap_or(ALPHABET.len() - 1)
}

/// The smallest ADC code that quantizes back to letter `index` — the
/// inverse of the chain's `quantize_code`, so each letter selects
/// exactly its own level hypervector.
fn letter_code(index: usize) -> u16 {
    let levels = ALPHABET.len() as u32;
    let code = (((index as u32) << 16) / (levels - 1)).min(u32::from(u16::MAX)) as u16;
    debug_assert_eq!(quantize_code(code, ALPHABET.len()), index);
    code
}

/// A text as a backend window: one sample per letter, one channel whose
/// code selects the letter's level. The chain's spatial encoder maps
/// each sample to `IM[0] ⊕ letters[l]`, and its trigram temporal
/// encoder rotates-and-binds exactly the letter trigrams the original
/// formulation used.
fn window_of(text: &str) -> Vec<Vec<u16>> {
    text.chars()
        .filter(|c| ALPHABET.contains(*c))
        .map(|c| vec![letter_code(letter_index(c))])
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The letter item memory, served as the chain's "continuous" item
    // memory: 27 quasi-orthogonal letter hypervectors as levels.
    let letters = ItemMemory::new(ALPHABET.len(), N_WORDS, 0xBABE);
    let cim = ContinuousItemMemory::from_levels(letters.iter().cloned().collect());
    let im = ItemMemory::new(1, N_WORDS, 0x1A06); // the single text channel
    let spec = TrainSpec::new(cim, im, NGRAM, TRAIN.len(), 0x7E57)?;

    // One-shot training through the seam, on the fast backend.
    let backend = FastBackend::try_with_threads(2)?;
    let mut trainer = backend.begin_training(&spec)?;
    for (label, (name, text)) in TRAIN.iter().enumerate() {
        trainer.train(&window_of(text), label)?;
        println!(
            "trained prototype for {name} ({} examples)",
            trainer.examples(label)
        );
    }
    let model = trainer.finalize()?;
    let mut session = trainer.into_serving()?;

    // The scalar golden backend serves the same model for the bit-exact
    // cross-check.
    let mut golden = GoldenBackend.prepare(&model)?;

    let mut correct = 0;
    for (expected, (name, text)) in TEST.iter().enumerate() {
        let window = window_of(text);
        let verdict = session.classify(&window)?;

        // The packed fast path agrees with the scalar golden model on
        // every distance, the query, and the class.
        let reference = golden.classify(&window)?;
        assert_eq!(
            verdict, reference,
            "fast and golden backends must agree bit for bit"
        );

        let predicted = TRAIN[verdict.class].0;
        let ok = verdict.class == expected;
        correct += usize::from(ok);
        println!(
            "{name:8} -> {predicted:8} {} (distances {:?})",
            if ok { "✓" } else { "✗" },
            verdict.distances
        );
    }
    assert_eq!(correct, TEST.len(), "all held-out sentences identified");
    println!(
        "\n{}/{} held-out sentences identified from trigram statistics",
        correct,
        TEST.len()
    );
    println!("fast (u64-packed) and golden (u32) backends agree on every verdict ✓");
    Ok(())
}
