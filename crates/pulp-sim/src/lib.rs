//! # `pulp-sim` — a cycle-stepped simulator of a PULP-style cluster
//!
//! This crate stands in for the silicon the PULP-HD paper measured: a
//! parallel ultra-low-power (PULP) cluster of in-order RISC cores sharing
//! a multi-banked L1 scratchpad (TCDM), with an off-cluster L2 reached
//! through a lightweight DMA engine, hardware/software barriers, and — on
//! the "Wolf" generation — the XpulpV2 ISA extensions (`p.cnt`,
//! `p.extractu`, `p.insert`, post-increment accesses, hardware loops).
//!
//! Programs are authored in Rust through the [`asm::Assembler`] DSL and
//! executed for real: the simulator computes architectural state *and*
//! cycle counts, so performance numbers are always attached to a
//! verified-correct computation. Timing captures the mechanisms that
//! matter for the paper's results:
//!
//! * per-instruction costs per core generation ([`config::CoreConfig`]),
//! * TCDM bank conflicts (one grant per bank per cycle, rotating
//!   priority),
//! * the single L2 port and the DMA engine's lower bank priority
//!   (double-buffered streaming steals idle slots),
//! * barrier/fork costs of the OpenMP runtime vs. Wolf's hardware
//!   synchronizer,
//! * a silicon-fitted power model ([`power::PowerModel`]).
//!
//! ## Example
//!
//! ```
//! use pulp_sim::{Cluster, ClusterConfig};
//! use pulp_sim::asm::Assembler;
//! use pulp_sim::isa::regs::*;
//! use pulp_sim::mem::L2_BASE;
//!
//! // Sum 8 words from L2.
//! let mut a = Assembler::new();
//! a.li(T0, L2_BASE);
//! a.li(T1, 8);
//! a.li(T2, 0);
//! a.label("loop");
//! a.lw(T3, T0, 0);
//! a.addi(T0, T0, 4);
//! a.add(T2, T2, T3);
//! a.addi(T1, T1, -1);
//! a.bnez(T1, "loop");
//! a.halt();
//!
//! let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish()?);
//! cluster.mem_mut().write_words(L2_BASE, &[1, 2, 3, 4, 5, 6, 7, 8])?;
//! let summary = cluster.run(100_000)?;
//! assert_eq!(cluster.core(0).reg(T2), 36);
//! println!("took {} cycles", summary.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod cluster;
pub mod config;
mod core;
pub mod dma;
pub mod isa;
pub mod mem;
pub mod power;
pub mod stats;

pub use crate::asm::{AsmError, Assembler, Program};
pub use crate::cluster::Cluster;
pub use crate::config::{ClusterConfig, CoreConfig, SyncConfig};
pub use crate::core::Core;
pub use crate::dma::{DmaDescError, DmaStats};
pub use crate::mem::{MemFault, Memory, L1_BASE, L2_BASE};
pub use crate::power::{CortexM4Power, OperatingPoint, PowerBreakdown, PowerModel};
pub use crate::stats::{CoreStats, RunSummary};

use std::fmt;

/// Errors produced while running a program on the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An instruction requiring an unavailable ISA extension was
    /// executed.
    IllegalInstruction {
        /// Faulting core.
        core: usize,
        /// Instruction index.
        pc: u32,
        /// Disassembly of the offending instruction.
        inst: String,
    },
    /// The program counter left the program.
    PcOutOfRange {
        /// Faulting core.
        core: usize,
        /// Instruction index.
        pc: u32,
    },
    /// More than two nested hardware loops.
    HwLoopOverflow {
        /// Faulting core.
        core: usize,
        /// Instruction index.
        pc: u32,
    },
    /// A memory access faulted.
    MemAccess {
        /// Faulting core.
        core: usize,
        /// Fault details.
        fault: MemFault,
    },
    /// A DMA descriptor was malformed.
    BadDmaDescriptor {
        /// Issuing core.
        core: usize,
        /// Instruction index.
        pc: u32,
        /// Why the descriptor was rejected.
        reason: DmaDescError,
    },
    /// `dma.wait` on a transfer id that was never issued.
    UnknownDmaId {
        /// Waiting core.
        core: usize,
        /// Instruction index.
        pc: u32,
        /// The unknown id.
        id: u32,
    },
    /// Some cores halted while others wait at a barrier.
    BarrierDeadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// The run exceeded its cycle budget.
    Timeout {
        /// Budget that was exhausted.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IllegalInstruction { core, pc, inst } => {
                write!(f, "core {core} @ {pc}: illegal instruction `{inst}`")
            }
            Self::PcOutOfRange { core, pc } => {
                write!(f, "core {core}: pc {pc} outside program")
            }
            Self::HwLoopOverflow { core, pc } => {
                write!(f, "core {core} @ {pc}: hardware loop nesting exceeded")
            }
            Self::MemAccess { core, fault } => write!(f, "core {core}: {fault}"),
            Self::BadDmaDescriptor { core, pc, reason } => {
                write!(f, "core {core} @ {pc}: bad DMA descriptor: {reason}")
            }
            Self::UnknownDmaId { core, pc, id } => {
                write!(f, "core {core} @ {pc}: wait on unknown DMA id {id}")
            }
            Self::BarrierDeadlock { cycle } => {
                write!(f, "barrier deadlock at cycle {cycle} (a core halted early)")
            }
            Self::Timeout { cycles } => write!(f, "simulation exceeded {cycles} cycles"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_informatively() {
        let e = SimError::IllegalInstruction {
            core: 2,
            pc: 17,
            inst: "p.cnt x5, x6".into(),
        };
        let text = e.to_string();
        assert!(text.contains("core 2") && text.contains("p.cnt"));
        let e = SimError::Timeout { cycles: 99 };
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
