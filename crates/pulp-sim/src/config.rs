//! Core and cluster timing configurations.
//!
//! All performance-relevant constants of the simulation live here, so the
//! calibration targets in `DESIGN.md` §6 map to named numbers rather than
//! magic values scattered through the execution engine.
//!
//! Three presets model the paper's platforms:
//!
//! * [`CoreConfig::pulpv3`] — the OpenRISC cores of the PULPv3 prototype
//!   (GCC 4.9 era): 2-cycle L1 loads, 3-cycle taken branches, no ISA
//!   extensions. The OpenRISC-vs-RISC-V compiler quality gap the paper
//!   mentions is absorbed into these per-instruction costs, since we
//!   author the same assembly for both targets.
//! * [`CoreConfig::wolf`] — the RI5CY cores of Wolf: single-cycle L1
//!   loads, 2-cycle taken branches, and the XpulpV2 extensions
//!   (`p.cnt`/`p.extractu`/`p.insert`, post-increment accesses, hardware
//!   loops).
//! * [`CoreConfig::cortex_m4`] — the ARM Cortex M4 reference
//!   (single-core, flat SRAM).

/// Per-instruction-class timing and feature set of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Cycles for simple ALU and immediate operations.
    pub alu_cycles: u32,
    /// Cycles for 32×32 multiplication.
    pub mul_cycles: u32,
    /// Total cycles for an L1 load once the bank grants the request.
    pub load_l1_cycles: u32,
    /// Total cycles for an L1 store once granted.
    pub store_l1_cycles: u32,
    /// Total cycles for a direct (non-DMA) L2 access once the port is
    /// free.
    pub load_l2_cycles: u32,
    /// Cycles for a taken branch (fetch redirect included).
    pub branch_taken_cycles: u32,
    /// Cycles for a not-taken branch.
    pub branch_not_taken_cycles: u32,
    /// Cycles for an unconditional jump.
    pub jump_cycles: u32,
    /// Cycles for a 32-bit `li` whose value does not fit in 12 bits
    /// (costed as `lui`+`addi`).
    pub li_long_cycles: u32,
    /// XpulpV2 hardware loops available.
    pub has_hw_loops: bool,
    /// XpulpV2 post-increment loads/stores available.
    pub has_post_increment: bool,
    /// XpulpV2 bit-manipulation (`p.cnt`, `p.extractu`, `p.insert`)
    /// available.
    pub has_bitmanip: bool,
    /// Cycles per bit-manipulation instruction (when available).
    pub bitmanip_cycles: u32,
}

impl CoreConfig {
    /// The OpenRISC core of the PULPv3 silicon prototype.
    #[must_use]
    pub fn pulpv3() -> Self {
        Self {
            name: "PULPv3 (OpenRISC)",
            alu_cycles: 1,
            mul_cycles: 2,
            load_l1_cycles: 2,
            store_l1_cycles: 1,
            load_l2_cycles: 12,
            // OR10N has no branch prediction: a taken branch flushes the
            // fetch stage(s).
            branch_taken_cycles: 4,
            branch_not_taken_cycles: 1,
            jump_cycles: 2,
            li_long_cycles: 2,
            has_hw_loops: false,
            has_post_increment: false,
            has_bitmanip: false,
            bitmanip_cycles: 1,
        }
    }

    /// The RI5CY (RISC-V + XpulpV2) core of the Wolf cluster.
    #[must_use]
    pub fn wolf() -> Self {
        Self {
            name: "Wolf (RI5CY)",
            alu_cycles: 1,
            mul_cycles: 1,
            load_l1_cycles: 1,
            store_l1_cycles: 1,
            load_l2_cycles: 10,
            branch_taken_cycles: 2,
            branch_not_taken_cycles: 1,
            jump_cycles: 2,
            li_long_cycles: 2,
            has_hw_loops: true,
            has_post_increment: true,
            has_bitmanip: true,
            bitmanip_cycles: 1,
        }
    }

    /// A Wolf core with the XpulpV2 extensions disabled — the paper's
    /// "Wolf 1 core" column (plain ANSI-C build, better ISA/compiler but
    /// no builtins).
    #[must_use]
    pub fn wolf_no_ext() -> Self {
        Self {
            name: "Wolf (RI5CY, no builtins)",
            has_hw_loops: false,
            has_post_increment: false,
            has_bitmanip: false,
            ..Self::wolf()
        }
    }

    /// The ARM Cortex M4 reference (STM32F4-class device).
    ///
    /// Modelled as a single core with flat single-bank SRAM; the paper
    /// credits it with "load and shift / load 32-bit immediate" style
    /// optimizations, reflected in the 1-cycle stores and cheap `li`.
    #[must_use]
    pub fn cortex_m4() -> Self {
        Self {
            name: "ARM Cortex M4",
            alu_cycles: 1,
            mul_cycles: 1,
            load_l1_cycles: 2,
            store_l1_cycles: 1,
            load_l2_cycles: 2,
            branch_taken_cycles: 3,
            branch_not_taken_cycles: 1,
            jump_cycles: 2,
            li_long_cycles: 1,
            has_hw_loops: false,
            has_post_increment: false,
            has_bitmanip: false,
            bitmanip_cycles: 1,
        }
    }
}

/// Synchronization-cost model of the cluster runtime.
///
/// PULPv3 runs the OpenMP runtime's software barriers and fork/join on top
/// of GCC 4.9 ("huge software overheads" avoided only partially by the
/// bare-metal library); Wolf adds a hardware synchronizer that makes
/// barrier and team-start costs almost vanish. These constants are what
/// make the paper's AM-kernel speed-up saturate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Cycles every core spends on a barrier release after the last
    /// arrival.
    pub barrier_base_cycles: u32,
    /// Additional per-core barrier cost (master gathers/wakes slaves).
    pub barrier_per_core_cycles: u32,
    /// Cycles to enter a parallel region (team wake-up, work descriptor).
    pub fork_base_cycles: u32,
    /// Additional per-core fork cost.
    pub fork_per_core_cycles: u32,
}

impl SyncConfig {
    /// Software OpenMP runtime on PULPv3.
    #[must_use]
    pub fn software_openmp() -> Self {
        Self {
            barrier_base_cycles: 45,
            barrier_per_core_cycles: 18,
            fork_base_cycles: 140,
            fork_per_core_cycles: 25,
        }
    }

    /// Hardware-assisted synchronizer on Wolf.
    #[must_use]
    pub fn hardware_synchronizer() -> Self {
        Self {
            barrier_base_cycles: 8,
            barrier_per_core_cycles: 2,
            fork_base_cycles: 25,
            fork_per_core_cycles: 4,
        }
    }

    /// No-op synchronization (single-core targets such as the M4).
    #[must_use]
    pub fn single_core() -> Self {
        Self {
            barrier_base_cycles: 0,
            barrier_per_core_cycles: 0,
            fork_base_cycles: 0,
            fork_per_core_cycles: 0,
        }
    }

    /// Total barrier cost for an `n`-core team.
    #[must_use]
    pub fn barrier_cycles(&self, n: usize) -> u32 {
        if n <= 1 {
            return 0;
        }
        self.barrier_base_cycles + self.barrier_per_core_cycles * n as u32
    }

    /// Total fork cost for an `n`-core team.
    #[must_use]
    pub fn fork_cycles(&self, n: usize) -> u32 {
        if n <= 1 {
            return 0;
        }
        self.fork_base_cycles + self.fork_per_core_cycles * n as u32
    }
}

/// Full cluster configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Core timing/feature model (identical for all cores).
    pub core: CoreConfig,
    /// Number of cores (1–16).
    pub n_cores: usize,
    /// Number of word-interleaved TCDM banks.
    pub tcdm_banks: usize,
    /// L1 TCDM size in bytes.
    pub l1_size: u32,
    /// L2 size in bytes.
    pub l2_size: u32,
    /// L2 port occupancy per direct core access, in cycles.
    pub l2_port_cycles: u32,
    /// DMA throughput in 32-bit words per cycle (64-bit AXI ⇒ 2).
    pub dma_words_per_cycle: u32,
    /// DMA descriptor-processing latency in cycles.
    pub dma_startup_cycles: u32,
    /// Synchronization cost model.
    pub sync: SyncConfig,
}

impl ClusterConfig {
    /// The PULPv3 silicon prototype: up to 4 OpenRISC cores, 48 kB TCDM
    /// in 8 banks, 64 kB L2, software OpenMP runtime.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds 4 (the silicon has 4 cores).
    #[must_use]
    pub fn pulpv3(n_cores: usize) -> Self {
        assert!((1..=4).contains(&n_cores), "PULPv3 has 1–4 cores");
        Self {
            core: CoreConfig::pulpv3(),
            n_cores,
            tcdm_banks: 8,
            l1_size: 48 * 1024,
            l2_size: 64 * 1024,
            l2_port_cycles: 4,
            dma_words_per_cycle: 2,
            dma_startup_cycles: 12,
            sync: SyncConfig::software_openmp(),
        }
    }

    /// The Wolf cluster: up to 8 RI5CY cores with XpulpV2, 64 kB TCDM in
    /// 16 banks, 512 kB L2, hardware synchronizer.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds 8.
    #[must_use]
    pub fn wolf(n_cores: usize) -> Self {
        assert!((1..=8).contains(&n_cores), "Wolf has 1–8 cores");
        Self {
            core: CoreConfig::wolf(),
            n_cores,
            tcdm_banks: 16,
            l1_size: 64 * 1024,
            l2_size: 512 * 1024,
            l2_port_cycles: 4,
            dma_words_per_cycle: 2,
            dma_startup_cycles: 10,
            sync: SyncConfig::hardware_synchronizer(),
        }
    }

    /// Wolf without the XpulpV2 extensions (plain ANSI-C column of
    /// Table 3).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or exceeds 8.
    #[must_use]
    pub fn wolf_no_ext(n_cores: usize) -> Self {
        Self {
            core: CoreConfig::wolf_no_ext(),
            ..Self::wolf(n_cores)
        }
    }

    /// The single-core ARM Cortex M4 reference with 192 kB of flat SRAM.
    #[must_use]
    pub fn cortex_m4() -> Self {
        Self {
            core: CoreConfig::cortex_m4(),
            n_cores: 1,
            // Flat memory: one "bank" (no parallelism to arbitrate) and a
            // large L1 window so kernels can keep everything local.
            tcdm_banks: 1,
            l1_size: 192 * 1024,
            l2_size: 512 * 1024,
            l2_port_cycles: 2,
            dma_words_per_cycle: 2,
            dma_startup_cycles: 10,
            sync: SyncConfig::single_core(),
        }
    }

    /// Validates internal consistency (core count vs. banks, non-zero
    /// sizes).
    ///
    /// # Panics
    ///
    /// Panics on inconsistency; configurations are built from presets and
    /// mutated in tests, so failing fast is preferable to a `Result`.
    pub fn assert_valid(&self) {
        assert!(
            self.n_cores >= 1 && self.n_cores <= 16,
            "1–16 cores supported"
        );
        assert!(self.tcdm_banks >= 1, "need at least one TCDM bank");
        assert!(self.l1_size >= 1024 && self.l1_size % 4 == 0, "bad L1 size");
        assert!(self.l2_size >= 1024 && self.l2_size % 4 == 0, "bad L2 size");
        assert!(self.dma_words_per_cycle >= 1, "DMA must move data");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        ClusterConfig::pulpv3(1).assert_valid();
        ClusterConfig::pulpv3(4).assert_valid();
        ClusterConfig::wolf(8).assert_valid();
        ClusterConfig::wolf_no_ext(1).assert_valid();
        ClusterConfig::cortex_m4().assert_valid();
    }

    #[test]
    fn wolf_has_extensions_and_pulpv3_does_not() {
        assert!(ClusterConfig::wolf(8).core.has_bitmanip);
        assert!(ClusterConfig::wolf(8).core.has_hw_loops);
        assert!(!ClusterConfig::pulpv3(4).core.has_bitmanip);
        assert!(!ClusterConfig::wolf_no_ext(8).core.has_bitmanip);
        assert!(!ClusterConfig::cortex_m4().core.has_bitmanip);
    }

    #[test]
    fn wolf_memory_accesses_are_faster() {
        let p = CoreConfig::pulpv3();
        let w = CoreConfig::wolf();
        assert!(w.load_l1_cycles < p.load_l1_cycles);
        assert!(w.branch_taken_cycles < p.branch_taken_cycles);
    }

    #[test]
    #[should_panic(expected = "1–4 cores")]
    fn pulpv3_core_count_is_bounded() {
        let _ = ClusterConfig::pulpv3(5);
    }

    #[test]
    fn sync_costs_scale_with_cores_and_vanish_single_core() {
        let sw = SyncConfig::software_openmp();
        let hw = SyncConfig::hardware_synchronizer();
        assert_eq!(sw.barrier_cycles(1), 0);
        assert!(sw.barrier_cycles(4) > hw.barrier_cycles(8));
        assert!(sw.fork_cycles(4) > hw.fork_cycles(8));
        assert!(hw.barrier_cycles(8) > 0);
    }
}
