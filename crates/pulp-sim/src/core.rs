//! Single-core architectural state and instruction execution.
//!
//! A [`Core`] is an in-order, single-issue machine. Instruction *effects*
//! (register/memory updates) are applied immediately at execute time;
//! instruction *timing* is modelled by `ready_at` (the cycle at which the
//! next instruction may issue) plus explicit wait states for memory
//! arbitration, barriers, and DMA. Memory requests do not complete inside
//! [`execute_one`] — they park the core in [`Status::MemWait`] and are
//! granted by the cluster's bank/port arbiter, which is where TCDM
//! contention arises.

use crate::asm::Program;
use crate::config::ClusterConfig;
use crate::dma::DmaEngine;
use crate::isa::{AluOp, BranchCond, Inst, MemWidth, Reg};
use crate::stats::CoreStats;
use crate::SimError;

/// A pending memory access awaiting a bank/port grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingMem {
    pub addr: u32,
    pub width: MemWidth,
    /// `Some(value)` for stores, `None` for loads.
    pub store_value: Option<u32>,
    /// Destination register for loads.
    pub rd: Option<Reg>,
}

/// Execution status of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Fetching/executing when `cycle >= ready_at`.
    Running,
    /// Waiting for a memory grant.
    MemWait(PendingMem),
    /// Arrived at a barrier.
    BarrierWait,
    /// Waiting for a DMA transfer to complete.
    DmaWait(u32),
    /// Stopped.
    Halted,
}

#[derive(Debug, Clone, Copy)]
struct HwLoop {
    start: u32,
    end: u32,
    remaining: u32,
}

/// Maximum hardware-loop nesting depth (RI5CY has two loop register sets).
const MAX_HW_LOOPS: usize = 2;

/// One simulated core.
#[derive(Debug, Clone)]
pub struct Core {
    id: usize,
    regs: [u32; 32],
    pc: u32,
    hw_loops: Vec<HwLoop>,
    pub(crate) status: Status,
    pub(crate) ready_at: u64,
    pub(crate) stats: CoreStats,
}

impl Core {
    pub(crate) fn new(id: usize) -> Self {
        Self {
            id,
            regs: [0; 32],
            pc: 0,
            hw_loops: Vec::new(),
            status: Status::Running,
            ready_at: 0,
            stats: CoreStats::default(),
        }
    }

    /// Core id within the cluster.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current program counter (instruction index).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads an architectural register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    pub(crate) fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    pub(crate) fn reset(&mut self) {
        self.regs = [0; 32];
        self.pc = 0;
        self.hw_loops.clear();
        self.status = Status::Running;
        self.ready_at = 0;
        self.stats = CoreStats::default();
    }

    /// Applies hardware-loop back-edges after executing the instruction at
    /// `executed`, given the sequentially computed `next_pc`.
    fn apply_hw_loop(&mut self, executed: u32, next_pc: u32) -> u32 {
        if let Some(top) = self.hw_loops.last_mut() {
            if executed == top.end {
                if top.remaining > 1 {
                    top.remaining -= 1;
                    return top.start;
                }
                self.hw_loops.pop();
            }
        }
        next_pc
    }
}

/// Everything [`execute_one`] needs from the cluster.
pub(crate) struct ExecCtx<'a> {
    pub cfg: &'a ClusterConfig,
    pub cycle: u64,
    pub dma: &'a mut DmaEngine,
    pub mem: &'a crate::mem::Memory,
    pub markers: &'a mut Vec<(u32, u64)>,
}

/// Executes one instruction on `core`. Timing is encoded by advancing
/// `core.ready_at` and/or parking the core in a wait status.
pub(crate) fn execute_one(
    core: &mut Core,
    program: &Program,
    ctx: &mut ExecCtx<'_>,
) -> Result<(), SimError> {
    let pc = core.pc;
    let inst = *program
        .inst(pc)
        .ok_or(SimError::PcOutOfRange { core: core.id, pc })?;

    let cc = &ctx.cfg.core;
    if (inst.needs_bitmanip() && !cc.has_bitmanip)
        || (inst.needs_post_increment() && !cc.has_post_increment)
        || (inst.needs_hw_loops() && !cc.has_hw_loops)
    {
        return Err(SimError::IllegalInstruction {
            core: core.id,
            pc,
            inst: inst.to_string(),
        });
    }

    core.stats.retired += 1;
    let mut next_pc = pc + 1;
    let mut cost: u32;

    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            let a = core.reg(rs1);
            let b = core.reg(rs2);
            core.set_reg(rd, alu(op, a, b));
            cost = match op {
                AluOp::Mul | AluOp::Mulhu => cc.mul_cycles,
                _ => cc.alu_cycles,
            };
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let a = core.reg(rs1);
            core.set_reg(rd, alu(op, a, imm as u32));
            cost = cc.alu_cycles;
        }
        Inst::Li { rd, imm } => {
            core.set_reg(rd, imm);
            cost = if (imm as i32) >= -2048 && (imm as i32) < 2048 {
                cc.alu_cycles
            } else {
                cc.li_long_cycles
            };
        }
        Inst::Load {
            width,
            rd,
            base,
            offset,
        } => {
            let addr = core.reg(base).wrapping_add(offset as u32);
            core.status = Status::MemWait(PendingMem {
                addr,
                width,
                store_value: None,
                rd: Some(rd),
            });
            core.pc = next_pc;
            return Ok(());
        }
        Inst::Store {
            width,
            src,
            base,
            offset,
        } => {
            let addr = core.reg(base).wrapping_add(offset as u32);
            let value = core.reg(src);
            core.status = Status::MemWait(PendingMem {
                addr,
                width,
                store_value: Some(value),
                rd: None,
            });
            core.pc = next_pc;
            return Ok(());
        }
        Inst::LoadPost {
            width,
            rd,
            base,
            inc,
        } => {
            let addr = core.reg(base);
            core.set_reg(base, addr.wrapping_add(inc as u32));
            core.status = Status::MemWait(PendingMem {
                addr,
                width,
                store_value: None,
                rd: Some(rd),
            });
            core.pc = core.apply_hw_loop(pc, next_pc);
            return Ok(());
        }
        Inst::StorePost {
            width,
            src,
            base,
            inc,
        } => {
            let addr = core.reg(base);
            let value = core.reg(src);
            core.set_reg(base, addr.wrapping_add(inc as u32));
            core.status = Status::MemWait(PendingMem {
                addr,
                width,
                store_value: Some(value),
                rd: None,
            });
            core.pc = core.apply_hw_loop(pc, next_pc);
            return Ok(());
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let a = core.reg(rs1);
            let b = core.reg(rs2);
            let taken = match cond {
                BranchCond::Eq => a == b,
                BranchCond::Ne => a != b,
                BranchCond::Lt => (a as i32) < (b as i32),
                BranchCond::Ge => (a as i32) >= (b as i32),
                BranchCond::Ltu => a < b,
                BranchCond::Geu => a >= b,
            };
            if taken {
                next_pc = target;
                cost = cc.branch_taken_cycles;
            } else {
                cost = cc.branch_not_taken_cycles;
            }
        }
        Inst::Jal { rd, target } => {
            core.set_reg(rd, pc + 1);
            next_pc = target;
            cost = cc.jump_cycles;
        }
        Inst::Jalr { rd, rs1 } => {
            let target = core.reg(rs1);
            core.set_reg(rd, pc + 1);
            next_pc = target;
            cost = cc.jump_cycles;
        }
        Inst::PCnt { rd, rs1 } => {
            let v = core.reg(rs1);
            core.set_reg(rd, v.count_ones());
            cost = cc.bitmanip_cycles;
        }
        Inst::PExtractU { rd, rs1, len, pos } => {
            let v = core.reg(rs1);
            let mask = if len >= 32 {
                u32::MAX
            } else {
                (1u32 << len) - 1
            };
            core.set_reg(rd, (v >> pos) & mask);
            cost = cc.bitmanip_cycles;
        }
        Inst::PInsert { rd, rs1, len, pos } => {
            let mask = if len >= 32 {
                u32::MAX
            } else {
                (1u32 << len) - 1
            };
            let field = (core.reg(rs1) & mask) << pos;
            let kept = core.reg(rd) & !(mask << pos);
            core.set_reg(rd, kept | field);
            cost = cc.bitmanip_cycles;
        }
        Inst::LpSetup {
            count,
            body_start,
            body_end,
        } => {
            let n = core.reg(count);
            if n == 0 {
                next_pc = body_end + 1;
            } else {
                if core.hw_loops.len() >= MAX_HW_LOOPS {
                    return Err(SimError::HwLoopOverflow { core: core.id, pc });
                }
                core.hw_loops.push(HwLoop {
                    start: body_start,
                    end: body_end,
                    remaining: n,
                });
            }
            cost = cc.alu_cycles;
        }
        Inst::CoreId { rd } => {
            core.set_reg(rd, core.id as u32);
            cost = cc.alu_cycles;
        }
        Inst::NumCores { rd } => {
            core.set_reg(rd, ctx.cfg.n_cores as u32);
            cost = cc.alu_cycles;
        }
        Inst::Barrier => {
            core.status = Status::BarrierWait;
            core.pc = next_pc;
            return Ok(());
        }
        Inst::Fork => {
            cost = ctx.cfg.sync.fork_cycles(ctx.cfg.n_cores).max(1);
        }
        Inst::DmaStart { rd, desc } => {
            let desc_addr = core.reg(desc);
            let id = ctx
                .dma
                .start_from_descriptor(ctx.mem, desc_addr)
                .map_err(|e| SimError::BadDmaDescriptor {
                    core: core.id,
                    pc,
                    reason: e,
                })?;
            core.set_reg(rd, id);
            // Queue push is cheap; descriptor processing cost is modelled
            // inside the engine (startup cycles before data moves).
            cost = cc.alu_cycles;
        }
        Inst::DmaWait { rs1 } => {
            let id = core.reg(rs1);
            if !ctx.dma.id_exists(id) {
                return Err(SimError::UnknownDmaId {
                    core: core.id,
                    pc,
                    id,
                });
            }
            if !ctx.dma.is_complete(id) {
                core.status = Status::DmaWait(id);
                core.pc = next_pc;
                return Ok(());
            }
            cost = cc.alu_cycles;
        }
        Inst::Marker { id } => {
            if core.id == 0 {
                ctx.markers.push((id, ctx.cycle));
            }
            cost = cc.alu_cycles;
        }
        Inst::Halt => {
            core.status = Status::Halted;
            return Ok(());
        }
    }

    cost = cost.max(1);
    core.stats.busy += u64::from(cost);
    core.ready_at = ctx.cycle + u64::from(cost);
    core.pc = core.apply_hw_loop(pc, next_pc);
    Ok(())
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a << (b & 31),
        AluOp::Srl => a >> (b & 31),
        AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(AluOp::Add, 3, u32::MAX), 2);
        assert_eq!(alu(AluOp::Sub, 3, 5), u32::MAX - 1);
        assert_eq!(alu(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(
            alu(AluOp::Sll, 1, 35),
            8,
            "shift amount is masked to 5 bits"
        );
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Slt, u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(alu(AluOp::Sltu, u32::MAX, 0), 0, "max > 0 unsigned");
        assert_eq!(
            alu(AluOp::Mul, 0x1_0001, 0x1_0001),
            0x0002_0001,
            "low 32 bits of the 33-bit product"
        );
        assert_eq!(alu(AluOp::Mulhu, 0x8000_0000, 4), 2);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut core = Core::new(0);
        core.set_reg(crate::isa::regs::ZERO, 42);
        assert_eq!(core.reg(crate::isa::regs::ZERO), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut core = Core::new(1);
        core.set_reg(crate::isa::regs::T0, 42);
        core.pc = 17;
        core.status = Status::Halted;
        core.reset();
        assert_eq!(core.reg(crate::isa::regs::T0), 0);
        assert_eq!(core.pc(), 0);
        assert_eq!(core.status, Status::Running);
    }
}
