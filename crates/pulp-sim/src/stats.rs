//! Run statistics: per-core cycle breakdowns and region markers.

use crate::dma::DmaStats;

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Cycles spent executing instructions (issue + latency).
    pub busy: u64,
    /// Cycles lost to TCDM bank conflicts.
    pub stall_mem_conflict: u64,
    /// Cycles lost waiting for the L2 port.
    pub stall_l2: u64,
    /// Cycles lost waiting on DMA completion.
    pub stall_dma: u64,
    /// Cycles lost waiting at barriers.
    pub stall_barrier: u64,
}

impl CoreStats {
    /// Total accounted stall cycles.
    #[must_use]
    pub fn total_stalls(&self) -> u64 {
        self.stall_mem_conflict + self.stall_l2 + self.stall_dma + self.stall_barrier
    }
}

/// Result of running a program to completion on the cluster.
///
/// # Examples
///
/// ```
/// use pulp_sim::{Cluster, ClusterConfig};
/// use pulp_sim::asm::Assembler;
/// use pulp_sim::isa::regs::*;
///
/// let mut a = Assembler::new();
/// a.marker(0);
/// a.li(T0, 25);
/// a.label("spin");
/// a.addi(T0, T0, -1);
/// a.bnez(T0, "spin");
/// a.marker(1);
/// a.halt();
/// let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish()?);
/// let summary = cluster.run(10_000)?;
/// assert!(summary.region(0, 1).unwrap() >= 50);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Total cycles from start to the last core halting.
    pub cycles: u64,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// `(marker id, cycle)` events in program order (core 0 only).
    pub markers: Vec<(u32, u64)>,
    /// DMA statistics.
    pub dma: DmaStats,
}

impl RunSummary {
    /// All cycles at which marker `id` was executed, in order.
    #[must_use]
    pub fn marker_cycles(&self, id: u32) -> Vec<u64> {
        self.markers
            .iter()
            .filter(|&&(m, _)| m == id)
            .map(|&(_, c)| c)
            .collect()
    }

    /// The first cycle at which marker `id` was executed.
    #[must_use]
    pub fn first_marker(&self, id: u32) -> Option<u64> {
        self.markers
            .iter()
            .find(|&&(m, _)| m == id)
            .map(|&(_, c)| c)
    }

    /// Cycles between the first occurrences of two markers.
    ///
    /// Returns `None` if either marker is missing or they are out of
    /// order.
    #[must_use]
    pub fn region(&self, from: u32, to: u32) -> Option<u64> {
        let a = self.first_marker(from)?;
        let b = self.first_marker(to)?;
        b.checked_sub(a)
    }

    /// Sums the cycles of every paired `(from … to)` occurrence — for
    /// regions executed repeatedly (e.g. once per window sample).
    ///
    /// Pairs are formed in program order; unmatched occurrences are
    /// ignored.
    #[must_use]
    pub fn region_total(&self, from: u32, to: u32) -> u64 {
        let mut total = 0;
        let mut open: Option<u64> = None;
        for &(m, c) in &self.markers {
            if m == from {
                open = Some(c);
            } else if m == to {
                if let Some(start) = open.take() {
                    total += c.saturating_sub(start);
                }
            }
        }
        total
    }

    /// Total instructions retired across all cores.
    #[must_use]
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(markers: Vec<(u32, u64)>) -> RunSummary {
        RunSummary {
            cycles: 100,
            cores: vec![CoreStats::default()],
            markers,
            dma: DmaStats::default(),
        }
    }

    #[test]
    fn region_between_first_occurrences() {
        let s = summary(vec![(0, 10), (1, 35), (0, 50), (1, 80)]);
        assert_eq!(s.region(0, 1), Some(25));
        assert_eq!(s.region(1, 0), None, "reversed order yields None");
        assert_eq!(s.region(0, 9), None, "missing marker yields None");
    }

    #[test]
    fn region_total_sums_pairs() {
        let s = summary(vec![(0, 10), (1, 35), (0, 50), (1, 80), (0, 90)]);
        assert_eq!(s.region_total(0, 1), 25 + 30);
    }

    #[test]
    fn marker_cycles_filters_by_id() {
        let s = summary(vec![(0, 10), (1, 35), (0, 50)]);
        assert_eq!(s.marker_cycles(0), vec![10, 50]);
        assert_eq!(s.first_marker(1), Some(35));
    }

    #[test]
    fn stall_totals_add_up() {
        let c = CoreStats {
            retired: 10,
            busy: 20,
            stall_mem_conflict: 1,
            stall_l2: 2,
            stall_dma: 3,
            stall_barrier: 4,
        };
        assert_eq!(c.total_stalls(), 10);
    }
}
