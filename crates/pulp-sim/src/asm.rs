//! Assembler DSL for authoring kernel programs.
//!
//! Programs for the simulated cluster are built in Rust through
//! [`Assembler`], which provides one method per instruction plus the
//! usual pseudo-instructions and label-based control flow. The PULP-HD
//! kernels in `pulp-hd-core` are written against this API.
//!
//! # Examples
//!
//! A loop summing the words of an array:
//!
//! ```
//! use pulp_sim::asm::Assembler;
//! use pulp_sim::isa::regs::*;
//!
//! let mut a = Assembler::new();
//! // a0 = base, a1 = word count; returns sum in a0.
//! a.li(T0, 0);
//! a.label("loop");
//! a.lw(T1, A0, 0);
//! a.addi(A0, A0, 4);
//! a.add(T0, T0, T1);
//! a.addi(A1, A1, -1);
//! a.bnez(A1, "loop");
//! a.mv(A0, T0);
//! a.halt();
//! let program = a.finish()?;
//! assert_eq!(program.len(), 8);
//! # Ok::<(), pulp_sim::asm::AsmError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::isa::{AluOp, BranchCond, Inst, MemWidth, Reg};

/// Error produced when finishing an assembly unit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A hardware loop body is empty or inverted.
    EmptyLoopBody {
        /// Start label of the loop.
        start: String,
        /// End label of the loop.
        end: String,
    },
    /// The program has no instructions.
    EmptyProgram,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            Self::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            Self::EmptyLoopBody { start, end } => {
                write!(f, "hardware loop body `{start}`..`{end}` is empty")
            }
            Self::EmptyProgram => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A finished, label-resolved program.
///
/// Shared by all cores of a cluster (SPMD execution model).
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    comments: HashMap<u32, String>,
}

impl Program {
    /// The instruction at `index`.
    #[must_use]
    pub fn inst(&self, index: u32) -> Option<&Inst> {
        self.insts.get(index as usize)
    }

    /// All instructions in order.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for an assembled one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Resolved index of `label`, if defined.
    #[must_use]
    pub fn label(&self, label: &str) -> Option<u32> {
        self.labels.get(label).copied()
    }

    /// A human-readable listing with labels and comments, for debugging
    /// kernels.
    #[must_use]
    pub fn listing(&self) -> String {
        let mut by_index: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &idx) in &self.labels {
            by_index.entry(idx).or_default().push(name);
        }
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let i = i as u32;
            if let Some(names) = by_index.get(&i) {
                for name in names {
                    out.push_str(name);
                    out.push_str(":\n");
                }
            }
            if let Some(c) = self.comments.get(&i) {
                out.push_str(&format!("    {inst:<40} ; {c}\n"));
            } else {
                out.push_str(&format!("    {inst}\n"));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Fixup {
    Branch {
        inst: usize,
        label: String,
    },
    Jal {
        inst: usize,
        label: String,
    },
    LpSetup {
        inst: usize,
        start: String,
        end: String,
    },
}

/// Incremental program builder with label resolution.
///
/// See the [module documentation](self) for an example.
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    labels: HashMap<String, u32>,
    fixups: Vec<Fixup>,
    comments: HashMap<u32, String>,
}

impl Assembler {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (where the next instruction will land).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (programming error in the kernel
    /// generator, caught immediately).
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_owned(), self.here());
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Attaches a comment to the next emitted instruction (shows up in
    /// [`Program::listing`]).
    pub fn comment(&mut self, text: &str) {
        self.comments.insert(self.here(), text.to_owned());
    }

    fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    // --- ALU register-register ---------------------------------------

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 << (rs2 & 31)`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 >> (rs2 & 31)` (logical).
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 >> (rs2 & 31)` (arithmetic).
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Sra,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 <ₛ rs2) ? 1 : 0`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 <ᵤ rs2) ? 1 : 0`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 * rs2` (low 32 bits).
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = (rs1 * rs2) >> 32` (unsigned high product).
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.push(Inst::Alu {
            op: AluOp::Mulhu,
            rd,
            rs1,
            rs2,
        });
    }

    // --- ALU immediate -------------------------------------------------

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Inst::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 | imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 ^ imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Inst::AluImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 << shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u8) {
        self.push(Inst::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: i32::from(shamt),
        });
    }

    /// `rd = rs1 >> shamt` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u8) {
        self.push(Inst::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: i32::from(shamt),
        });
    }

    /// `rd = rs1 >> shamt` (arithmetic).
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u8) {
        self.push(Inst::AluImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: i32::from(shamt),
        });
    }

    /// `rd = (rs1 <ₛ imm) ? 1 : 0`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Inst::AluImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = (rs1 <ᵤ imm) ? 1 : 0`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.push(Inst::AluImm {
            op: AluOp::Sltu,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = imm` (any 32-bit value).
    pub fn li(&mut self, rd: Reg, imm: u32) {
        self.push(Inst::Li { rd, imm });
    }

    /// `rd = rs` (pseudo: `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// No-operation (pseudo: `addi x0, x0, 0`).
    pub fn nop(&mut self) {
        self.addi(crate::isa::regs::ZERO, crate::isa::regs::ZERO, 0);
    }

    // --- Memory ----------------------------------------------------------

    /// `rd = mem32[base + offset]`.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.push(Inst::Load {
            width: MemWidth::Word,
            rd,
            base,
            offset,
        });
    }

    /// `rd = zext(mem16[base + offset])`.
    pub fn lhu(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.push(Inst::Load {
            width: MemWidth::Half,
            rd,
            base,
            offset,
        });
    }

    /// `rd = zext(mem8[base + offset])`.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.push(Inst::Load {
            width: MemWidth::Byte,
            rd,
            base,
            offset,
        });
    }

    /// `mem32[base + offset] = src`.
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i32) {
        self.push(Inst::Store {
            width: MemWidth::Word,
            src,
            base,
            offset,
        });
    }

    /// `mem16[base + offset] = src[15:0]`.
    pub fn sh(&mut self, src: Reg, base: Reg, offset: i32) {
        self.push(Inst::Store {
            width: MemWidth::Half,
            src,
            base,
            offset,
        });
    }

    /// `mem8[base + offset] = src[7:0]`.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i32) {
        self.push(Inst::Store {
            width: MemWidth::Byte,
            src,
            base,
            offset,
        });
    }

    /// Post-increment word load: `rd = mem32[base]; base += inc`
    /// (XpulpV2 only).
    pub fn lw_post(&mut self, rd: Reg, base: Reg, inc: i32) {
        self.push(Inst::LoadPost {
            width: MemWidth::Word,
            rd,
            base,
            inc,
        });
    }

    /// Post-increment halfword load (XpulpV2 only).
    pub fn lhu_post(&mut self, rd: Reg, base: Reg, inc: i32) {
        self.push(Inst::LoadPost {
            width: MemWidth::Half,
            rd,
            base,
            inc,
        });
    }

    /// Post-increment word store (XpulpV2 only).
    pub fn sw_post(&mut self, src: Reg, base: Reg, inc: i32) {
        self.push(Inst::StorePost {
            width: MemWidth::Word,
            src,
            base,
            inc,
        });
    }

    // --- Control flow ------------------------------------------------------

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) {
        self.fixups.push(Fixup::Branch {
            inst: self.insts.len(),
            label: label.to_owned(),
        });
        self.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }

    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }

    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchCond::Geu, rs1, rs2, label);
    }

    /// Branch if zero (pseudo).
    pub fn beqz(&mut self, rs1: Reg, label: &str) {
        self.beq(rs1, crate::isa::regs::ZERO, label);
    }

    /// Branch if nonzero (pseudo).
    pub fn bnez(&mut self, rs1: Reg, label: &str) {
        self.bne(rs1, crate::isa::regs::ZERO, label);
    }

    /// Unconditional jump (pseudo: `jal x0, label`).
    pub fn j(&mut self, label: &str) {
        self.fixups.push(Fixup::Jal {
            inst: self.insts.len(),
            label: label.to_owned(),
        });
        self.push(Inst::Jal {
            rd: crate::isa::regs::ZERO,
            target: u32::MAX,
        });
    }

    /// Indirect jump to the instruction index in `rs1`, linking into
    /// `rd`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg) {
        self.push(Inst::Jalr { rd, rs1 });
    }

    /// Subroutine return (pseudo: `jalr x0, ra`).
    pub fn ret(&mut self) {
        self.jalr(crate::isa::regs::ZERO, crate::isa::regs::RA);
    }

    /// Subroutine call (pseudo: `jal ra, label`).
    pub fn call(&mut self, label: &str) {
        self.jal(crate::isa::regs::RA, label);
    }

    /// Jump and link.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.fixups.push(Fixup::Jal {
            inst: self.insts.len(),
            label: label.to_owned(),
        });
        self.push(Inst::Jal {
            rd,
            target: u32::MAX,
        });
    }

    /// Hardware loop (XpulpV2 only): repeats the body between
    /// `start_label` and `end_label` for the iteration count in `count`.
    /// `end_label` must be placed *after* the last body instruction.
    pub fn lp_setup(&mut self, count: Reg, start_label: &str, end_label: &str) {
        self.fixups.push(Fixup::LpSetup {
            inst: self.insts.len(),
            start: start_label.to_owned(),
            end: end_label.to_owned(),
        });
        self.push(Inst::LpSetup {
            count,
            body_start: u32::MAX,
            body_end: u32::MAX,
        });
    }

    // --- XpulpV2 bit manipulation -----------------------------------------

    /// `p.cnt rd, rs1` — population count (XpulpV2 only).
    pub fn p_cnt(&mut self, rd: Reg, rs1: Reg) {
        self.push(Inst::PCnt { rd, rs1 });
    }

    /// `p.extractu rd, rs1, len, pos` (XpulpV2 only).
    ///
    /// # Panics
    ///
    /// Panics if the bit field is empty or exceeds 32 bits.
    pub fn p_extractu(&mut self, rd: Reg, rs1: Reg, len: u8, pos: u8) {
        assert!(len >= 1 && pos < 32 && u32::from(len) + u32::from(pos) <= 32);
        self.push(Inst::PExtractU { rd, rs1, len, pos });
    }

    /// `p.insert rd, rs1, len, pos` (XpulpV2 only).
    ///
    /// # Panics
    ///
    /// Panics if the bit field is empty or exceeds 32 bits.
    pub fn p_insert(&mut self, rd: Reg, rs1: Reg, len: u8, pos: u8) {
        assert!(len >= 1 && pos < 32 && u32::from(len) + u32::from(pos) <= 32);
        self.push(Inst::PInsert { rd, rs1, len, pos });
    }

    // --- Cluster ------------------------------------------------------------

    /// `rd = core id`.
    pub fn coreid(&mut self, rd: Reg) {
        self.push(Inst::CoreId { rd });
    }

    /// `rd = cluster core count`.
    pub fn numcores(&mut self, rd: Reg) {
        self.push(Inst::NumCores { rd });
    }

    /// Cluster barrier.
    pub fn barrier(&mut self) {
        self.push(Inst::Barrier);
    }

    /// OpenMP parallel-region entry cost marker.
    pub fn fork(&mut self) {
        self.push(Inst::Fork);
    }

    /// Start a DMA transfer from the descriptor pointed to by `desc`.
    pub fn dma_start(&mut self, rd: Reg, desc: Reg) {
        self.push(Inst::DmaStart { rd, desc });
    }

    /// Wait for the DMA transfer id in `rs1`.
    pub fn dma_wait(&mut self, rs1: Reg) {
        self.push(Inst::DmaWait { rs1 });
    }

    /// Statistics region marker.
    pub fn marker(&mut self, id: u32) {
        self.push(Inst::Marker { id });
    }

    /// Stop this core.
    pub fn halt(&mut self) {
        self.push(Inst::Halt);
    }

    /// Resolves all labels and returns the finished program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined labels, empty hardware-loop
    /// bodies, or an empty program.
    pub fn finish(self) -> Result<Program, AsmError> {
        let Self {
            mut insts,
            labels,
            fixups,
            comments,
        } = self;
        if insts.is_empty() {
            return Err(AsmError::EmptyProgram);
        }
        let resolve = |label: &str| -> Result<u32, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_owned()))
        };
        for fixup in fixups {
            match fixup {
                Fixup::Branch { inst, label } => {
                    let target = resolve(&label)?;
                    if let Inst::Branch { target: t, .. } = &mut insts[inst] {
                        *t = target;
                    }
                }
                Fixup::Jal { inst, label } => {
                    let target = resolve(&label)?;
                    if let Inst::Jal { target: t, .. } = &mut insts[inst] {
                        *t = target;
                    }
                }
                Fixup::LpSetup { inst, start, end } => {
                    let s = resolve(&start)?;
                    let e = resolve(&end)?;
                    if e == 0 || s > e - 1 {
                        return Err(AsmError::EmptyLoopBody { start, end });
                    }
                    if let Inst::LpSetup {
                        body_start,
                        body_end,
                        ..
                    } = &mut insts[inst]
                    {
                        *body_start = s;
                        *body_end = e - 1;
                    }
                }
            }
        }
        Ok(Program {
            insts,
            labels,
            comments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::regs::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut a = Assembler::new();
        a.label("start");
        a.addi(T0, T0, 1);
        a.bne(T0, T1, "start");
        a.beq(T0, T1, "done");
        a.j("start");
        a.label("done");
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("done"), Some(4));
        match p.inst(1).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
        match p.inst(2).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(*target, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.j("nowhere");
        a.halt();
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics_eagerly() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(
            Assembler::new().finish().unwrap_err(),
            AsmError::EmptyProgram
        );
    }

    #[test]
    fn hw_loop_bounds_resolve_to_inclusive_body() {
        let mut a = Assembler::new();
        a.li(T0, 4);
        a.lp_setup(T0, "body", "body_end");
        a.label("body");
        a.addi(T1, T1, 1);
        a.addi(T2, T2, 2);
        a.label("body_end");
        a.halt();
        let p = a.finish().unwrap();
        match p.inst(1).unwrap() {
            Inst::LpSetup {
                body_start,
                body_end,
                ..
            } => {
                assert_eq!(*body_start, 2);
                assert_eq!(*body_end, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_hw_loop_body_is_an_error() {
        let mut a = Assembler::new();
        a.li(T0, 4);
        a.lp_setup(T0, "b", "b");
        a.label("b");
        a.halt();
        assert!(matches!(
            a.finish().unwrap_err(),
            AsmError::EmptyLoopBody { .. }
        ));
    }

    #[test]
    fn listing_shows_labels_and_comments() {
        let mut a = Assembler::new();
        a.label("entry");
        a.comment("initialize accumulator");
        a.li(T0, 0);
        a.halt();
        let p = a.finish().unwrap();
        let listing = p.listing();
        assert!(listing.contains("entry:"));
        assert!(listing.contains("; initialize accumulator"));
        assert!(listing.contains("halt"));
    }

    #[test]
    fn pseudo_instructions_expand_correctly() {
        let mut a = Assembler::new();
        a.mv(T0, T1);
        a.nop();
        a.halt();
        let p = a.finish().unwrap();
        assert_eq!(
            p.inst(0).unwrap(),
            &Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: T1,
                imm: 0
            }
        );
        assert_eq!(
            p.inst(1).unwrap(),
            &Inst::AluImm {
                op: AluOp::Add,
                rd: ZERO,
                rs1: ZERO,
                imm: 0
            }
        );
    }

    #[test]
    #[should_panic]
    fn p_extract_field_validation() {
        let mut a = Assembler::new();
        a.p_extractu(T0, T1, 8, 28); // 8 + 28 > 32
    }
}
