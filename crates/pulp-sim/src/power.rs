//! Analytic power model of the PULPv3 SoC, fitted to the silicon
//! measurements of the paper's Table 2.
//!
//! The model decomposes total power into
//!
//! ```text
//! P_total = P_FLL + k_soc·f + (c0 + c1·n)·f·(V/V_ref)^α
//! ```
//!
//! * `P_FLL` — the two frequency-locked loops, a fixed 1.45 mW on PULPv3
//!   (the paper notes this block dominates at low voltage and that a
//!   next-generation FLL would cut it by 4×).
//! * `k_soc·f` — the SoC domain (L2 + peripherals), linear in frequency.
//! * cluster power — a shared-infrastructure term `c0` plus a per-core
//!   term `c1·n`, linear in frequency and scaling with voltage as
//!   `V^α`; α ≈ 2.2 captures the measured near-threshold behaviour
//!   between 0.7 V and 0.5 V (a pure `V²` model under-predicts the
//!   saving).
//!
//! Constants were fitted to the three PULPv3 rows of Table 2 and
//! reproduce them to within a few percent (verified by unit tests and by
//! the `table2` experiment binary).

/// An operating point of the cluster domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Cluster supply voltage in volts.
    pub voltage_v: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics on non-positive voltage or frequency.
    #[must_use]
    pub fn new(voltage_v: f64, freq_mhz: f64) -> Self {
        assert!(voltage_v > 0.0, "voltage must be positive");
        assert!(freq_mhz > 0.0, "frequency must be positive");
        Self {
            voltage_v,
            freq_mhz,
        }
    }
}

/// Per-domain power breakdown in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Clock-generation (FLL) power.
    pub fll_mw: f64,
    /// SoC domain (L2, peripherals).
    pub soc_mw: f64,
    /// Cluster domain (cores + TCDM + interconnect).
    pub cluster_mw: f64,
}

impl PowerBreakdown {
    /// Total power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.fll_mw + self.soc_mw + self.cluster_mw
    }
}

/// The fitted PULPv3 power model.
///
/// # Examples
///
/// ```
/// use pulp_sim::power::{OperatingPoint, PowerModel};
///
/// let model = PowerModel::pulpv3();
/// // Table 2, row "PULPv3 4 cores @ 0.5 V": 143 kcycles in 10 ms
/// // ⇒ 14.3 MHz; the paper measured 2.10 mW total.
/// let p = model.breakdown(4, OperatingPoint::new(0.5, 14.3));
/// assert!((p.total_mw() - 2.10).abs() < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Fixed FLL power (mW).
    pub fll_mw: f64,
    /// SoC power per MHz (mW/MHz).
    pub soc_mw_per_mhz: f64,
    /// Cluster shared-infrastructure power per MHz at `v_ref` (mW/MHz).
    pub cluster_base_mw_per_mhz: f64,
    /// Cluster per-core power per MHz at `v_ref` (mW/MHz).
    pub cluster_core_mw_per_mhz: f64,
    /// Reference voltage the cluster constants were fitted at (V).
    pub v_ref: f64,
    /// Voltage-scaling exponent.
    pub alpha: f64,
}

impl PowerModel {
    /// Constants fitted to the PULPv3 rows of Table 2.
    #[must_use]
    pub fn pulpv3() -> Self {
        Self {
            fll_mw: 1.45,
            soc_mw_per_mhz: 0.0162,
            cluster_base_mw_per_mhz: 0.0270,
            cluster_core_mw_per_mhz: 0.0087,
            v_ref: 0.7,
            alpha: 2.2,
        }
    }

    /// A hypothetical PULPv3 with the next-generation low-power FLL the
    /// paper cites (4× lower clock-generation power).
    #[must_use]
    pub fn pulpv3_next_gen_fll() -> Self {
        Self {
            fll_mw: 1.45 / 4.0,
            ..Self::pulpv3()
        }
    }

    /// Cluster-domain power at an operating point with `n_cores` active.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    #[must_use]
    pub fn cluster_mw(&self, n_cores: usize, op: OperatingPoint) -> f64 {
        assert!(n_cores > 0, "at least one active core");
        let v_scale = (op.voltage_v / self.v_ref).powf(self.alpha);
        (self.cluster_base_mw_per_mhz + self.cluster_core_mw_per_mhz * n_cores as f64)
            * op.freq_mhz
            * v_scale
    }

    /// Full power breakdown at an operating point.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    #[must_use]
    pub fn breakdown(&self, n_cores: usize, op: OperatingPoint) -> PowerBreakdown {
        PowerBreakdown {
            fll_mw: self.fll_mw,
            soc_mw: self.soc_mw_per_mhz * op.freq_mhz,
            cluster_mw: self.cluster_mw(n_cores, op),
        }
    }

    /// Energy in microjoules to execute `cycles` at the operating point
    /// (the whole SoC runs for `cycles / f` seconds).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores == 0`.
    #[must_use]
    pub fn energy_uj(&self, n_cores: usize, op: OperatingPoint, cycles: u64) -> f64 {
        let seconds = cycles as f64 / (op.freq_mhz * 1e6);
        self.breakdown(n_cores, op).total_mw() * 1e-3 * seconds * 1e6
    }
}

/// The ARM Cortex M4 reference (STM32F4-class, 90 nm), as measured in
/// Table 2: a single fixed operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CortexM4Power {
    /// Measured total power (mW) at 1.85 V.
    pub total_mw: f64,
    /// Maximum sustainable clock (MHz) — an STM32F407 tops out at 168.
    pub f_max_mhz: f64,
}

impl CortexM4Power {
    /// Table 2 values.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            total_mw: 20.83,
            f_max_mhz: 168.0,
        }
    }

    /// Energy in microjoules to execute `cycles` at frequency `f_mhz`.
    ///
    /// The measured figure is treated as frequency-independent within the
    /// paper's operating range (dominated by core+flash active power).
    #[must_use]
    pub fn energy_uj(&self, f_mhz: f64, cycles: u64) -> f64 {
        let seconds = cycles as f64 / (f_mhz * 1e6);
        self.total_mw * 1e-3 * seconds * 1e6
    }
}

/// Frequency (MHz) needed to retire `cycles` within `latency_ms`.
///
/// This is how the paper picks operating frequencies: Table 2's
/// 53.3 MHz is exactly 533 kcycles in 10 ms.
///
/// # Panics
///
/// Panics if `latency_ms` is not positive.
#[must_use]
pub fn frequency_for_latency_mhz(cycles: u64, latency_ms: f64) -> f64 {
    assert!(latency_ms > 0.0, "latency must be positive");
    cycles as f64 / (latency_ms * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 0.12; // mW — fit tolerance against silicon numbers

    #[test]
    fn frequency_selection_matches_table2() {
        assert!((frequency_for_latency_mhz(533_000, 10.0) - 53.3).abs() < 1e-9);
        assert!((frequency_for_latency_mhz(143_000, 10.0) - 14.3).abs() < 1e-9);
        assert!((frequency_for_latency_mhz(439_000, 10.0) - 43.9).abs() < 1e-9);
    }

    #[test]
    fn fits_table2_single_core_row() {
        let m = PowerModel::pulpv3();
        let p = m.breakdown(1, OperatingPoint::new(0.7, 53.3));
        assert!((p.fll_mw - 1.45).abs() < 1e-9);
        assert!((p.soc_mw - 0.87).abs() < TOL, "soc {}", p.soc_mw);
        assert!(
            (p.cluster_mw - 1.90).abs() < TOL,
            "cluster {}",
            p.cluster_mw
        );
        assert!(
            (p.total_mw() - 4.22).abs() < 2.0 * TOL,
            "total {}",
            p.total_mw()
        );
    }

    #[test]
    fn fits_table2_quad_core_07v_row() {
        let m = PowerModel::pulpv3();
        let p = m.breakdown(4, OperatingPoint::new(0.7, 14.3));
        assert!((p.soc_mw - 0.23).abs() < TOL, "soc {}", p.soc_mw);
        assert!(
            (p.cluster_mw - 0.88).abs() < TOL,
            "cluster {}",
            p.cluster_mw
        );
        assert!(
            (p.total_mw() - 2.56).abs() < 2.0 * TOL,
            "total {}",
            p.total_mw()
        );
    }

    #[test]
    fn fits_table2_quad_core_05v_row() {
        let m = PowerModel::pulpv3();
        let p = m.breakdown(4, OperatingPoint::new(0.5, 14.3));
        assert!(
            (p.cluster_mw - 0.42).abs() < TOL,
            "cluster {}",
            p.cluster_mw
        );
        assert!(
            (p.total_mw() - 2.10).abs() < 2.0 * TOL,
            "total {}",
            p.total_mw()
        );
    }

    #[test]
    fn power_boost_ratios_match_paper() {
        // Boost = P(ARM M4) / P(PULPv3 config): 4.9×, 8.1×, 9.9×.
        let m = PowerModel::pulpv3();
        let arm = CortexM4Power::paper().total_mw;
        let b1 = arm / m.breakdown(1, OperatingPoint::new(0.7, 53.3)).total_mw();
        let b4 = arm / m.breakdown(4, OperatingPoint::new(0.7, 14.3)).total_mw();
        let b5 = arm / m.breakdown(4, OperatingPoint::new(0.5, 14.3)).total_mw();
        assert!((b1 - 4.9).abs() < 0.4, "boost 1c {b1}");
        assert!((b4 - 8.1).abs() < 0.6, "boost 4c@0.7 {b4}");
        assert!((b5 - 9.9).abs() < 0.8, "boost 4c@0.5 {b5}");
    }

    #[test]
    fn four_core_run_saves_about_2x_energy() {
        // The paper's headline: 3.7× speed-up and ~2× energy saving vs
        // single-core execution (same 10 ms deadline, lower V/f).
        let m = PowerModel::pulpv3();
        let e1 = m.energy_uj(1, OperatingPoint::new(0.7, 53.3), 533_000);
        let e4 = m.energy_uj(4, OperatingPoint::new(0.5, 14.3), 143_000);
        let saving = e1 / e4;
        assert!((1.7..2.4).contains(&saving), "energy saving {saving}");
    }

    #[test]
    fn next_gen_fll_roughly_doubles_efficiency() {
        let now = PowerModel::pulpv3();
        let next = PowerModel::pulpv3_next_gen_fll();
        let op = OperatingPoint::new(0.5, 14.3);
        let ratio = now.breakdown(4, op).total_mw() / next.breakdown(4, op).total_mw();
        assert!((1.6..2.4).contains(&ratio), "fll upgrade ratio {ratio}");
        // And ≈20× boost vs the M4, as the paper projects.
        let boost = CortexM4Power::paper().total_mw / next.breakdown(4, op).total_mw();
        assert!((17.0..23.0).contains(&boost), "projected boost {boost}");
    }

    #[test]
    fn voltage_scaling_is_monotone() {
        let m = PowerModel::pulpv3();
        let hi = m.cluster_mw(4, OperatingPoint::new(0.7, 20.0));
        let lo = m.cluster_mw(4, OperatingPoint::new(0.5, 20.0));
        assert!(lo < hi);
    }

    #[test]
    fn m4_energy_accounting() {
        let m4 = CortexM4Power::paper();
        // 439 kcycles at 43.9 MHz = 10 ms at 20.83 mW ⇒ 208.3 µJ.
        let e = m4.energy_uj(43.9, 439_000);
        assert!((e - 208.3).abs() < 0.5, "energy {e}");
    }
}
