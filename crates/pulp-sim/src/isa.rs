//! Instruction set of the simulated cluster cores.
//!
//! The ISA is a compact RV32IM-flavoured core set plus the XpulpV2-style
//! extensions the PULP-HD paper relies on (`p.cnt`, `p.extractu`,
//! `p.insert`, post-increment memory accesses, hardware loops) and a few
//! cluster-level operations (core id, barrier, DMA control, statistics
//! markers). Extension instructions are only *legal* on cores whose
//! [`CoreConfig`](crate::config::CoreConfig) enables them — executing one
//! on a PULPv3- or Cortex-M4-configured core is an
//! [`IllegalInstruction`](crate::SimError::IllegalInstruction) fault,
//! which keeps kernel variants honest.
//!
//! Branch/jump targets are *resolved instruction indices* (the assembler
//! fixes up labels); there is no encoding layer, the simulator executes
//! the enum directly.

use core::fmt;

/// A general-purpose register index (`x0`–`x31`); `x0` reads as zero and
/// ignores writes, as in RISC-V.
///
/// # Examples
///
/// ```
/// use pulp_sim::isa::Reg;
///
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(format!("{r}"), "x5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "register index out of range");
        Self(index)
    }

    /// The register number (0–31).
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Conventional register names (RISC-V ABI), used by the kernel sources
/// for readability.
pub mod regs {
    use super::Reg;

    /// Hardwired zero.
    pub const ZERO: Reg = Reg::new(0);
    /// Return address.
    pub const RA: Reg = Reg::new(1);
    /// Stack pointer.
    pub const SP: Reg = Reg::new(2);
    /// Temporaries `t0`–`t6`.
    pub const T0: Reg = Reg::new(5);
    /// Temporary register.
    pub const T1: Reg = Reg::new(6);
    /// Temporary register.
    pub const T2: Reg = Reg::new(7);
    /// Temporary register.
    pub const T3: Reg = Reg::new(28);
    /// Temporary register.
    pub const T4: Reg = Reg::new(29);
    /// Temporary register.
    pub const T5: Reg = Reg::new(30);
    /// Temporary register.
    pub const T6: Reg = Reg::new(31);
    /// Saved registers `s0`–`s11`.
    pub const S0: Reg = Reg::new(8);
    /// Saved register.
    pub const S1: Reg = Reg::new(9);
    /// Saved register.
    pub const S2: Reg = Reg::new(18);
    /// Saved register.
    pub const S3: Reg = Reg::new(19);
    /// Saved register.
    pub const S4: Reg = Reg::new(20);
    /// Saved register.
    pub const S5: Reg = Reg::new(21);
    /// Saved register.
    pub const S6: Reg = Reg::new(22);
    /// Saved register.
    pub const S7: Reg = Reg::new(23);
    /// Saved register.
    pub const S8: Reg = Reg::new(24);
    /// Saved register.
    pub const S9: Reg = Reg::new(25);
    /// Saved register.
    pub const S10: Reg = Reg::new(26);
    /// Saved register.
    pub const S11: Reg = Reg::new(27);
    /// Argument registers `a0`–`a7`.
    pub const A0: Reg = Reg::new(10);
    /// Argument register.
    pub const A1: Reg = Reg::new(11);
    /// Argument register.
    pub const A2: Reg = Reg::new(12);
    /// Argument register.
    pub const A3: Reg = Reg::new(13);
    /// Argument register.
    pub const A4: Reg = Reg::new(14);
    /// Argument register.
    pub const A5: Reg = Reg::new(15);
    /// Argument register.
    pub const A6: Reg = Reg::new(16);
    /// Argument register.
    pub const A7: Reg = Reg::new(17);
}

/// Register–register ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (by low 5 bits of rs2).
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// 32×32→32 multiplication (low word).
    Mul,
    /// Upper 32 bits of the unsigned 32×32 product.
    Mulhu,
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 8-bit (zero-extended on load).
    Byte,
    /// 16-bit (zero-extended on load).
    Half,
    /// 32-bit.
    Word,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        match self {
            Self::Byte => 1,
            Self::Half => 2,
            Self::Word => 4,
        }
    }
}

/// One instruction of the simulated ISA.
///
/// Field order follows assembly convention: destination first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd = rs1 <op> rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 <op> imm` (shifts use the low 5 bits of `imm`).
    AluImm {
        /// Operation (`Sub`, `Mul`, `Mulhu` are not available in immediate
        /// form, mirroring RISC-V).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `rd = imm` (32-bit load-immediate; stands in for `lui+addi`, and is
    /// costed as such by the timing model when the value does not fit in
    /// 12 bits).
    Li {
        /// Destination.
        rd: Reg,
        /// Value.
        imm: u32,
    },
    /// Load: `rd = mem[rs1 + offset]`, zero-extended.
    Load {
        /// Access width.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Store: `mem[rs1 + offset] = rs2`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// XpulpV2 post-increment load: `rd = mem[base]; base += inc`.
    LoadPost {
        /// Access width.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Base address register (updated).
        base: Reg,
        /// Post-increment in bytes.
        inc: i32,
    },
    /// XpulpV2 post-increment store: `mem[base] = src; base += inc`.
    StorePost {
        /// Access width.
        width: MemWidth,
        /// Value to store.
        src: Reg,
        /// Base address register (updated).
        base: Reg,
        /// Post-increment in bytes.
        inc: i32,
    },
    /// Conditional branch to instruction index `target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Resolved target (instruction index).
        target: u32,
    },
    /// Unconditional jump; `rd` receives the return index (ignored when
    /// `rd = x0`).
    Jal {
        /// Link register.
        rd: Reg,
        /// Resolved target (instruction index).
        target: u32,
    },
    /// Indirect jump to the instruction index in `rs1`; `rd` receives the
    /// return index. `jalr x0, ra` is the subroutine return.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Target register.
        rs1: Reg,
    },
    /// `p.cnt rd, rs1` — population count (XpulpV2).
    PCnt {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
    },
    /// `p.extractu rd, rs1, len, pos` — `rd = (rs1 >> pos) & ((1<<len)-1)`
    /// (XpulpV2).
    PExtractU {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs1: Reg,
        /// Field length in bits (1–32).
        len: u8,
        /// Field position (0–31).
        pos: u8,
    },
    /// `p.insert rd, rs1, len, pos` — writes the low `len` bits of `rs1`
    /// into `rd[pos+len-1 : pos]`, other bits preserved (XpulpV2).
    PInsert {
        /// Destination (read-modify-write).
        rd: Reg,
        /// Source of the inserted field.
        rs1: Reg,
        /// Field length in bits (1–32).
        len: u8,
        /// Field position (0–31).
        pos: u8,
    },
    /// `lp.setup` — hardware loop: execute instructions
    /// `[body_start, body_end]` for `count` iterations (count read from
    /// `count_reg` at setup time; zero skips the body entirely).
    LpSetup {
        /// Iteration count register.
        count: Reg,
        /// First instruction index of the body.
        body_start: u32,
        /// Last instruction index of the body (inclusive).
        body_end: u32,
    },
    /// `rd = core id` (0-based within the cluster).
    CoreId {
        /// Destination.
        rd: Reg,
    },
    /// `rd = number of cores` in the cluster.
    NumCores {
        /// Destination.
        rd: Reg,
    },
    /// Cluster-wide barrier rendezvous.
    Barrier,
    /// Models the OpenMP parallel-region entry cost (team wake-up /
    /// work-descriptor distribution). Semantically a no-op.
    Fork,
    /// Starts the DMA transfer described by the 6-word descriptor at the
    /// address in `desc`, writing the transfer id into `rd`.
    DmaStart {
        /// Receives the transfer id.
        rd: Reg,
        /// Address of the descriptor (must be 4-byte aligned, in L1).
        desc: Reg,
    },
    /// Blocks until DMA transfer id in `rs1` has completed.
    DmaWait {
        /// Transfer id to wait for.
        rs1: Reg,
    },
    /// Statistics marker: records the current cycle under `id` (core 0
    /// only; other cores execute it as a no-op).
    Marker {
        /// Region marker id.
        id: u32,
    },
    /// Stops this core.
    Halt,
}

impl Inst {
    /// Whether this instruction requires the XpulpV2 bit-manipulation
    /// extension.
    #[must_use]
    pub fn needs_bitmanip(&self) -> bool {
        matches!(
            self,
            Self::PCnt { .. } | Self::PExtractU { .. } | Self::PInsert { .. }
        )
    }

    /// Whether this instruction requires post-increment addressing
    /// support.
    #[must_use]
    pub fn needs_post_increment(&self) -> bool {
        matches!(self, Self::LoadPost { .. } | Self::StorePost { .. })
    }

    /// Whether this instruction requires hardware-loop support.
    #[must_use]
    pub fn needs_hw_loops(&self) -> bool {
        matches!(self, Self::LpSetup { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(*op))
            }
            Self::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(*op))
            }
            Self::Li { rd, imm } => write!(f, "li {rd}, {imm:#x}"),
            Self::Load {
                width,
                rd,
                base,
                offset,
            } => {
                write!(f, "l{} {rd}, {offset}({base})", width_name(*width))
            }
            Self::Store {
                width,
                src,
                base,
                offset,
            } => {
                write!(f, "s{} {src}, {offset}({base})", width_name(*width))
            }
            Self::LoadPost {
                width,
                rd,
                base,
                inc,
            } => {
                write!(f, "p.l{} {rd}, {inc}({base}!)", width_name(*width))
            }
            Self::StorePost {
                width,
                src,
                base,
                inc,
            } => {
                write!(f, "p.s{} {src}, {inc}({base}!)", width_name(*width))
            }
            Self::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let name = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, @{target}")
            }
            Self::Jal { rd, target } => write!(f, "jal {rd}, @{target}"),
            Self::Jalr { rd, rs1 } => write!(f, "jalr {rd}, {rs1}"),
            Self::PCnt { rd, rs1 } => write!(f, "p.cnt {rd}, {rs1}"),
            Self::PExtractU { rd, rs1, len, pos } => {
                write!(f, "p.extractu {rd}, {rs1}, {len}, {pos}")
            }
            Self::PInsert { rd, rs1, len, pos } => {
                write!(f, "p.insert {rd}, {rs1}, {len}, {pos}")
            }
            Self::LpSetup {
                count,
                body_start,
                body_end,
            } => {
                write!(f, "lp.setup {count}, @{body_start}..@{body_end}")
            }
            Self::CoreId { rd } => write!(f, "coreid {rd}"),
            Self::NumCores { rd } => write!(f, "numcores {rd}"),
            Self::Barrier => write!(f, "barrier"),
            Self::Fork => write!(f, "fork"),
            Self::DmaStart { rd, desc } => write!(f, "dma.start {rd}, ({desc})"),
            Self::DmaWait { rs1 } => write!(f, "dma.wait {rs1}"),
            Self::Marker { id } => write!(f, "marker {id}"),
            Self::Halt => write!(f, "halt"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Mul => "mul",
        AluOp::Mulhu => "mulhu",
    }
}

fn width_name(width: MemWidth) -> &'static str {
    match width {
        MemWidth::Byte => "b",
        MemWidth::Half => "h",
        MemWidth::Word => "w",
    }
}

#[cfg(test)]
mod tests {
    use super::regs::*;
    use super::*;

    #[test]
    fn reg_zero_detection() {
        assert!(ZERO.is_zero());
        assert!(!T0.is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn abi_registers_are_distinct() {
        let all = [
            ZERO, RA, SP, T0, T1, T2, T3, T4, T5, T6, S0, S1, S2, S3, S4, S5, S6, S7, S8, S9, S10,
            S11, A0, A1, A2, A3, A4, A5, A6, A7,
        ];
        let mut idx: Vec<u8> = all.iter().map(|r| r.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), all.len());
    }

    #[test]
    fn extension_classification() {
        assert!(Inst::PCnt { rd: T0, rs1: T1 }.needs_bitmanip());
        assert!(Inst::LoadPost {
            width: MemWidth::Word,
            rd: T0,
            base: T1,
            inc: 4
        }
        .needs_post_increment());
        assert!(Inst::LpSetup {
            count: T0,
            body_start: 0,
            body_end: 1
        }
        .needs_hw_loops());
        assert!(!Inst::Halt.needs_bitmanip());
    }

    #[test]
    fn disassembly_is_nonempty_and_descriptive() {
        let insts = [
            Inst::Alu {
                op: AluOp::Xor,
                rd: T0,
                rs1: T1,
                rs2: T2,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: T1,
                imm: -4,
            },
            Inst::Li {
                rd: A0,
                imm: 0xdead_beef,
            },
            Inst::Load {
                width: MemWidth::Word,
                rd: T0,
                base: SP,
                offset: 8,
            },
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: T0,
                rs2: ZERO,
                target: 3,
            },
            Inst::PCnt { rd: T0, rs1: T1 },
            Inst::Barrier,
            Inst::Halt,
        ];
        let expect = ["xor", "addi", "li", "lw", "bne", "p.cnt", "barrier", "halt"];
        for (inst, word) in insts.iter().zip(expect) {
            let text = inst.to_string();
            assert!(text.starts_with(word), "{text} should start with {word}");
        }
    }

    #[test]
    fn mem_width_sizes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }
}
