//! The cluster DMA engine.
//!
//! Models PULP's lightweight `mchan`-style DMA: cores enqueue transfers by
//! pointing the engine at a six-word descriptor in L1, transfers are
//! processed in order at a configurable word throughput (two words per
//! cycle ≙ the 64-bit AXI port of the paper), and the L1 side of every
//! word contends for TCDM banks *with lower priority than the cores*, so
//! double-buffered streaming steals only otherwise-idle bank slots.
//!
//! Descriptor layout (word offsets):
//!
//! | # | field        | meaning                                   |
//! |---|--------------|-------------------------------------------|
//! | 0 | `src`        | source byte address (word aligned)        |
//! | 1 | `dst`        | destination byte address (word aligned)   |
//! | 2 | `bytes`      | bytes per repetition (multiple of 4, > 0) |
//! | 3 | `src_stride` | source stride between repetitions         |
//! | 4 | `dst_stride` | destination stride between repetitions    |
//! | 5 | `reps`       | repetition count (1 ⇒ plain 1-D copy)     |
//!
//! A 2-D transfer (`reps > 1`) is how the kernels stream *rows* of the
//! CIM/IM/AM matrices that are not contiguous in L2.

use core::fmt;

use crate::isa::MemWidth;
use crate::mem::Memory;

/// Why a DMA descriptor was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DmaDescError {
    /// Descriptor address was not word-aligned or not readable.
    DescriptorUnreadable,
    /// `bytes` is zero or not a multiple of 4.
    BadLength,
    /// `src`/`dst` not word-aligned.
    Misaligned,
    /// `reps` is zero.
    ZeroReps,
    /// Some part of the transfer falls outside mapped memory.
    OutOfRange,
}

impl fmt::Display for DmaDescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Self::DescriptorUnreadable => "descriptor not readable",
            Self::BadLength => "length must be a positive multiple of 4",
            Self::Misaligned => "source/destination must be word aligned",
            Self::ZeroReps => "repetition count must be positive",
            Self::OutOfRange => "transfer exceeds mapped memory",
        };
        f.write_str(text)
    }
}

impl std::error::Error for DmaDescError {}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    id: u32,
    src: u32,
    dst: u32,
    bytes: u32,
    src_stride: u32,
    dst_stride: u32,
    reps: u32,
    /// Progress: current repetition and byte offset within it.
    rep: u32,
    offset: u32,
    /// Descriptor-processing cycles remaining before data moves.
    startup_left: u32,
}

/// Aggregate DMA statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Total 32-bit words moved.
    pub words_moved: u64,
    /// Word-move opportunities lost to TCDM bank conflicts with cores.
    pub bank_conflict_stalls: u64,
    /// Transfers completed.
    pub transfers: u64,
}

/// The DMA engine.
#[derive(Debug, Clone, Default)]
pub struct DmaEngine {
    queue: std::collections::VecDeque<Transfer>,
    completed: Vec<bool>,
    words_per_cycle: u32,
    startup_cycles: u32,
    /// Statistics for the current run.
    pub(crate) stats: DmaStats,
}

impl DmaEngine {
    pub(crate) fn new(words_per_cycle: u32, startup_cycles: u32) -> Self {
        Self {
            queue: std::collections::VecDeque::new(),
            completed: Vec::new(),
            words_per_cycle,
            startup_cycles,
            stats: DmaStats::default(),
        }
    }

    pub(crate) fn reset(&mut self) {
        self.queue.clear();
        self.completed.clear();
        self.stats = DmaStats::default();
    }

    /// Whether `id` was ever issued.
    #[must_use]
    pub fn id_exists(&self, id: u32) -> bool {
        (id as usize) < self.completed.len()
    }

    /// Whether transfer `id` has completed.
    #[must_use]
    pub fn is_complete(&self, id: u32) -> bool {
        self.completed.get(id as usize).copied().unwrap_or(false)
    }

    /// Whether no transfer is in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Statistics of the current run.
    #[must_use]
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Enqueues the transfer described at `desc_addr`; returns its id.
    pub(crate) fn start_from_descriptor(
        &mut self,
        mem: &Memory,
        desc_addr: u32,
    ) -> Result<u32, DmaDescError> {
        let mut fields = [0u32; 6];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = mem
                .read(desc_addr + 4 * i as u32, MemWidth::Word)
                .map_err(|_| DmaDescError::DescriptorUnreadable)?;
        }
        let [src, dst, bytes, src_stride, dst_stride, reps] = fields;
        if bytes == 0 || bytes % 4 != 0 {
            return Err(DmaDescError::BadLength);
        }
        if src % 4 != 0 || dst % 4 != 0 || src_stride % 4 != 0 || dst_stride % 4 != 0 {
            return Err(DmaDescError::Misaligned);
        }
        if reps == 0 {
            return Err(DmaDescError::ZeroReps);
        }
        // Validate the last word of the last repetition up front so the
        // engine cannot fault mid-flight.
        let last_src = src + (reps - 1) * src_stride + bytes - 4;
        let last_dst = dst + (reps - 1) * dst_stride + bytes - 4;
        mem.decode(last_src, MemWidth::Word)
            .map_err(|_| DmaDescError::OutOfRange)?;
        mem.decode(last_dst, MemWidth::Word)
            .map_err(|_| DmaDescError::OutOfRange)?;

        let id = self.completed.len() as u32;
        self.completed.push(false);
        self.queue.push_back(Transfer {
            id,
            src,
            dst,
            bytes,
            src_stride,
            dst_stride,
            reps,
            rep: 0,
            offset: 0,
            startup_left: self.startup_cycles,
        });
        Ok(id)
    }

    /// Advances the engine by one cycle. `bank_busy[b]` marks TCDM banks
    /// already claimed by cores this cycle; the engine claims further
    /// banks for the words it moves (cores have priority — the engine
    /// only takes free banks).
    pub(crate) fn step(&mut self, mem: &mut Memory, bank_busy: &mut [bool]) {
        let Some(head) = self.queue.front_mut() else {
            return;
        };
        if head.startup_left > 0 {
            head.startup_left -= 1;
            return;
        }
        let n_banks = bank_busy.len();
        for _ in 0..self.words_per_cycle {
            let src = head.src + head.rep * head.src_stride + head.offset;
            let dst = head.dst + head.rep * head.dst_stride + head.offset;

            // The L1 side(s) of this word must win a free bank.
            let mut needed: [Option<usize>; 2] = [None, None];
            if let Some(b) = mem.bank_of(src, n_banks) {
                needed[0] = Some(b);
            }
            if let Some(b) = mem.bank_of(dst, n_banks) {
                needed[1] = Some(b);
            }
            let blocked = needed.iter().flatten().any(|&b| bank_busy[b]);
            if blocked {
                self.stats.bank_conflict_stalls += 1;
                break; // in-order within the transfer
            }
            for &b in needed.iter().flatten() {
                bank_busy[b] = true;
            }

            let word = mem
                .read(src, MemWidth::Word)
                .expect("validated at descriptor time");
            mem.write(dst, MemWidth::Word, word)
                .expect("validated at descriptor time");
            self.stats.words_moved += 1;

            head.offset += 4;
            if head.offset >= head.bytes {
                head.offset = 0;
                head.rep += 1;
                if head.rep >= head.reps {
                    self.completed[head.id as usize] = true;
                    self.stats.transfers += 1;
                    self.queue.pop_front();
                    return; // next transfer starts next cycle
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{L1_BASE, L2_BASE};

    fn engine_and_mem() -> (DmaEngine, Memory) {
        (DmaEngine::new(2, 0), Memory::new(4096, 4096))
    }

    fn write_desc(mem: &mut Memory, at: u32, fields: [u32; 6]) {
        mem.write_words(at, &fields).unwrap();
    }

    fn run_to_idle(dma: &mut DmaEngine, mem: &mut Memory, banks: usize) -> u32 {
        let mut cycles = 0;
        while !dma.is_idle() {
            let mut busy = vec![false; banks];
            dma.step(mem, &mut busy);
            cycles += 1;
            assert!(cycles < 100_000, "dma did not finish");
        }
        cycles
    }

    #[test]
    fn one_dimensional_copy_l2_to_l1() {
        let (mut dma, mut mem) = engine_and_mem();
        let data: Vec<u32> = (0..32).map(|i| i * 7 + 1).collect();
        mem.write_words(L2_BASE + 256, &data).unwrap();
        write_desc(
            &mut mem,
            L1_BASE,
            [L2_BASE + 256, L1_BASE + 512, 128, 0, 0, 1],
        );
        let id = dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        assert!(!dma.is_complete(id));
        run_to_idle(&mut dma, &mut mem, 8);
        assert!(dma.is_complete(id));
        assert_eq!(mem.read_words(L1_BASE + 512, 32).unwrap(), data);
    }

    #[test]
    fn throughput_is_words_per_cycle() {
        let (mut dma, mut mem) = engine_and_mem();
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 512, 128, 0, 0, 1]);
        dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        // 32 words at 2 words/cycle = 16 cycles (startup 0).
        let cycles = run_to_idle(&mut dma, &mut mem, 8);
        assert_eq!(cycles, 16);
    }

    #[test]
    fn startup_cycles_delay_data_movement() {
        let mut dma = DmaEngine::new(2, 10);
        let mut mem = Memory::new(4096, 4096);
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 512, 8, 0, 0, 1]);
        dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        let cycles = run_to_idle(&mut dma, &mut mem, 8);
        assert_eq!(cycles, 10 + 1, "10 startup + 1 data cycle");
    }

    #[test]
    fn two_dimensional_strided_gather() {
        // Copy column words: 4 reps of 8 bytes, source stride 64.
        let (mut dma, mut mem) = engine_and_mem();
        for rep in 0..4u32 {
            mem.write_words(L2_BASE + rep * 64, &[rep * 10, rep * 10 + 1])
                .unwrap();
        }
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 256, 8, 64, 8, 4]);
        let id = dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        run_to_idle(&mut dma, &mut mem, 8);
        assert!(dma.is_complete(id));
        assert_eq!(
            mem.read_words(L1_BASE + 256, 8).unwrap(),
            vec![0, 1, 10, 11, 20, 21, 30, 31]
        );
    }

    #[test]
    fn cores_have_bank_priority() {
        let (mut dma, mut mem) = engine_and_mem();
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 512, 16, 0, 0, 1]);
        dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        // Claim every bank each cycle: DMA can never move a word.
        for _ in 0..20 {
            let mut busy = vec![true; 8];
            dma.step(&mut mem, &mut busy);
        }
        assert!(!dma.is_idle());
        assert!(dma.stats().bank_conflict_stalls > 0);
        // Release the banks: transfer finishes.
        run_to_idle(&mut dma, &mut mem, 8);
    }

    #[test]
    fn transfers_process_in_order() {
        let (mut dma, mut mem) = engine_and_mem();
        mem.write_words(L2_BASE, &[111]).unwrap();
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 512, 4, 0, 0, 1]);
        write_desc(
            &mut mem,
            L1_BASE + 64,
            [L1_BASE + 512, L1_BASE + 600, 4, 0, 0, 1],
        );
        let a = dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        let b = dma.start_from_descriptor(&mem, L1_BASE + 64).unwrap();
        run_to_idle(&mut dma, &mut mem, 8);
        assert!(dma.is_complete(a) && dma.is_complete(b));
        // Second transfer must have observed the first one's result.
        assert_eq!(mem.read(L1_BASE + 600, MemWidth::Word).unwrap(), 111);
    }

    #[test]
    fn descriptor_validation() {
        let (mut dma, mut mem) = engine_and_mem();
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE, 6, 0, 0, 1]);
        assert_eq!(
            dma.start_from_descriptor(&mem, L1_BASE).unwrap_err(),
            DmaDescError::BadLength
        );
        write_desc(&mut mem, L1_BASE, [L2_BASE + 2, L1_BASE, 8, 0, 0, 1]);
        assert_eq!(
            dma.start_from_descriptor(&mem, L1_BASE).unwrap_err(),
            DmaDescError::Misaligned
        );
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE, 8, 0, 0, 0]);
        assert_eq!(
            dma.start_from_descriptor(&mem, L1_BASE).unwrap_err(),
            DmaDescError::ZeroReps
        );
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 4090, 8, 0, 0, 1]);
        assert_eq!(
            dma.start_from_descriptor(&mem, L1_BASE).unwrap_err(),
            DmaDescError::Misaligned
        );
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 4096, 8, 0, 0, 1]);
        assert_eq!(
            dma.start_from_descriptor(&mem, L1_BASE).unwrap_err(),
            DmaDescError::OutOfRange
        );
    }

    #[test]
    fn ids_are_sequential_and_tracked() {
        let (mut dma, mut mem) = engine_and_mem();
        write_desc(&mut mem, L1_BASE, [L2_BASE, L1_BASE + 512, 4, 0, 0, 1]);
        let a = dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        let b = dma.start_from_descriptor(&mem, L1_BASE).unwrap();
        assert_eq!((a, b), (0, 1));
        assert!(dma.id_exists(0) && dma.id_exists(1));
        assert!(!dma.id_exists(2));
    }
}
