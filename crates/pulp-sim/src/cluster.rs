//! The cycle-stepped cluster: cores + TCDM arbitration + L2 port + DMA +
//! barriers.
//!
//! Every simulated cycle proceeds in three phases:
//!
//! 1. **Execute** — each `Running` core whose `ready_at` has arrived
//!    executes one instruction (possibly parking itself in a wait state).
//! 2. **Arbitrate** — pending memory requests are matched to TCDM banks
//!    (one grant per bank per cycle, rotating core priority) and the
//!    single L2 port; then the DMA engine moves words through whatever
//!    bank slots the cores left free.
//! 3. **Synchronize** — when every core has arrived at a barrier, all are
//!    released after the configured rendezvous cost.
//!
//! This is where the paper's three performance mechanisms live: TCDM
//! banking conflicts, DMA/compute overlap (double buffering), and
//! synchronization overhead limiting the AM kernel's scaling.

use crate::asm::Program;
use crate::config::ClusterConfig;
use crate::core::{execute_one, Core, ExecCtx, Status};
use crate::dma::DmaEngine;
use crate::mem::{MemSpace, Memory};
use crate::stats::{CoreStats, RunSummary};
use crate::SimError;

/// A simulated PULP cluster executing one SPMD program.
///
/// Memory contents persist across [`run`](Self::run) calls (so a host can
/// load matrices once and run many classification windows); core
/// architectural state, DMA state, and statistics reset at the start of
/// every run.
///
/// # Examples
///
/// Parallel sum over four cores with a barrier:
///
/// ```
/// use pulp_sim::{Cluster, ClusterConfig};
/// use pulp_sim::asm::Assembler;
/// use pulp_sim::isa::regs::*;
/// use pulp_sim::mem::L1_BASE;
///
/// let mut a = Assembler::new();
/// a.coreid(T0);
/// a.slli(T1, T0, 2);             // each core writes 10*(id+1)
/// a.li(T2, L1_BASE);
/// a.add(T1, T1, T2);
/// a.addi(T3, T0, 1);
/// a.li(T4, 10);
/// a.mul(T3, T3, T4);
/// a.sw(T3, T1, 0);
/// a.barrier();
/// a.bnez(T0, "done");            // core 0 reduces
/// a.li(T5, 0);
/// a.li(T6, 4);
/// a.label("acc");
/// a.lw(T3, T2, 0);
/// a.addi(T2, T2, 4);
/// a.add(T5, T5, T3);
/// a.addi(T6, T6, -1);
/// a.bnez(T6, "acc");
/// a.sw(T5, T1, 0);               // store total at core0 slot... (example)
/// a.label("done");
/// a.halt();
///
/// let mut cluster = Cluster::new(ClusterConfig::pulpv3(4), a.finish()?);
/// let summary = cluster.run(100_000)?;
/// assert!(summary.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    program: Program,
    cores: Vec<Core>,
    mem: Memory,
    dma: DmaEngine,
    l2_busy_until: u64,
}

impl Cluster {
    /// Creates a cluster with zeroed memories.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see
    /// [`ClusterConfig::assert_valid`]).
    #[must_use]
    pub fn new(cfg: ClusterConfig, program: Program) -> Self {
        cfg.assert_valid();
        let cores = (0..cfg.n_cores).map(Core::new).collect();
        let mem = Memory::new(cfg.l1_size, cfg.l2_size);
        let dma = DmaEngine::new(cfg.dma_words_per_cycle, cfg.dma_startup_cycles);
        Self {
            cfg,
            program,
            cores,
            mem,
            dma,
            l2_busy_until: 0,
        }
    }

    /// The cluster configuration.
    #[must_use]
    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The loaded program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Replaces the program (e.g. to run a different kernel against the
    /// same memory image).
    pub fn set_program(&mut self, program: Program) {
        self.program = program;
    }

    /// Read access to the memories (host-side data exchange).
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Write access to the memories (host-side data exchange).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Architectural state of core `id` (for tests and debugging).
    ///
    /// # Panics
    ///
    /// Panics if `id >= n_cores`.
    #[must_use]
    pub fn core(&self, id: usize) -> &Core {
        &self.cores[id]
    }

    /// Runs the program from a fresh core/DMA state until every core
    /// halts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on illegal instructions, memory faults, DMA
    /// descriptor errors, barrier deadlock, or when `max_cycles` elapses.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        for core in &mut self.cores {
            core.reset();
        }
        self.dma.reset();
        self.l2_busy_until = 0;
        let mut markers: Vec<(u32, u64)> = Vec::new();
        let mut bank_busy = vec![false; self.cfg.tcdm_banks];
        let mut cycle: u64 = 0;

        loop {
            if self.cores.iter().all(|c| c.status == Status::Halted) {
                break;
            }
            if cycle >= max_cycles {
                return Err(SimError::Timeout { cycles: cycle });
            }

            // Phase 1: execute.
            for i in 0..self.cores.len() {
                let core = &mut self.cores[i];
                match core.status {
                    Status::Halted | Status::MemWait(_) => {}
                    Status::BarrierWait => core.stats.stall_barrier += 1,
                    Status::DmaWait(id) => {
                        if self.dma.is_complete(id) {
                            core.status = Status::Running;
                            core.ready_at = cycle + 1;
                        }
                        core.stats.stall_dma += 1;
                    }
                    Status::Running => {
                        if cycle >= core.ready_at {
                            let mut ctx = ExecCtx {
                                cfg: &self.cfg,
                                cycle,
                                dma: &mut self.dma,
                                mem: &self.mem,
                                markers: &mut markers,
                            };
                            execute_one(core, &self.program, &mut ctx)?;
                        }
                    }
                }
            }

            // Phase 2: memory arbitration. Rotating priority removes
            // systematic starvation of high-numbered cores.
            bank_busy.fill(false);
            let n = self.cores.len();
            let start = (cycle % n as u64) as usize;
            for k in 0..n {
                let i = (start + k) % n;
                let Status::MemWait(pending) = self.cores[i].status else {
                    continue;
                };
                let (space, _) = self
                    .mem
                    .decode(pending.addr, pending.width)
                    .map_err(|fault| SimError::MemAccess { core: i, fault })?;
                let granted = match space {
                    MemSpace::L1 => {
                        let bank = self
                            .mem
                            .bank_of(pending.addr & !3, self.cfg.tcdm_banks)
                            .expect("decoded as L1");
                        if bank_busy[bank] {
                            self.cores[i].stats.stall_mem_conflict += 1;
                            false
                        } else {
                            bank_busy[bank] = true;
                            true
                        }
                    }
                    MemSpace::L2 => {
                        if cycle >= self.l2_busy_until {
                            self.l2_busy_until = cycle + u64::from(self.cfg.l2_port_cycles);
                            true
                        } else {
                            self.cores[i].stats.stall_l2 += 1;
                            false
                        }
                    }
                };
                if granted {
                    let core = &mut self.cores[i];
                    let cc = &self.cfg.core;
                    let latency = match (space, pending.store_value.is_some()) {
                        (MemSpace::L1, false) => cc.load_l1_cycles,
                        (MemSpace::L1, true) => cc.store_l1_cycles,
                        (MemSpace::L2, _) => cc.load_l2_cycles,
                    };
                    match pending.store_value {
                        Some(value) => {
                            self.mem
                                .write(pending.addr, pending.width, value)
                                .map_err(|fault| SimError::MemAccess { core: i, fault })?;
                        }
                        None => {
                            let value = self
                                .mem
                                .read(pending.addr, pending.width)
                                .map_err(|fault| SimError::MemAccess { core: i, fault })?;
                            if let Some(rd) = pending.rd {
                                core.set_reg(rd, value);
                            }
                        }
                    }
                    core.status = Status::Running;
                    core.ready_at = cycle + u64::from(latency.max(1));
                    core.stats.busy += u64::from(latency.max(1));
                }
            }

            // DMA takes whatever bank slots remain.
            self.dma.step(&mut self.mem, &mut bank_busy);

            // Phase 3: barrier rendezvous.
            let waiting = self
                .cores
                .iter()
                .filter(|c| c.status == Status::BarrierWait)
                .count();
            if waiting > 0 {
                let halted = self
                    .cores
                    .iter()
                    .filter(|c| c.status == Status::Halted)
                    .count();
                if halted > 0 {
                    return Err(SimError::BarrierDeadlock { cycle });
                }
                if waiting == n {
                    let cost = u64::from(self.cfg.sync.barrier_cycles(n)) + 1;
                    for core in &mut self.cores {
                        core.status = Status::Running;
                        core.ready_at = cycle + cost;
                    }
                }
            }

            cycle += 1;
        }

        Ok(RunSummary {
            cycles: cycle,
            cores: self.cores.iter().map(|c| c.stats).collect(),
            markers,
            dma: self.dma.stats(),
        })
    }
}

/// Convenience: collects the per-core stats of a summary into totals.
#[must_use]
pub fn total_stats(summary: &RunSummary) -> CoreStats {
    let mut total = CoreStats::default();
    for c in &summary.cores {
        total.retired += c.retired;
        total.busy += c.busy;
        total.stall_mem_conflict += c.stall_mem_conflict;
        total.stall_l2 += c.stall_l2;
        total.stall_dma += c.stall_dma;
        total.stall_barrier += c.stall_barrier;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::isa::regs::*;
    use crate::mem::{L1_BASE, L2_BASE};

    fn run(cfg: ClusterConfig, build: impl FnOnce(&mut Assembler)) -> (Cluster, RunSummary) {
        let mut a = Assembler::new();
        build(&mut a);
        let mut cluster = Cluster::new(cfg, a.finish().unwrap());
        let summary = cluster.run(1_000_000).unwrap();
        (cluster, summary)
    }

    #[test]
    fn straight_line_arithmetic_and_halt() {
        let (cluster, summary) = run(ClusterConfig::wolf(1), |a| {
            a.li(T0, 6);
            a.li(T1, 7);
            a.mul(T2, T0, T1);
            a.halt();
        });
        assert_eq!(cluster.core(0).reg(T2), 42);
        assert_eq!(summary.cores[0].retired, 4);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let (cluster, _) = run(ClusterConfig::wolf(1), |a| {
            a.li(T0, L1_BASE + 64);
            a.li(T1, 0xabcd_0123);
            a.sw(T1, T0, 0);
            a.lw(T2, T0, 0);
            a.halt();
        });
        assert_eq!(cluster.core(0).reg(T2), 0xabcd_0123);
    }

    #[test]
    fn software_loop_timing_differs_between_cores() {
        // The same counted loop must be slower on PULPv3 (3-cycle taken
        // branches, 2-cycle loads) than on Wolf.
        let body = |a: &mut Assembler| {
            a.li(T0, 100);
            a.li(T1, L1_BASE);
            a.label("loop");
            a.lw(T2, T1, 0);
            a.add(T3, T3, T2);
            a.addi(T0, T0, -1);
            a.bnez(T0, "loop");
            a.halt();
        };
        let (_, p3) = run(ClusterConfig::pulpv3(1), body);
        let (_, wolf) = run(ClusterConfig::wolf_no_ext(1), body);
        assert!(
            p3.cycles > wolf.cycles,
            "pulpv3 {} should exceed wolf {}",
            p3.cycles,
            wolf.cycles
        );
        // Shape check: PULPv3 ≈ 8 cycles/iter (2+1+1+4), Wolf ≈ 5.
        let p3_per_iter = p3.cycles as f64 / 100.0;
        let wolf_per_iter = wolf.cycles as f64 / 100.0;
        assert!(
            (7.5..8.8).contains(&p3_per_iter),
            "pulpv3 {p3_per_iter}/iter"
        );
        assert!(
            (4.5..5.8).contains(&wolf_per_iter),
            "wolf {wolf_per_iter}/iter"
        );
    }

    #[test]
    fn hardware_loop_removes_branch_overhead() {
        let sw = |a: &mut Assembler| {
            a.li(T0, 100);
            a.label("loop");
            a.addi(T3, T3, 1);
            a.addi(T4, T4, 2);
            a.addi(T0, T0, -1);
            a.bnez(T0, "loop");
            a.halt();
        };
        let hw = |a: &mut Assembler| {
            a.li(T0, 100);
            a.lp_setup(T0, "body", "body_end");
            a.label("body");
            a.addi(T3, T3, 1);
            a.addi(T4, T4, 2);
            a.label("body_end");
            a.halt();
        };
        let (c_sw, s_sw) = run(ClusterConfig::wolf(1), sw);
        let (c_hw, s_hw) = run(ClusterConfig::wolf(1), hw);
        assert_eq!(c_sw.core(0).reg(T3), 100);
        assert_eq!(c_hw.core(0).reg(T3), 100);
        assert_eq!(c_hw.core(0).reg(T4), 200);
        // SW: 4 insts + taken branch ≈ 6/iter; HW: 2/iter.
        assert!(
            s_hw.cycles * 2 < s_sw.cycles,
            "hw {} vs sw {}",
            s_hw.cycles,
            s_sw.cycles
        );
    }

    #[test]
    fn hw_loop_with_zero_count_skips_body() {
        let (cluster, _) = run(ClusterConfig::wolf(1), |a| {
            a.li(T0, 0);
            a.lp_setup(T0, "body", "body_end");
            a.label("body");
            a.li(T3, 99);
            a.label("body_end");
            a.addi(T4, T4, 5);
            a.halt();
        });
        assert_eq!(cluster.core(0).reg(T3), 0, "body must be skipped");
        assert_eq!(cluster.core(0).reg(T4), 5);
    }

    #[test]
    fn nested_hw_loops_multiply_iterations() {
        let (cluster, _) = run(ClusterConfig::wolf(1), |a| {
            a.li(T0, 5);
            a.lp_setup(T0, "outer", "outer_end");
            a.label("outer");
            a.li(T1, 7);
            a.lp_setup(T1, "inner", "inner_end");
            a.label("inner");
            a.addi(T3, T3, 1);
            a.label("inner_end");
            a.addi(T4, T4, 1);
            a.label("outer_end");
            a.halt();
        });
        assert_eq!(cluster.core(0).reg(T3), 35);
        assert_eq!(cluster.core(0).reg(T4), 5);
    }

    #[test]
    fn illegal_extension_on_pulpv3_faults() {
        let mut a = Assembler::new();
        a.p_cnt(T0, T1);
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::pulpv3(1), a.finish().unwrap());
        match cluster.run(1000) {
            Err(SimError::IllegalInstruction {
                core: 0,
                pc: 0,
                inst,
            }) => {
                assert!(inst.contains("p.cnt"));
            }
            other => panic!("expected illegal instruction, got {other:?}"),
        }
    }

    #[test]
    fn popcount_and_bitfield_ops_work_on_wolf() {
        let (cluster, _) = run(ClusterConfig::wolf(1), |a| {
            a.li(T0, 0xf0f0_1234);
            a.p_cnt(T1, T0);
            a.p_extractu(T2, T0, 8, 4); // bits 11:4 = 0x23
            a.li(T3, 0);
            a.li(T4, 0b101);
            a.p_insert(T3, T4, 3, 8); // T3[10:8] = 0b101
            a.halt();
        });
        assert_eq!(cluster.core(0).reg(T1), 0xf0f0_1234u32.count_ones());
        assert_eq!(cluster.core(0).reg(T2), 0x23);
        assert_eq!(cluster.core(0).reg(T3), 0b101 << 8);
    }

    #[test]
    fn coreid_numcores_and_spmd_partitioning() {
        let (cluster, _) = run(ClusterConfig::wolf(4), |a| {
            a.coreid(T0);
            a.numcores(T1);
            a.slli(T2, T0, 2);
            a.li(T3, L1_BASE + 256);
            a.add(T2, T2, T3);
            a.addi(T4, T0, 100);
            a.sw(T4, T2, 0);
            a.barrier();
            a.halt();
        });
        for id in 0..4 {
            assert_eq!(
                cluster.mem().read_words(L1_BASE + 256 + 4 * id, 1).unwrap()[0],
                100 + id
            );
        }
        assert_eq!(cluster.core(3).reg(T1), 4);
    }

    #[test]
    fn bank_conflicts_slow_down_same_bank_hammering() {
        // Back-to-back loads: 4 cores demanding the same bank every cycle
        // versus each core owning its own bank. (A loop with enough
        // non-memory work per iteration self-staggers into a
        // conflict-free schedule — that pipelining is modelled too, which
        // is why this test needs a pure load burst.)
        let burst = |bank_spread: bool| {
            move |a: &mut Assembler| {
                a.li(T1, L1_BASE);
                if bank_spread {
                    a.coreid(T3);
                    a.slli(T3, T3, 2);
                    a.add(T1, T1, T3); // core i hits bank i
                }
                a.li(T0, 50);
                a.label("loop");
                for _ in 0..8 {
                    a.lw(T2, T1, 0);
                }
                a.addi(T0, T0, -1);
                a.bnez(T0, "loop");
                a.halt();
            }
        };
        let (_, s_conf) = run(ClusterConfig::wolf(4), burst(false));
        let (_, s_spread) = run(ClusterConfig::wolf(4), burst(true));
        assert!(
            s_conf.cycles > s_spread.cycles * 2,
            "conflicts {} vs spread {}",
            s_conf.cycles,
            s_spread.cycles
        );
        let conf_total = total_stats(&s_conf).stall_mem_conflict;
        let spread_total = total_stats(&s_spread).stall_mem_conflict;
        assert!(conf_total > 2000, "conflict stalls {conf_total}");
        assert!(spread_total < 100, "spread stalls {spread_total}");
    }

    #[test]
    fn l2_access_is_slower_than_l1() {
        let l1 = |a: &mut Assembler| {
            a.li(T1, L1_BASE);
            a.li(T0, 100);
            a.label("loop");
            a.lw(T2, T1, 0);
            a.addi(T0, T0, -1);
            a.bnez(T0, "loop");
            a.halt();
        };
        let l2 = |a: &mut Assembler| {
            a.li(T1, L2_BASE);
            a.li(T0, 100);
            a.label("loop");
            a.lw(T2, T1, 0);
            a.addi(T0, T0, -1);
            a.bnez(T0, "loop");
            a.halt();
        };
        let (_, s_l1) = run(ClusterConfig::wolf(1), l1);
        let (_, s_l2) = run(ClusterConfig::wolf(1), l2);
        assert!(
            s_l2.cycles > s_l1.cycles * 2,
            "l2 {} vs l1 {}",
            s_l2.cycles,
            s_l1.cycles
        );
    }

    #[test]
    fn barrier_synchronizes_unequal_work() {
        // Core 0 spins 1000 iterations; others arrive early and wait.
        let (_, summary) = run(ClusterConfig::wolf(4), |a| {
            a.coreid(T0);
            a.bnez(T0, "wait");
            a.li(T1, 1000);
            a.label("spin");
            a.addi(T1, T1, -1);
            a.bnez(T1, "spin");
            a.label("wait");
            a.barrier();
            a.halt();
        });
        assert!(summary.cycles > 2000, "core 0 work dominates");
        assert!(
            summary.cores[1].stall_barrier > 1500,
            "idle cores accumulate barrier stalls: {}",
            summary.cores[1].stall_barrier
        );
    }

    #[test]
    fn halted_core_at_barrier_is_deadlock() {
        let mut a = Assembler::new();
        a.coreid(T0);
        a.bnez(T0, "skip");
        a.halt(); // core 0 never reaches the barrier
        a.label("skip");
        a.barrier();
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(2), a.finish().unwrap());
        assert!(matches!(
            cluster.run(100_000),
            Err(SimError::BarrierDeadlock { .. })
        ));
    }

    #[test]
    fn runaway_program_times_out() {
        let mut a = Assembler::new();
        a.label("forever");
        a.j("forever");
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish().unwrap());
        assert!(matches!(
            cluster.run(5_000),
            Err(SimError::Timeout { cycles: 5_000 })
        ));
    }

    #[test]
    fn dma_transfer_from_core_and_wait() {
        let mut a = Assembler::new();
        // Descriptor at L1+0: copy 64 bytes from L2+128 to L1+512.
        a.li(T0, L1_BASE);
        a.li(T1, L2_BASE + 128);
        a.sw(T1, T0, 0);
        a.li(T1, L1_BASE + 512);
        a.sw(T1, T0, 4);
        a.li(T1, 64);
        a.sw(T1, T0, 8);
        a.sw(ZERO, T0, 12);
        a.sw(ZERO, T0, 16);
        a.li(T1, 1);
        a.sw(T1, T0, 20);
        a.dma_start(T2, T0);
        a.dma_wait(T2);
        a.li(T3, L1_BASE + 512);
        a.lw(T4, T3, 60);
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish().unwrap());
        cluster
            .mem_mut()
            .write_words(
                L2_BASE + 128,
                &(0..16).map(|i| i + 1000).collect::<Vec<_>>(),
            )
            .unwrap();
        let summary = cluster.run(100_000).unwrap();
        assert_eq!(cluster.core(0).reg(T4), 1015);
        assert_eq!(summary.dma.words_moved, 16);
        assert!(summary.cores[0].stall_dma > 0, "core must actually wait");
    }

    #[test]
    fn dma_overlaps_with_compute() {
        // Busy-spin 2000 cycles while a 256-word transfer is in flight;
        // the wait at the end should be nearly free.
        let mut a = Assembler::new();
        a.li(T0, L1_BASE);
        a.li(T1, L2_BASE);
        a.sw(T1, T0, 0);
        a.li(T1, L1_BASE + 1024);
        a.sw(T1, T0, 4);
        a.li(T1, 1024);
        a.sw(T1, T0, 8);
        a.sw(ZERO, T0, 12);
        a.sw(ZERO, T0, 16);
        a.li(T1, 1);
        a.sw(T1, T0, 20);
        a.dma_start(T2, T0);
        a.li(T3, 2000);
        a.label("spin");
        a.addi(T3, T3, -1);
        a.bnez(T3, "spin");
        a.dma_wait(T2);
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish().unwrap());
        let summary = cluster.run(100_000).unwrap();
        // 256 words / 2 per cycle = 128 cycles ≪ 2000-cycle spin: the
        // final wait must observe completion almost immediately.
        assert!(
            summary.cores[0].stall_dma <= 2,
            "dma fully hidden, stall {}",
            summary.cores[0].stall_dma
        );
    }

    #[test]
    fn unknown_dma_id_faults() {
        let mut a = Assembler::new();
        a.li(T0, 3);
        a.dma_wait(T0);
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish().unwrap());
        assert!(matches!(
            cluster.run(1000),
            Err(SimError::UnknownDmaId { id: 3, .. })
        ));
    }

    #[test]
    fn memory_fault_reports_core_and_address() {
        let mut a = Assembler::new();
        a.li(T0, 0x2000);
        a.lw(T1, T0, 0);
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish().unwrap());
        match cluster.run(1000) {
            Err(SimError::MemAccess { core: 0, fault }) => {
                assert_eq!(fault.addr, 0x2000);
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn markers_record_regions_on_core0_only() {
        let (_, summary) = run(ClusterConfig::wolf(2), |a| {
            a.marker(10);
            a.li(T0, 50);
            a.label("spin");
            a.addi(T0, T0, -1);
            a.bnez(T0, "spin");
            a.marker(11);
            a.halt();
        });
        let region = summary.region(10, 11).unwrap();
        assert!(region >= 100, "50 iterations × ≥2 cycles, got {region}");
        // Two cores execute the marker but only core 0 records it.
        assert_eq!(summary.marker_cycles(10).len(), 1);
    }

    #[test]
    fn memory_persists_across_runs_but_state_resets() {
        let mut a = Assembler::new();
        a.li(T0, L1_BASE + 128);
        a.lw(T1, T0, 0);
        a.addi(T1, T1, 1);
        a.sw(T1, T0, 0);
        a.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), a.finish().unwrap());
        cluster.run(1000).unwrap();
        cluster.run(1000).unwrap();
        let summary = cluster.run(1000).unwrap();
        assert_eq!(cluster.mem().read_words(L1_BASE + 128, 1).unwrap()[0], 3);
        assert_eq!(summary.cores[0].retired, 5, "stats reset each run");
    }

    #[test]
    fn fork_costs_more_on_software_runtime() {
        let body = |a: &mut Assembler| {
            a.fork();
            a.halt();
        };
        let (_, sw) = run(ClusterConfig::pulpv3(4), body);
        let (_, hw) = run(ClusterConfig::wolf(4), body);
        assert!(
            sw.cycles > hw.cycles + 100,
            "sw {} hw {}",
            sw.cycles,
            hw.cycles
        );
    }
}
