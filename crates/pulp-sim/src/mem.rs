//! Cluster memory system: L1 TCDM and L2 backing store.
//!
//! The address map mirrors PULP: the multi-banked, word-interleaved L1
//! tightly-coupled data memory (TCDM) lives at [`L1_BASE`]; the off-cluster
//! L2 at [`L2_BASE`]. Bank arbitration and port timing are modelled by the
//! [`Cluster`](crate::cluster::Cluster); this module owns the backing
//! storage, the address decode, and the access-fault rules (range and
//! natural alignment).

use core::fmt;

use crate::isa::MemWidth;

/// Base address of the L1 TCDM scratchpad.
pub const L1_BASE: u32 = 0x1000_0000;
/// Base address of the off-cluster L2 memory.
pub const L2_BASE: u32 = 0x1C00_0000;

/// Which physical memory an address decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// L1 tightly-coupled data memory (banked, single-cycle).
    L1,
    /// L2 background memory (single-ported, multi-cycle).
    L2,
}

/// Reason a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Address does not fall in L1 or L2.
    Unmapped,
    /// Address is in a known region but beyond its configured size.
    OutOfRange,
    /// Address is not naturally aligned for the access width.
    Misaligned,
}

/// A faulting memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting byte address.
    pub addr: u32,
    /// Access width.
    pub width: MemWidth,
    /// Fault classification.
    pub kind: FaultKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            FaultKind::Unmapped => "unmapped address",
            FaultKind::OutOfRange => "address out of configured range",
            FaultKind::Misaligned => "misaligned access",
        };
        write!(f, "{what} {:#010x} ({}B)", self.addr, self.width.bytes())
    }
}

impl std::error::Error for MemFault {}

/// Backing storage for both memories.
///
/// # Examples
///
/// ```
/// use pulp_sim::mem::{Memory, L1_BASE, L2_BASE};
/// use pulp_sim::isa::MemWidth;
///
/// let mut mem = Memory::new(48 * 1024, 64 * 1024);
/// mem.write(L2_BASE, MemWidth::Word, 0xdead_beef)?;
/// assert_eq!(mem.read(L2_BASE, MemWidth::Word)?, 0xdead_beef);
/// assert_eq!(mem.read(L2_BASE, MemWidth::Half)?, 0xbeef); // little-endian
/// # Ok::<(), pulp_sim::mem::MemFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    l1: Vec<u8>,
    l2: Vec<u8>,
}

impl Memory {
    /// Allocates zeroed L1 and L2 of the given byte sizes.
    #[must_use]
    pub fn new(l1_size: u32, l2_size: u32) -> Self {
        Self {
            l1: vec![0; l1_size as usize],
            l2: vec![0; l2_size as usize],
        }
    }

    /// L1 size in bytes.
    #[must_use]
    pub fn l1_size(&self) -> u32 {
        self.l1.len() as u32
    }

    /// L2 size in bytes.
    #[must_use]
    pub fn l2_size(&self) -> u32 {
        self.l2.len() as u32
    }

    /// Decodes an address to its memory space, checking range and
    /// alignment.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped, out-of-range, or misaligned
    /// accesses.
    pub fn decode(&self, addr: u32, width: MemWidth) -> Result<(MemSpace, usize), MemFault> {
        let bytes = width.bytes();
        if addr % bytes != 0 {
            return Err(MemFault {
                addr,
                width,
                kind: FaultKind::Misaligned,
            });
        }
        let (space, base, size) = if (L1_BASE..L1_BASE.saturating_add(0x0400_0000)).contains(&addr)
        {
            (MemSpace::L1, L1_BASE, self.l1.len() as u32)
        } else if addr >= L2_BASE {
            (MemSpace::L2, L2_BASE, self.l2.len() as u32)
        } else {
            return Err(MemFault {
                addr,
                width,
                kind: FaultKind::Unmapped,
            });
        };
        let offset = addr - base;
        if offset + bytes > size {
            return Err(MemFault {
                addr,
                width,
                kind: FaultKind::OutOfRange,
            });
        }
        Ok((space, offset as usize))
    }

    fn slice(&self, space: MemSpace) -> &[u8] {
        match space {
            MemSpace::L1 => &self.l1,
            MemSpace::L2 => &self.l2,
        }
    }

    fn slice_mut(&mut self, space: MemSpace) -> &mut [u8] {
        match space {
            MemSpace::L1 => &mut self.l1,
            MemSpace::L2 => &mut self.l2,
        }
    }

    /// Reads a zero-extended value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] as for [`decode`](Self::decode).
    pub fn read(&self, addr: u32, width: MemWidth) -> Result<u32, MemFault> {
        let (space, off) = self.decode(addr, width)?;
        let mem = self.slice(space);
        Ok(match width {
            MemWidth::Byte => u32::from(mem[off]),
            MemWidth::Half => u32::from(u16::from_le_bytes([mem[off], mem[off + 1]])),
            MemWidth::Word => {
                u32::from_le_bytes([mem[off], mem[off + 1], mem[off + 2], mem[off + 3]])
            }
        })
    }

    /// Writes the low bits of `value` at the given width.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] as for [`decode`](Self::decode).
    pub fn write(&mut self, addr: u32, width: MemWidth, value: u32) -> Result<(), MemFault> {
        let (space, off) = self.decode(addr, width)?;
        let mem = self.slice_mut(space);
        match width {
            MemWidth::Byte => mem[off] = value as u8,
            MemWidth::Half => mem[off..off + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            MemWidth::Word => mem[off..off + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Host helper: writes a slice of words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on the first failing word.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) -> Result<(), MemFault> {
        for (i, &w) in words.iter().enumerate() {
            self.write(addr + 4 * i as u32, MemWidth::Word, w)?;
        }
        Ok(())
    }

    /// Host helper: reads `count` words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on the first failing word.
    pub fn read_words(&self, addr: u32, count: usize) -> Result<Vec<u32>, MemFault> {
        (0..count)
            .map(|i| self.read(addr + 4 * i as u32, MemWidth::Word))
            .collect()
    }

    /// Host helper: writes a slice of halfwords starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] on the first failing halfword.
    pub fn write_halves(&mut self, addr: u32, halves: &[u16]) -> Result<(), MemFault> {
        for (i, &h) in halves.iter().enumerate() {
            self.write(addr + 2 * i as u32, MemWidth::Half, u32::from(h))?;
        }
        Ok(())
    }

    /// The TCDM bank an L1 address maps to, with word interleaving.
    ///
    /// Non-L1 addresses return `None`.
    #[must_use]
    pub fn bank_of(&self, addr: u32, n_banks: usize) -> Option<usize> {
        if (L1_BASE..L1_BASE + self.l1.len() as u32).contains(&addr) {
            Some(((addr - L1_BASE) as usize >> 2) % n_banks)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_in_both_spaces() {
        let mut mem = Memory::new(1024, 1024);
        mem.write(L1_BASE + 4, MemWidth::Word, 0x1234_5678).unwrap();
        mem.write(L2_BASE + 8, MemWidth::Word, 0x9abc_def0).unwrap();
        assert_eq!(mem.read(L1_BASE + 4, MemWidth::Word).unwrap(), 0x1234_5678);
        assert_eq!(mem.read(L2_BASE + 8, MemWidth::Word).unwrap(), 0x9abc_def0);
    }

    #[test]
    fn little_endian_sub_word_access() {
        let mut mem = Memory::new(64, 64);
        mem.write(L1_BASE, MemWidth::Word, 0xa1b2_c3d4).unwrap();
        assert_eq!(mem.read(L1_BASE, MemWidth::Byte).unwrap(), 0xd4);
        assert_eq!(mem.read(L1_BASE + 1, MemWidth::Byte).unwrap(), 0xc3);
        assert_eq!(mem.read(L1_BASE, MemWidth::Half).unwrap(), 0xc3d4);
        assert_eq!(mem.read(L1_BASE + 2, MemWidth::Half).unwrap(), 0xa1b2);
    }

    #[test]
    fn misaligned_access_faults() {
        let mem = Memory::new(64, 64);
        let err = mem.read(L1_BASE + 2, MemWidth::Word).unwrap_err();
        assert_eq!(err.kind, FaultKind::Misaligned);
        let err = mem.read(L1_BASE + 1, MemWidth::Half).unwrap_err();
        assert_eq!(err.kind, FaultKind::Misaligned);
        // Byte access is always aligned.
        assert!(mem.read(L1_BASE + 1, MemWidth::Byte).is_ok());
    }

    #[test]
    fn out_of_range_faults() {
        let mem = Memory::new(64, 64);
        assert_eq!(
            mem.read(L1_BASE + 64, MemWidth::Word).unwrap_err().kind,
            FaultKind::OutOfRange
        );
        // Last valid word is fine; the first word past the end is not.
        assert!(mem.read(L1_BASE + 60, MemWidth::Word).is_ok());
        assert_eq!(
            mem.read(L2_BASE + 64, MemWidth::Word).unwrap_err().kind,
            FaultKind::OutOfRange
        );
        // A misaligned straddle reports misalignment first.
        assert_eq!(
            mem.read(L2_BASE + 62, MemWidth::Word).unwrap_err().kind,
            FaultKind::Misaligned
        );
    }

    #[test]
    fn unmapped_faults() {
        let mem = Memory::new(64, 64);
        assert_eq!(
            mem.read(0x0000_1000, MemWidth::Word).unwrap_err().kind,
            FaultKind::Unmapped
        );
    }

    #[test]
    fn bulk_word_io() {
        let mut mem = Memory::new(64, 256);
        let data: Vec<u32> = (0..16).map(|i| i * 3).collect();
        mem.write_words(L2_BASE, &data).unwrap();
        assert_eq!(mem.read_words(L2_BASE, 16).unwrap(), data);
    }

    #[test]
    fn halfword_bulk_io() {
        let mut mem = Memory::new(64, 64);
        mem.write_halves(L1_BASE, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mem.read(L1_BASE, MemWidth::Word).unwrap(), 0x0002_0001);
        assert_eq!(mem.read(L1_BASE + 4, MemWidth::Word).unwrap(), 0x0004_0003);
    }

    #[test]
    fn word_interleaved_banking() {
        let mem = Memory::new(1024, 64);
        assert_eq!(mem.bank_of(L1_BASE, 16), Some(0));
        assert_eq!(mem.bank_of(L1_BASE + 4, 16), Some(1));
        assert_eq!(mem.bank_of(L1_BASE + 64, 16), Some(0));
        assert_eq!(mem.bank_of(L2_BASE, 16), None);
    }

    #[test]
    fn fault_display_is_informative() {
        let fault = MemFault {
            addr: 0x10,
            width: MemWidth::Word,
            kind: FaultKind::Unmapped,
        };
        let text = fault.to_string();
        assert!(text.contains("unmapped"));
        assert!(text.contains("0x00000010"));
    }
}
