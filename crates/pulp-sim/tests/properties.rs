//! Property-based tests of the simulator: architectural correctness of
//! generated arithmetic programs and determinism of the timing model.

use proptest::prelude::*;

use pulp_sim::asm::Assembler;
use pulp_sim::isa::regs::*;
use pulp_sim::{Cluster, ClusterConfig, L2_BASE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A generated straight-line ALU program computes the same value the
    /// host computes.
    #[test]
    fn alu_programs_match_host_semantics(a in any::<u32>(), b in any::<u32>(), shift in 0u8..31) {
        let mut asm = Assembler::new();
        asm.li(T0, a);
        asm.li(T1, b);
        asm.add(T2, T0, T1);
        asm.xor(T3, T0, T1);
        asm.sub(T4, T0, T1);
        asm.mul(T5, T0, T1);
        asm.srli(T6, T0, shift);
        asm.and(A0, T2, T3);
        asm.or(A1, T4, T5);
        asm.sltu(A2, T0, T1);
        asm.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), asm.finish().unwrap());
        cluster.run(1000).unwrap();
        let core = cluster.core(0);
        prop_assert_eq!(core.reg(T2), a.wrapping_add(b));
        prop_assert_eq!(core.reg(T3), a ^ b);
        prop_assert_eq!(core.reg(T4), a.wrapping_sub(b));
        prop_assert_eq!(core.reg(T5), a.wrapping_mul(b));
        prop_assert_eq!(core.reg(T6), a >> shift);
        prop_assert_eq!(core.reg(A2), u32::from(a < b));
    }

    /// Popcount sums over a random array agree with the host, for both
    /// the builtin and the SWAR-free reference loop.
    #[test]
    fn popcount_sum_matches_host(data in proptest::collection::vec(any::<u32>(), 1..64)) {
        let expected: u32 = data.iter().map(|w| w.count_ones()).sum();
        let mut asm = Assembler::new();
        asm.li(T0, L2_BASE);
        asm.li(T1, data.len() as u32);
        asm.li(T2, 0);
        asm.label("loop");
        asm.lw(T3, T0, 0);
        asm.p_cnt(T3, T3);
        asm.add(T2, T2, T3);
        asm.addi(T0, T0, 4);
        asm.addi(T1, T1, -1);
        asm.bnez(T1, "loop");
        asm.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), asm.finish().unwrap());
        cluster.mem_mut().write_words(L2_BASE, &data).unwrap();
        cluster.run(100_000).unwrap();
        prop_assert_eq!(cluster.core(0).reg(T2), expected);
    }

    /// Timing is a pure function of the program: same program, same
    /// cycle count, and more cores never slow down an SPMD sum.
    #[test]
    fn timing_is_deterministic(n_words in 1u32..64) {
        let build = || {
            let mut asm = Assembler::new();
            asm.coreid(T0);
            asm.numcores(T1);
            asm.li(T2, n_words);
            // Each core walks the whole array strided by core count —
            // the archetypal SPMD loop.
            asm.li(T3, L2_BASE);
            asm.slli(T4, T0, 2);
            asm.add(T3, T3, T4);
            asm.label("loop");
            asm.bge(T0, T2, "done");
            asm.lw(T5, T3, 0);
            asm.add(T6, T6, T5);
            asm.slli(T4, T1, 2);
            asm.add(T3, T3, T4);
            asm.add(T0, T0, T1);
            asm.j("loop");
            asm.label("done");
            asm.barrier();
            asm.halt();
            asm.finish().unwrap()
        };
        let run = |cores: usize| {
            let mut cluster = Cluster::new(ClusterConfig::wolf(cores), build());
            let words: Vec<u32> = (0..n_words).collect();
            cluster.mem_mut().write_words(L2_BASE, &words).unwrap();
            cluster.run(1_000_000).unwrap().cycles
        };
        let once = run(4);
        prop_assert_eq!(once, run(4), "same configuration must reproduce");
        // 8 cores never slower than 1 for this embarrassingly parallel loop
        // (bank conflicts go to L2 port; allow equality + sync overhead).
        prop_assert!(run(8) <= run(1) + 200);
    }

    /// Memory round-trips arbitrary data through loads/stores of mixed
    /// widths.
    #[test]
    fn memory_roundtrip(value in any::<u32>(), offset in 0u32..30) {
        let addr_off = (offset * 4) as i32;
        let mut asm = Assembler::new();
        asm.li(T0, L2_BASE);
        asm.li(T1, value);
        asm.sw(T1, T0, addr_off);
        asm.lw(T2, T0, addr_off);
        asm.lhu(T3, T0, addr_off);
        asm.lbu(T4, T0, addr_off);
        asm.halt();
        let mut cluster = Cluster::new(ClusterConfig::pulpv3(1), asm.finish().unwrap());
        cluster.run(1000).unwrap();
        prop_assert_eq!(cluster.core(0).reg(T2), value);
        prop_assert_eq!(cluster.core(0).reg(T3), value & 0xffff);
        prop_assert_eq!(cluster.core(0).reg(T4), value & 0xff);
    }
}
