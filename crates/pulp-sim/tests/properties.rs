//! Property-based tests of the simulator: architectural correctness of
//! generated arithmetic programs and determinism of the timing model.
//!
//! Cases are drawn from a self-contained SplitMix64 stream (no external
//! property-testing framework in the build environment); every failure
//! is replayable from its printed case index.

use pulp_sim::asm::Assembler;
use pulp_sim::isa::regs::*;
use pulp_sim::{Cluster, ClusterConfig, L2_BASE};

/// Deterministic per-(test, case) generator.
struct CaseRng(u64);

impl CaseRng {
    fn new(test_id: u64, case: u64) -> Self {
        Self(test_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.wrapping_mul(0xBF58_476D_1CE4_E5B9))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generated straight-line ALU program computes the same value the
/// host computes.
#[test]
fn alu_programs_match_host_semantics() {
    for case in 0..64u64 {
        let mut rng = CaseRng::new(1, case);
        let a = rng.next_u32();
        let b = rng.next_u32();
        let shift = rng.below(31) as u8;
        let mut asm = Assembler::new();
        asm.li(T0, a);
        asm.li(T1, b);
        asm.add(T2, T0, T1);
        asm.xor(T3, T0, T1);
        asm.sub(T4, T0, T1);
        asm.mul(T5, T0, T1);
        asm.srli(T6, T0, shift);
        asm.and(A0, T2, T3);
        asm.or(A1, T4, T5);
        asm.sltu(A2, T0, T1);
        asm.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), asm.finish().unwrap());
        cluster.run(1000).unwrap();
        let core = cluster.core(0);
        assert_eq!(core.reg(T2), a.wrapping_add(b), "case {case}");
        assert_eq!(core.reg(T3), a ^ b, "case {case}");
        assert_eq!(core.reg(T4), a.wrapping_sub(b), "case {case}");
        assert_eq!(core.reg(T5), a.wrapping_mul(b), "case {case}");
        assert_eq!(core.reg(T6), a >> shift, "case {case}");
        assert_eq!(core.reg(A2), u32::from(a < b), "case {case}");
    }
}

/// Popcount sums over a random array agree with the host.
#[test]
fn popcount_sum_matches_host() {
    for case in 0..32u64 {
        let mut rng = CaseRng::new(2, case);
        let len = 1 + rng.below(63) as usize;
        let data: Vec<u32> = (0..len).map(|_| rng.next_u32()).collect();
        let expected: u32 = data.iter().map(|w| w.count_ones()).sum();
        let mut asm = Assembler::new();
        asm.li(T0, L2_BASE);
        asm.li(T1, data.len() as u32);
        asm.li(T2, 0);
        asm.label("loop");
        asm.lw(T3, T0, 0);
        asm.p_cnt(T3, T3);
        asm.add(T2, T2, T3);
        asm.addi(T0, T0, 4);
        asm.addi(T1, T1, -1);
        asm.bnez(T1, "loop");
        asm.halt();
        let mut cluster = Cluster::new(ClusterConfig::wolf(1), asm.finish().unwrap());
        cluster.mem_mut().write_words(L2_BASE, &data).unwrap();
        cluster.run(100_000).unwrap();
        assert_eq!(cluster.core(0).reg(T2), expected, "case {case}");
    }
}

/// Timing is a pure function of the program: same program, same cycle
/// count, and more cores never slow down an SPMD sum.
#[test]
fn timing_is_deterministic() {
    for case in 0..16u64 {
        let mut rng = CaseRng::new(3, case);
        let n_words = 1 + rng.below(63) as u32;
        let build = || {
            let mut asm = Assembler::new();
            asm.coreid(T0);
            asm.numcores(T1);
            asm.li(T2, n_words);
            // Each core walks the whole array strided by core count —
            // the archetypal SPMD loop.
            asm.li(T3, L2_BASE);
            asm.slli(T4, T0, 2);
            asm.add(T3, T3, T4);
            asm.label("loop");
            asm.bge(T0, T2, "done");
            asm.lw(T5, T3, 0);
            asm.add(T6, T6, T5);
            asm.slli(T4, T1, 2);
            asm.add(T3, T3, T4);
            asm.add(T0, T0, T1);
            asm.j("loop");
            asm.label("done");
            asm.barrier();
            asm.halt();
            asm.finish().unwrap()
        };
        let run = |cores: usize| {
            let mut cluster = Cluster::new(ClusterConfig::wolf(cores), build());
            let words: Vec<u32> = (0..n_words).collect();
            cluster.mem_mut().write_words(L2_BASE, &words).unwrap();
            cluster.run(1_000_000).unwrap().cycles
        };
        let once = run(4);
        assert_eq!(
            once,
            run(4),
            "case {case}: same configuration must reproduce"
        );
        // 8 cores never slower than 1 for this embarrassingly parallel
        // loop (bank conflicts go to L2 port; allow equality + sync
        // overhead).
        assert!(run(8) <= run(1) + 200, "case {case}");
    }
}

/// Memory round-trips arbitrary data through loads/stores of mixed
/// widths.
#[test]
fn memory_roundtrip() {
    for case in 0..32u64 {
        let mut rng = CaseRng::new(4, case);
        let value = rng.next_u32();
        let addr_off = (rng.below(30) * 4) as i32;
        let mut asm = Assembler::new();
        asm.li(T0, L2_BASE);
        asm.li(T1, value);
        asm.sw(T1, T0, addr_off);
        asm.lw(T2, T0, addr_off);
        asm.lhu(T3, T0, addr_off);
        asm.lbu(T4, T0, addr_off);
        asm.halt();
        let mut cluster = Cluster::new(ClusterConfig::pulpv3(1), asm.finish().unwrap());
        cluster.run(1000).unwrap();
        assert_eq!(cluster.core(0).reg(T2), value, "case {case}");
        assert_eq!(cluster.core(0).reg(T3), value & 0xffff, "case {case}");
        assert_eq!(cluster.core(0).reg(T4), value & 0xff, "case {case}");
    }
}
