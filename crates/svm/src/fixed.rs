//! Fixed-point SVM inference — the embedded deployment path.
//!
//! The paper runs its M4 baseline "with a fixed-point approach … to avoid
//! all the computation needed to be executed in the floating-point"
//! (citing that this preserves accuracy). This module quantizes a trained
//! [`SvmClassifier`] into pure-integer tables and provides a bit-exact
//! reference of the integer inference that the simulated-platform kernel
//! executes, mirroring the golden-model/kernel relationship of the HD
//! classifier:
//!
//! * features and support vectors as 16-bit ADC codes, compared at 12-bit
//!   precision (`code >> 4`) so squared distances fit comfortably in
//!   `u32`,
//! * `exp(−γ·d²)` as a 256-entry Q15 lookup table indexed by bucketed
//!   squared distance,
//! * coefficients and biases in a shared Q15-scaled integer domain, so
//!   decision signs and magnitude comparisons survive quantization.

use crate::multiclass::SvmClassifier;
use crate::Kernel;

/// One one-vs-one machine before quantization: its class pair, the
/// (shared-SV-index, float-coefficient) entries, and its bias.
type SparseMachine = ((usize, usize), Vec<(usize, f64)>, f64);

/// Number of entries in the RBF lookup table.
pub const LUT_SIZE: usize = 256;

/// One quantized pairwise machine: a dense coefficient row over the
/// model's *shared* support-vector matrix (LIBSVM's `sv_coef` layout —
/// support vectors a machine does not use carry coefficient zero, and
/// the embedded inference evaluates the kernel against every stored SV
/// for every machine, exactly as the paper's 456-cycles-per-SV figure
/// implies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedMachine {
    /// Positive class of this machine.
    pub class_pos: usize,
    /// Negative class of this machine.
    pub class_neg: usize,
    /// Scaled `αᵢyᵢ` coefficients, one per shared support vector.
    pub coeff_q: Vec<i32>,
    /// Scaled bias, in the renormalized decision domain (see
    /// [`FixedSvm::decision_q`]).
    pub bias_q: i32,
}

/// A fully quantized one-vs-one RBF SVM.
///
/// # Examples
///
/// ```
/// use svm::{FixedSvm, Kernel, SmoParams, SvmClassifier};
///
/// // Train in float on [0,1] features, then quantize.
/// let mut x = Vec::new();
/// let mut y = Vec::new();
/// for i in 0..10 {
///     let t = f64::from(i) * 0.01;
///     x.push(vec![0.1 + t, 0.1]); y.push(0);
///     x.push(vec![0.8 + t, 0.9]); y.push(1);
/// }
/// let float_clf = SvmClassifier::train(&x, &y, 2, Kernel::Rbf { gamma: 8.0 },
///                                      SmoParams::default());
/// let fixed = FixedSvm::quantize(&float_clf, 2);
/// // Inference runs on raw ADC codes.
/// assert_eq!(fixed.predict_codes(&[6_000, 6_500]), 0);
/// assert_eq!(fixed.predict_codes(&[55_000, 60_000]), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedSvm {
    /// Shared support vectors as ADC codes, `n_sv × n_features`.
    svs: Vec<Vec<u16>>,
    machines: Vec<FixedMachine>,
    lut: Vec<u16>,
    lut_shift: u32,
    n_classes: usize,
    n_features: usize,
}

/// Converts a `[0,1]` feature to its 16-bit ADC code.
#[must_use]
fn feature_to_code(f: f64) -> u16 {
    (f.clamp(0.0, 1.0) * f64::from(u16::MAX)).round() as u16
}

impl FixedSvm {
    /// Quantizes a float classifier trained on `[0,1]`-normalized
    /// features.
    ///
    /// # Panics
    ///
    /// Panics if the classifier does not use an RBF kernel, or if
    /// `n_features == 0`.
    #[must_use]
    pub fn quantize(clf: &SvmClassifier, n_features: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        let gamma = match clf.machines().first().map(|(_, m)| m.kernel()) {
            Some(Kernel::Rbf { gamma }) => gamma,
            other => panic!("fixed-point path requires an RBF kernel, got {other:?}"),
        };

        // Distances are computed on 12-bit codes: f ∈ [0,1] ↦ 4095·f.
        // γ_eff converts 12-bit-code distance² to the float exponent:
        // γ·d²_f = γ_eff·d²_code with γ_eff = γ / 4095².
        let gamma_eff = gamma / (4095.0 * 4095.0);
        // Choose the bucket size so the LUT spans arguments up to ≈ 10
        // (exp(−10) ≈ 4.5e−5, below one Q15 lsb).
        let span_needed = 10.0 / gamma_eff;
        let mut lut_shift = 0u32;
        while ((LUT_SIZE as f64) * f64::from(1u32 << lut_shift)) < span_needed && lut_shift < 24 {
            lut_shift += 1;
        }
        let bucket = f64::from(1u32 << lut_shift);
        let lut: Vec<u16> = (0..LUT_SIZE)
            .map(|i| {
                let d2 = (i as f64 + 0.5) * bucket;
                (32767.0 * (-gamma_eff * d2).exp()).round() as u16
            })
            .collect();

        // Shared coefficient scale across machines so magnitudes stay
        // comparable for vote tie-breaking.
        let max_coeff = clf
            .machines()
            .iter()
            .flat_map(|(_, m)| m.coefficients().iter().map(|c| c.abs()))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let scale = 32767.0 / max_coeff;

        // Build the shared SV matrix: the union of every machine's
        // support vectors, deduplicated, with each machine holding a
        // dense coefficient row over it.
        let mut svs_f: Vec<Vec<f64>> = Vec::new();
        let index_of = |sv: &[f64], svs_f: &mut Vec<Vec<f64>>| -> usize {
            if let Some(i) = svs_f.iter().position(|s| {
                s.len() == sv.len() && s.iter().zip(sv).all(|(a, b)| (a - b).abs() < 1e-12)
            }) {
                i
            } else {
                svs_f.push(sv.to_vec());
                svs_f.len() - 1
            }
        };
        let mut sparse: Vec<SparseMachine> = Vec::new();
        for ((a, b), m) in clf.machines() {
            let entries: Vec<(usize, f64)> = m
                .support_vectors()
                .iter()
                .zip(m.coefficients())
                .map(|(sv, &c)| (index_of(sv, &mut svs_f), c))
                .collect();
            sparse.push(((*a, *b), entries, m.bias()));
        }
        let n_sv = svs_f.len();
        let svs: Vec<Vec<u16>> = svs_f
            .iter()
            .map(|sv| sv.iter().map(|&f| feature_to_code(f)).collect())
            .collect();
        let machines = sparse
            .into_iter()
            .map(|((a, b), entries, bias)| {
                let mut coeff_q = vec![0i32; n_sv];
                for (i, c) in entries {
                    coeff_q[i] = (c * scale).round() as i32;
                }
                FixedMachine {
                    class_pos: a,
                    class_neg: b,
                    coeff_q,
                    // Each kernel term is renormalized by >>15, so the
                    // bias joins in the plain scaled domain.
                    bias_q: (bias * scale).round() as i32,
                }
            })
            .collect();

        Self {
            svs,
            machines,
            lut,
            lut_shift,
            n_classes: clf.n_classes(),
            n_features,
        }
    }

    /// The shared support-vector matrix (ADC codes).
    #[must_use]
    pub fn support_vectors(&self) -> &[Vec<u16>] {
        &self.svs
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features per vector.
    #[must_use]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The quantized machines.
    #[must_use]
    pub fn machines(&self) -> &[FixedMachine] {
        &self.machines
    }

    /// The RBF lookup table (Q15).
    #[must_use]
    pub fn lut(&self) -> &[u16] {
        &self.lut
    }

    /// Right-shift turning a squared 12-bit distance into a LUT index.
    #[must_use]
    pub fn lut_shift(&self) -> u32 {
        self.lut_shift
    }

    /// Total kernel evaluations per classification — every machine
    /// walks the full shared SV matrix, so this is
    /// `machines × support vectors` (the paper's cost structure: 55 SVs
    /// × 10 pairwise machines ≈ 550 evaluations in 25.1 kcycles).
    #[must_use]
    pub fn total_kernel_evaluations(&self) -> usize {
        self.machines.len() * self.svs.len()
    }

    /// Integer decision value of machine `m` on raw ADC codes.
    ///
    /// This is the *exact* arithmetic the simulated kernel performs:
    /// 12-bit differences, `u32` squared distance, LUT lookup, and a Q15
    /// multiply with per-term renormalization (`(coeff·k) >> 15`) so the
    /// accumulator fits a 32-bit register on the embedded target.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != self.n_features()` or `m` is out of
    /// range.
    #[must_use]
    pub fn decision_q(&self, m: usize, codes: &[u16]) -> i64 {
        assert_eq!(codes.len(), self.n_features, "feature count mismatch");
        let machine = &self.machines[m];
        let mut acc: i32 = machine.bias_q;
        for (sv, &coeff) in self.svs.iter().zip(&machine.coeff_q) {
            let mut d2: u32 = 0;
            for (&f, &s) in codes.iter().zip(sv.iter()) {
                let diff = i32::from(f >> 4) - i32::from(s >> 4);
                d2 = d2.saturating_add((diff * diff) as u32);
            }
            let idx = usize::min((d2 >> self.lut_shift) as usize, LUT_SIZE - 1);
            // coeff ∈ ±32767, lut ∈ [0, 32767]: the product fits i32 and
            // the renormalized term fits 16 bits.
            acc = acc.wrapping_add(coeff.wrapping_mul(i32::from(self.lut[idx])) >> 15);
        }
        i64::from(acc)
    }

    /// Predicts by pairwise voting on integer decisions.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != self.n_features()`.
    #[must_use]
    pub fn predict_codes(&self, codes: &[u16]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        let mut magnitude = vec![0i64; self.n_classes];
        for m in 0..self.machines.len() {
            let d = self.decision_q(m, codes);
            let machine = &self.machines[m];
            let winner = if d >= 0 {
                machine.class_pos
            } else {
                machine.class_neg
            };
            votes[winner] += 1;
            magnitude[winner] += d.abs();
        }
        (0..self.n_classes)
            .max_by(|&i, &j| {
                votes[i]
                    .cmp(&votes[j])
                    .then(magnitude[i].cmp(&magnitude[j]))
                    .then(j.cmp(&i))
            })
            .expect("at least two classes")
    }

    /// Predicts from `[0,1]` float features (convenience: quantizes then
    /// calls [`predict_codes`](Self::predict_codes)).
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != self.n_features()`.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> usize {
        let codes: Vec<u16> = features.iter().map(|&f| feature_to_code(f)).collect();
        self.predict_codes(&codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SmoParams, SvmClassifier};

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Four blobs in the unit square.
        let centers = [[0.2, 0.2], [0.8, 0.2], [0.2, 0.8], [0.8, 0.8]];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for i in 0..14 {
                let jx = ((i * 7 + label * 13) % 11) as f64 / 11.0 - 0.5;
                let jy = ((i * 5 + label * 3) % 13) as f64 / 13.0 - 0.5;
                x.push(vec![c[0] + 0.18 * jx, c[1] + 0.18 * jy]);
                y.push(label);
            }
        }
        (x, y)
    }

    fn trained() -> (SvmClassifier, Vec<Vec<f64>>, Vec<usize>) {
        let (x, y) = blobs();
        let clf =
            SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 20.0 }, SmoParams::default());
        (clf, x, y)
    }

    #[test]
    fn fixed_point_agrees_with_float_on_training_set() {
        let (clf, x, _) = trained();
        let fixed = FixedSvm::quantize(&clf, 2);
        let agree = x
            .iter()
            .filter(|xi| fixed.predict(xi) == clf.predict(xi))
            .count();
        assert!(
            agree as f64 / x.len() as f64 >= 0.96,
            "agreement {agree}/{}",
            x.len()
        );
    }

    #[test]
    fn fixed_point_agrees_on_a_dense_grid() {
        let (clf, _, _) = trained();
        let fixed = FixedSvm::quantize(&clf, 2);
        let mut agree = 0;
        let mut total = 0;
        for i in 0..20 {
            for j in 0..20 {
                let p = vec![i as f64 / 19.0, j as f64 / 19.0];
                total += 1;
                if fixed.predict(&p) == clf.predict(&p) {
                    agree += 1;
                }
            }
        }
        // Points near decision boundaries may flip; the bulk must agree.
        assert!(
            f64::from(agree) / f64::from(total) > 0.93,
            "grid agreement {agree}/{total}"
        );
    }

    #[test]
    fn lut_is_monotone_decreasing_from_full_scale() {
        let (clf, _, _) = trained();
        let fixed = FixedSvm::quantize(&clf, 2);
        let lut = fixed.lut();
        assert!(lut[0] > 30_000, "k(0) ≈ 1.0 in Q15, got {}", lut[0]);
        assert!(lut.windows(2).all(|w| w[0] >= w[1]), "LUT must decay");
        assert!(
            *lut.last().unwrap() < 100,
            "tail must be ≈ 0, got {}",
            lut.last().unwrap()
        );
    }

    #[test]
    fn kernel_evaluation_count_is_dense_over_shared_svs() {
        let (clf, _, _) = trained();
        let fixed = FixedSvm::quantize(&clf, 2);
        assert_eq!(
            fixed.total_kernel_evaluations(),
            clf.machines().len() * fixed.support_vectors().len()
        );
        assert_eq!(
            fixed.support_vectors().len(),
            clf.unique_support_vector_count()
        );
        // Dense rows: every machine has one coefficient per shared SV.
        for m in fixed.machines() {
            assert_eq!(m.coeff_q.len(), fixed.support_vectors().len());
        }
    }

    #[test]
    fn quantization_is_deterministic() {
        let (clf, _, _) = trained();
        assert_eq!(FixedSvm::quantize(&clf, 2), FixedSvm::quantize(&clf, 2));
    }

    #[test]
    #[should_panic(expected = "requires an RBF kernel")]
    fn linear_kernel_rejected() {
        let x = vec![vec![0.0], vec![1.0], vec![0.1], vec![0.9]];
        let y = vec![0, 1, 0, 1];
        let clf = SvmClassifier::train(&x, &y, 2, Kernel::Linear, SmoParams::default());
        let _ = FixedSvm::quantize(&clf, 1);
    }
}
