//! One-vs-one multiclass SVM, the standard LIBSVM construction the
//! paper's baseline uses.
//!
//! For `K` classes, `K·(K−1)/2` binary machines vote; ties break toward
//! the class with the larger summed decision magnitude, then the lower
//! index (deterministic).

use crate::kernel::Kernel;
use crate::smo::{BinarySvm, SmoParams};

/// A trained one-vs-one multiclass classifier.
///
/// # Examples
///
/// ```
/// use svm::{Kernel, SmoParams, SvmClassifier};
///
/// // Three Gaussian-ish blobs on a line.
/// let mut x = Vec::new();
/// let mut y = Vec::new();
/// for i in 0..8 {
///     let t = f64::from(i) * 0.05;
///     x.push(vec![t]);         y.push(0);
///     x.push(vec![2.0 + t]);   y.push(1);
///     x.push(vec![4.0 + t]);   y.push(2);
/// }
/// let clf = SvmClassifier::train(&x, &y, 3, Kernel::Rbf { gamma: 2.0 },
///                                SmoParams::default());
/// assert_eq!(clf.predict(&[0.1]), 0);
/// assert_eq!(clf.predict(&[2.2]), 1);
/// assert_eq!(clf.predict(&[4.1]), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    machines: Vec<((usize, usize), BinarySvm)>,
    n_classes: usize,
}

impl SvmClassifier {
    /// Trains all pairwise machines.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes < 2`, lengths mismatch, any label is out of
    /// range, or some class has no examples.
    #[must_use]
    pub fn train(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        kernel: Kernel,
        params: SmoParams,
    ) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        for class in 0..n_classes {
            assert!(y.contains(&class), "class {class} has no training examples");
        }
        let mut machines = Vec::with_capacity(n_classes * (n_classes - 1) / 2);
        for a in 0..n_classes {
            for b in (a + 1)..n_classes {
                let mut xs = Vec::new();
                let mut ys = Vec::new();
                for (xi, &yi) in x.iter().zip(y) {
                    if yi == a {
                        xs.push(xi.clone());
                        ys.push(1i8);
                    } else if yi == b {
                        xs.push(xi.clone());
                        ys.push(-1i8);
                    }
                }
                machines.push(((a, b), BinarySvm::train(&xs, &ys, kernel, params)));
            }
        }
        Self {
            machines,
            n_classes,
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The pairwise machines with their `(positive, negative)` class
    /// pairs.
    #[must_use]
    pub fn machines(&self) -> &[((usize, usize), BinarySvm)] {
        &self.machines
    }

    /// Total number of support vectors across machines, counting shared
    /// training points once — the "number of SVs" figure the paper
    /// reports (55 for its chosen subject).
    #[must_use]
    pub fn unique_support_vector_count(&self) -> usize {
        let mut seen: Vec<&Vec<f64>> = Vec::new();
        for (_, m) in &self.machines {
            for sv in m.support_vectors() {
                if !seen.iter().any(|s| {
                    s.len() == sv.len()
                        && s.iter().zip(sv.iter()).all(|(a, b)| (a - b).abs() < 1e-12)
                }) {
                    seen.push(sv);
                }
            }
        }
        seen.len()
    }

    /// Sum of per-machine support-vector counts — the number of kernel
    /// evaluations one classification costs (what the embedded cycle
    /// count depends on).
    #[must_use]
    pub fn total_kernel_evaluations(&self) -> usize {
        self.machines
            .iter()
            .map(|(_, m)| m.support_vectors().len())
            .sum()
    }

    /// Predicts by pairwise voting.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        let mut magnitude = vec![0.0f64; self.n_classes];
        for ((a, b), m) in &self.machines {
            let d = m.decision(x);
            let winner = if d >= 0.0 { *a } else { *b };
            votes[winner] += 1;
            magnitude[winner] += d.abs();
        }
        (0..self.n_classes)
            .max_by(|&i, &j| {
                votes[i]
                    .cmp(&votes[j])
                    .then(magnitude[i].total_cmp(&magnitude[j]))
                    .then(j.cmp(&i)) // lower index wins exact ties
            })
            .expect("at least two classes")
    }

    /// Accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or the set is empty.
    #[must_use]
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        assert!(!x.is_empty(), "empty evaluation set");
        let correct = x
            .iter()
            .zip(y)
            .filter(|(xi, &yi)| self.predict(xi) == yi)
            .count();
        correct as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per_class: usize, spread: f64) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Four well-separated 2-D blobs with deterministic jitter.
        let centers = [[0.0, 0.0], [3.0, 0.0], [0.0, 3.0], [3.0, 3.0]];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for i in 0..per_class {
                let jx = ((i * 7 + label * 13) % 11) as f64 / 11.0 - 0.5;
                let jy = ((i * 5 + label * 3) % 13) as f64 / 13.0 - 0.5;
                x.push(vec![c[0] + spread * jx, c[1] + spread * jy]);
                y.push(label);
            }
        }
        (x, y)
    }

    #[test]
    fn four_class_blobs_are_learned() {
        let (x, y) = blobs(12, 1.0);
        let clf = SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 1.0 }, SmoParams::default());
        assert_eq!(clf.machines().len(), 6);
        assert!(
            clf.accuracy(&x, &y) > 0.97,
            "accuracy {}",
            clf.accuracy(&x, &y)
        );
    }

    #[test]
    fn prediction_is_sensible_off_training_points() {
        let (x, y) = blobs(12, 1.0);
        let clf = SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 1.0 }, SmoParams::default());
        assert_eq!(clf.predict(&[0.2, -0.1]), 0);
        assert_eq!(clf.predict(&[3.1, 0.2]), 1);
        assert_eq!(clf.predict(&[-0.2, 2.8]), 2);
        assert_eq!(clf.predict(&[2.9, 3.2]), 3);
    }

    #[test]
    fn sv_counts_are_reported() {
        let (x, y) = blobs(10, 1.0);
        let clf = SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 1.0 }, SmoParams::default());
        let unique = clf.unique_support_vector_count();
        let evals = clf.total_kernel_evaluations();
        assert!(unique > 0 && unique <= x.len());
        assert!(evals >= unique, "evals {evals} unique {unique}");
    }

    #[test]
    fn overlapping_blobs_reduce_accuracy_gracefully() {
        let tight = {
            let (x, y) = blobs(12, 0.5);
            SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 1.0 }, SmoParams::default())
                .accuracy(&x, &y)
        };
        let loose = {
            let (x, y) = blobs(12, 4.5);
            SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 1.0 }, SmoParams::default())
                .accuracy(&x, &y)
        };
        assert!(tight >= loose, "tight {tight} loose {loose}");
        assert!(loose > 0.5, "even overlapping blobs beat chance: {loose}");
    }

    #[test]
    #[should_panic(expected = "has no training examples")]
    fn missing_class_rejected() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 0];
        let _ = SvmClassifier::train(&x, &y, 2, Kernel::Linear, SmoParams::default());
    }
}
