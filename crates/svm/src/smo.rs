//! Binary C-SVC trained by sequential minimal optimization (SMO).
//!
//! The optimizer is Platt's SMO with the standard maximum-|E₁−E₂|
//! second-choice heuristic and a deterministic sweep order, which is
//! plenty for the paper's tiny training sets (tens to hundreds of
//! examples, 4-dimensional features). No shrinking, no caching beyond the
//! error vector.

use crate::kernel::Kernel;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Box constraint C.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Stop after this many consecutive sweeps without updates.
    pub max_stale_passes: usize,
    /// Hard cap on total sweeps (safety).
    pub max_passes: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        Self {
            c: 10.0,
            tol: 1e-3,
            max_stale_passes: 3,
            max_passes: 200,
        }
    }
}

/// A trained binary classifier: support vectors with coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySvm {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    /// `αᵢ·yᵢ` per support vector.
    coefficients: Vec<f64>,
    bias: f64,
}

impl BinarySvm {
    /// Trains on `(x, y)` with labels `+1`/`−1`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, labels are not ±1,
    /// or only one label value is present.
    #[must_use]
    pub fn train(x: &[Vec<f64>], y: &[i8], kernel: Kernel, params: SmoParams) -> Self {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        assert!(
            y.iter().all(|&l| l == 1 || l == -1),
            "labels must be +1 or -1"
        );
        assert!(
            y.contains(&1) && y.contains(&-1),
            "need both classes to train"
        );
        let n = x.len();

        // Precompute the kernel matrix — training sets here are tiny.
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = kernel.eval(&x[i], &x[j]);
                k[i][j] = v;
                k[j][i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let yf: Vec<f64> = y.iter().map(|&l| f64::from(l)).collect();

        // f(i) - y_i, maintained incrementally.
        let decision = |alpha: &[f64], b: f64, k_row: &[f64]| -> f64 {
            alpha
                .iter()
                .zip(yf.iter())
                .zip(k_row.iter())
                .map(|((&a, &yv), &kv)| a * yv * kv)
                .sum::<f64>()
                + b
        };

        let mut stale = 0;
        let mut passes = 0;
        while stale < params.max_stale_passes && passes < params.max_passes {
            let mut changed = 0;
            for i in 0..n {
                let e_i = decision(&alpha, b, &k[i]) - yf[i];
                let violates = (yf[i] * e_i < -params.tol && alpha[i] < params.c)
                    || (yf[i] * e_i > params.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Second choice: maximize |E_i − E_j| (deterministic).
                let mut j_best = usize::MAX;
                let mut gap_best = -1.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let e_j = decision(&alpha, b, &k[j]) - yf[j];
                    let gap = (e_i - e_j).abs();
                    if gap > gap_best {
                        gap_best = gap;
                        j_best = j;
                    }
                }
                let j = j_best;
                let e_j = decision(&alpha, b, &k[j]) - yf[j];

                let (alpha_i_old, alpha_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if yf[i] != yf[j] {
                    (
                        (alpha[j] - alpha[i]).max(0.0),
                        (params.c + alpha[j] - alpha[i]).min(params.c),
                    )
                } else {
                    (
                        (alpha[i] + alpha[j] - params.c).max(0.0),
                        (alpha[i] + alpha[j]).min(params.c),
                    )
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = alpha_j_old - yf[j] * (e_i - e_j) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - alpha_j_old).abs() < 1e-7 {
                    continue;
                }
                let ai = alpha_i_old + yf[i] * yf[j] * (alpha_j_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;

                let b1 = b
                    - e_i
                    - yf[i] * (ai - alpha_i_old) * k[i][i]
                    - yf[j] * (aj - alpha_j_old) * k[i][j];
                let b2 = b
                    - e_j
                    - yf[i] * (ai - alpha_i_old) * k[i][j]
                    - yf[j] * (aj - alpha_j_old) * k[j][j];
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                stale += 1;
            } else {
                stale = 0;
            }
            passes += 1;
        }

        // Keep only the support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_vectors.push(x[i].clone());
                coefficients.push(alpha[i] * yf[i]);
            }
        }
        Self {
            kernel,
            support_vectors,
            coefficients,
            bias: b,
        }
    }

    /// The signed decision value `Σ αᵢyᵢ k(svᵢ, x) + b`.
    #[must_use]
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(self.coefficients.iter())
            .map(|(sv, &c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label (`+1`/`−1`).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.decision(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// The support vectors.
    #[must_use]
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// `αᵢ·yᵢ` per support vector.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The bias term.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The kernel this machine was trained with.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> (Vec<Vec<f64>>, Vec<i8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let t = f64::from(i) * 0.1;
            x.push(vec![t, t + 2.0]);
            y.push(1);
            x.push(vec![t + 2.0, t]);
            y.push(-1);
        }
        (x, y)
    }

    #[test]
    fn separates_linear_data() {
        let (x, y) = linearly_separable();
        let svm = BinarySvm::train(&x, &y, Kernel::Linear, SmoParams::default());
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(svm.predict(xi), yi);
        }
        assert_eq!(svm.predict(&[0.0, 5.0]), 1);
        assert_eq!(svm.predict(&[5.0, 0.0]), -1);
    }

    #[test]
    fn sparse_solution_on_separable_data() {
        let (x, y) = linearly_separable();
        let svm = BinarySvm::train(&x, &y, Kernel::Linear, SmoParams::default());
        assert!(
            svm.support_vectors().len() < x.len(),
            "expected a sparse solution, got {} SVs of {} points",
            svm.support_vectors().len(),
            x.len()
        );
    }

    #[test]
    fn rbf_solves_xor() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let y = vec![1, 1, -1, -1, 1, 1, -1, -1];
        let svm = BinarySvm::train(&x, &y, Kernel::Rbf { gamma: 4.0 }, SmoParams::default());
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(svm.predict(xi), yi, "at {xi:?}");
        }
    }

    #[test]
    fn dual_constraint_holds() {
        // Σ αᵢ yᵢ = 0 ⇔ Σ coefficients = 0.
        let (x, y) = linearly_separable();
        let svm = BinarySvm::train(&x, &y, Kernel::Linear, SmoParams::default());
        let sum: f64 = svm.coefficients().iter().sum();
        assert!(sum.abs() < 1e-6, "dual constraint violated: {sum}");
    }

    #[test]
    fn coefficients_respect_box_constraint() {
        let (x, y) = linearly_separable();
        let params = SmoParams {
            c: 2.5,
            ..SmoParams::default()
        };
        let svm = BinarySvm::train(&x, &y, Kernel::Linear, params);
        for &c in svm.coefficients() {
            assert!(c.abs() <= 2.5 + 1e-9, "coefficient {c} exceeds C");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = linearly_separable();
        let a = BinarySvm::train(&x, &y, Kernel::Rbf { gamma: 1.0 }, SmoParams::default());
        let b = BinarySvm::train(&x, &y, Kernel::Rbf { gamma: 1.0 }, SmoParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn decision_margin_sign_structure() {
        let (x, y) = linearly_separable();
        let svm = BinarySvm::train(&x, &y, Kernel::Linear, SmoParams::default());
        // Points deep in each half-plane have larger |decision| than
        // points near the boundary.
        let deep = svm.decision(&[0.0, 10.0]);
        let near = svm.decision(&[1.0, 1.2]);
        assert!(deep > near.abs());
    }

    #[test]
    #[should_panic(expected = "need both classes")]
    fn single_class_rejected() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1, 1];
        let _ = BinarySvm::train(&x, &y, Kernel::Linear, SmoParams::default());
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn bad_labels_rejected() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let _ = BinarySvm::train(&x, &y, Kernel::Linear, SmoParams::default());
    }
}
