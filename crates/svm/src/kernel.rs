//! Kernel functions for the SVM baseline.

/// Kernel used by the C-SVC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Inner product `⟨a, b⟩`.
    Linear,
    /// Radial basis function `exp(-γ‖a − b‖²)` — what the paper's
    /// EMG SVM uses.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    #[must_use]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
        match *self {
            Self::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Self::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::Rbf { gamma: 0.5 };
        let a = [1.0, 2.0];
        assert!((k.eval(&a, &a) - 1.0).abs() < 1e-12);
        let near = k.eval(&a, &[1.1, 2.0]);
        let far = k.eval(&a, &[3.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rbf_is_symmetric() {
        let k = Kernel::Rbf { gamma: 2.0 };
        let a = [0.3, -0.7, 0.2];
        let b = [1.0, 0.0, -1.0];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }
}
