//! # `svm` — the paper's SVM baseline, from scratch
//!
//! A support-vector-machine implementation standing in for the
//! LIBSVM-style baseline the PULP-HD paper compares against: a C-SVC
//! trained by sequential minimal optimization ([`smo`]), an RBF kernel
//! ([`kernel`]), one-vs-one multiclass voting ([`multiclass`]), and the
//! fixed-point inference path used on the ARM Cortex M4 ([`fixed`]).
//!
//! The float classifier is the *training-time* model; [`FixedSvm`] is the
//! *deployment* model whose integer arithmetic the simulated-platform
//! kernel reproduces bit-exactly (the same golden-model relationship the
//! HD classifier has).
//!
//! ## Example
//!
//! ```
//! use svm::{Kernel, SmoParams, SvmClassifier};
//!
//! // Two 1-D classes.
//! let x: Vec<Vec<f64>> = (0..20)
//!     .map(|i| vec![if i % 2 == 0 { 0.1 } else { 0.9 } + f64::from(i) * 1e-3])
//!     .collect();
//! let y: Vec<usize> = (0..20).map(|i| i % 2).collect();
//! let clf = SvmClassifier::train(&x, &y, 2, Kernel::Rbf { gamma: 10.0 },
//!                                SmoParams::default());
//! assert_eq!(clf.predict(&[0.05]), 0);
//! assert_eq!(clf.predict(&[0.95]), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fixed;
pub mod kernel;
pub mod multiclass;
pub mod smo;

pub use fixed::{FixedMachine, FixedSvm, LUT_SIZE};
pub use kernel::Kernel;
pub use multiclass::SvmClassifier;
pub use smo::{BinarySvm, SmoParams};
