//! The end-to-end accelerated classifier: host loader + simulated run +
//! golden-model cross-check.
//!
//! [`AccelChain`] owns a simulated cluster with the generated chain
//! program. The host writes the seed matrices (CIM, IM, AM prototypes)
//! into simulated L2 once, then calls [`classify`](AccelChain::classify)
//! per window of `ngram` samples; every run returns the predicted class,
//! the per-class Hamming distances, the query hypervector read back from
//! L1, and the per-kernel cycle regions that the paper's tables report.
//!
//! [`native_reference`] computes the same classification in pure Rust
//! via the `hdc` golden model; integration tests assert the two are
//! **bit-identical** on queries and distances.
//!
//! Because every kernel instruction is stepped through the simulated
//! cluster, the wall-clock of [`classify`](AccelChain::classify) is the
//! price of cycle-accurate *simulation* — orders of magnitude below the
//! host backends and unrelated to the modeled silicon's speed. Use the
//! reported cycle regions for hardware claims and the host backends for
//! host-throughput claims; the throughput bench lists this chain
//! (`accel_sim`) for scale only.

use hdc::bundle::majority_paper;
use hdc::encoder::ngram;
use hdc::item_memory::quantize_code;
use hdc::{BinaryHv, ContinuousItemMemory, ItemMemory};
use pulp_sim::{Cluster, RunSummary, SimError};

use crate::kernels::{build_chain, BuildError};
use crate::layout::{AccelParams, Layout, LayoutError};
use crate::platform::Platform;

/// Marker ids used by the chain program.
pub const MARK_CHAIN_START: u32 = 0;
/// Start of the AM kernel (end of MAP+ENCODERS).
pub const MARK_AM_START: u32 = 1;
/// End of the chain.
pub const MARK_CHAIN_END: u32 = 2;

/// Default cycle budget per classification (generous; a PULPv3 1-core
/// 256-channel run stays well below this).
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Errors raised while setting up or driving the accelerated chain.
#[derive(Debug)]
#[non_exhaustive]
pub enum ChainError {
    /// Memory layout could not be planned.
    Layout(LayoutError),
    /// Program generation failed.
    Build(BuildError),
    /// The model shapes do not match the parameters.
    ModelMismatch(String),
    /// The input window shape does not match the parameters.
    InputMismatch(String),
    /// The simulator faulted.
    Sim(SimError),
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Layout(e) => write!(f, "layout: {e}"),
            Self::Build(e) => write!(f, "build: {e}"),
            Self::ModelMismatch(what) => write!(f, "model mismatch: {what}"),
            Self::InputMismatch(what) => write!(f, "input mismatch: {what}"),
            Self::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<LayoutError> for ChainError {
    fn from(e: LayoutError) -> Self {
        Self::Layout(e)
    }
}
impl From<BuildError> for ChainError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}
impl From<SimError> for ChainError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Result of one accelerated classification.
#[derive(Debug, Clone)]
pub struct ChainRun {
    /// Predicted class (arg-min Hamming distance, first minimum wins).
    pub class: usize,
    /// Hamming distance to every prototype.
    pub distances: Vec<u32>,
    /// The query hypervector, read back from simulated L1.
    pub query: BinaryHv,
    /// Total cycles of the chain.
    pub cycles_total: u64,
    /// Cycles of the MAP + spatial + temporal region (paper's
    /// "MAP+ENCODERS" row).
    pub cycles_map_encode: u64,
    /// Cycles of the associative-memory region (paper's "AM" row).
    pub cycles_am: u64,
    /// Full simulator statistics.
    pub summary: RunSummary,
}

/// The accelerated HD classifier bound to one platform.
#[derive(Debug)]
pub struct AccelChain {
    layout: Layout,
    cluster: Cluster,
    loaded: bool,
    /// Reused staging buffer for the flattened window (the host side of
    /// the chain stays allocation-free across classifications).
    sample_buf: Vec<u16>,
}

impl AccelChain {
    /// Plans the layout, generates the program, and instantiates the
    /// simulated cluster for `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] if the layout cannot fit the platform's
    /// memories or the parameters are unsupported.
    pub fn new(platform: &Platform, params: AccelParams) -> Result<Self, ChainError> {
        let layout = Layout::plan(
            params,
            platform.policy,
            platform.cluster.n_cores,
            platform.cluster.l1_size,
            platform.cluster.l2_size,
        )?;
        let program = build_chain(&layout, platform.variant, platform.cluster.n_cores)?;
        let cluster = Cluster::new(platform.cluster.clone(), program);
        Ok(Self {
            layout,
            cluster,
            loaded: false,
            sample_buf: Vec::new(),
        })
    }

    /// The planned layout (footprints, tile geometry).
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Loads the trained model (CIM, IM, AM prototypes) into simulated
    /// memory. Must be called once before classification.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::ModelMismatch`] if the shapes disagree with
    /// the parameters this chain was built for.
    pub fn load_model(
        &mut self,
        cim: &ContinuousItemMemory,
        im: &ItemMemory,
        prototypes: &[BinaryHv],
    ) -> Result<(), ChainError> {
        let p = self.layout.params;
        if cim.n_levels() != p.levels {
            return Err(ChainError::ModelMismatch(format!(
                "CIM has {} levels, chain expects {}",
                cim.n_levels(),
                p.levels
            )));
        }
        if im.len() != p.channels {
            return Err(ChainError::ModelMismatch(format!(
                "IM has {} items, chain expects {} channels",
                im.len(),
                p.channels
            )));
        }
        if prototypes.len() != p.classes {
            return Err(ChainError::ModelMismatch(format!(
                "{} prototypes for {} classes",
                prototypes.len(),
                p.classes
            )));
        }
        let all = cim.iter().chain(im.iter()).chain(prototypes.iter());
        for hv in all.clone() {
            if hv.n_words() != p.n_words {
                return Err(ChainError::ModelMismatch(format!(
                    "hypervector of {} words, chain expects {}",
                    hv.n_words(),
                    p.n_words
                )));
            }
        }

        let mem = self.cluster.mem_mut();
        let row = p.n_words;
        for (i, hv) in cim.iter().enumerate() {
            mem.write_words(self.layout.cim + (i * row * 4) as u32, hv.words())
                .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        }
        for (i, hv) in im.iter().enumerate() {
            mem.write_words(self.layout.im + (i * row * 4) as u32, hv.words())
                .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        }
        for (i, hv) in prototypes.iter().enumerate() {
            mem.write_words(self.layout.am + (i * row * 4) as u32, hv.words())
                .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        }
        self.loaded = true;
        Ok(())
    }

    /// Runs one classification over `ngram` consecutive samples
    /// (`samples[t][c]` = ADC code of channel `c` at time `t`).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] on shape mismatch, if no model is loaded,
    /// or if the simulation faults.
    pub fn classify<W: AsRef<[u16]>>(&mut self, samples: &[W]) -> Result<ChainRun, ChainError> {
        self.classify_with_budget(samples, DEFAULT_MAX_CYCLES)
    }

    /// [`classify`](Self::classify) with an explicit cycle budget.
    ///
    /// # Errors
    ///
    /// As for [`classify`](Self::classify), plus
    /// [`SimError::Timeout`] when the budget is exceeded.
    pub fn classify_with_budget<W: AsRef<[u16]>>(
        &mut self,
        samples: &[W],
        max_cycles: u64,
    ) -> Result<ChainRun, ChainError> {
        let p = self.layout.params;
        if !self.loaded {
            return Err(ChainError::ModelMismatch(
                "no model loaded (call load_model first)".into(),
            ));
        }
        if samples.len() != p.ngram {
            return Err(ChainError::InputMismatch(format!(
                "{} samples for an {}-gram chain",
                samples.len(),
                p.ngram
            )));
        }
        self.sample_buf.clear();
        self.sample_buf.reserve(p.ngram * p.channels);
        for (t, s) in samples.iter().enumerate() {
            let s = s.as_ref();
            if s.len() != p.channels {
                return Err(ChainError::InputMismatch(format!(
                    "sample {t} has {} channels, chain expects {}",
                    s.len(),
                    p.channels
                )));
            }
            self.sample_buf.extend_from_slice(s);
        }
        self.cluster
            .mem_mut()
            .write_halves(self.layout.samples, &self.sample_buf)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;

        let summary = self.cluster.run(max_cycles)?;

        let mem = self.cluster.mem();
        let result = mem
            .read_words(self.layout.result, 1 + p.classes)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        let query_words = mem
            .read_words(self.layout.query, p.n_words)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;

        let cycles_map_encode = summary.region(MARK_CHAIN_START, MARK_AM_START).unwrap_or(0);
        let cycles_am = summary.region(MARK_AM_START, MARK_CHAIN_END).unwrap_or(0);
        Ok(ChainRun {
            class: result[0] as usize,
            distances: result[1..].to_vec(),
            query: BinaryHv::from_words(query_words),
            cycles_total: summary.cycles,
            cycles_map_encode,
            cycles_am,
            summary,
        })
    }
}

/// Pure-Rust reference of exactly the computation the chain program
/// performs (same quantizer, same bind/majority/tie-break, same N-gram
/// rotation, same arg-min). Returns `(query, distances, class)`.
///
/// # Panics
///
/// Panics if shapes disagree (this is a test/verification helper).
#[must_use]
pub fn native_reference<W: AsRef<[u16]>>(
    cim: &ContinuousItemMemory,
    im: &ItemMemory,
    prototypes: &[BinaryHv],
    samples: &[W],
) -> (BinaryHv, Vec<u32>, usize) {
    let spatials: Vec<BinaryHv> = samples
        .iter()
        .map(|s| {
            let bound: Vec<BinaryHv> = s
                .as_ref()
                .iter()
                .enumerate()
                .map(|(c, &code)| {
                    let level = quantize_code(code, cim.n_levels());
                    im.get(c).bind(cim.get(level))
                })
                .collect();
            majority_paper(&bound)
        })
        .collect();
    let query = ngram(&spatials);
    let distances: Vec<u32> = prototypes.iter().map(|p| p.hamming(&query)).collect();
    let class = distances
        .iter()
        .enumerate()
        .min_by_key(|&(_, &d)| d)
        .map(|(i, _)| i)
        .expect("at least one prototype");
    (query, distances, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemPolicy;
    use hdc::rng::derive_seed;

    fn model(params: &AccelParams, seed: u64) -> (ContinuousItemMemory, ItemMemory, Vec<BinaryHv>) {
        let cim = ContinuousItemMemory::new(params.levels, params.n_words, derive_seed(seed, 1));
        let im = ItemMemory::new(params.channels, params.n_words, derive_seed(seed, 2));
        let protos: Vec<BinaryHv> = (0..params.classes)
            .map(|k| BinaryHv::random(params.n_words, derive_seed(seed, 100 + k as u64)))
            .collect();
        (cim, im, protos)
    }

    fn samples(params: &AccelParams, seed: u64) -> Vec<Vec<u16>> {
        let mut rng = hdc::rng::Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..params.ngram)
            .map(|_| {
                (0..params.channels)
                    .map(|_| (rng.next_u32() & 0xffff) as u16)
                    .collect()
            })
            .collect()
    }

    /// The decisive test: simulated kernels == golden model, bit for bit.
    fn check_bit_exact(platform: Platform, params: AccelParams, seed: u64) {
        let (cim, im, protos) = model(&params, seed);
        let mut chain = AccelChain::new(&platform, params).unwrap();
        chain.load_model(&cim, &im, &protos).unwrap();
        let input = samples(&params, seed ^ 0xabc);
        let run = chain.classify(&input).unwrap();
        let (query, distances, class) = native_reference(&cim, &im, &protos, &input);
        assert_eq!(run.query, query, "query hypervector diverged");
        assert_eq!(run.distances, distances, "distances diverged");
        assert_eq!(run.class, class, "decision diverged");
    }

    #[test]
    fn pulpv3_single_core_matches_native_small_dim() {
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::pulpv3(1), params, 1);
    }

    #[test]
    fn pulpv3_quad_core_matches_native() {
        let params = AccelParams {
            n_words: 32,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::pulpv3(4), params, 2);
    }

    #[test]
    fn wolf_builtin_matches_native_with_ngram() {
        let params = AccelParams {
            n_words: 24,
            ngram: 4,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::wolf_builtin(8), params, 3);
    }

    #[test]
    fn wolf_plain_matches_native() {
        let params = AccelParams {
            n_words: 16,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::wolf_plain(4), params, 4);
    }

    #[test]
    fn cortex_m4_matches_native() {
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::cortex_m4(), params, 5);
    }

    #[test]
    fn scratch_majority_path_matches_native() {
        // channels > 5 exercises the scratch-array majority.
        let params = AccelParams {
            n_words: 8,
            channels: 9,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::wolf_builtin(4), params, 6);
        let params = AccelParams {
            n_words: 8,
            channels: 12,
            ..AccelParams::emg_default()
        };
        check_bit_exact(Platform::pulpv3(2), params, 7);
    }

    #[test]
    fn full_dimension_chain_matches_native() {
        // The real 313-word hypervectors on the 4-core PULPv3.
        check_bit_exact(Platform::pulpv3(4), AccelParams::emg_default(), 8);
    }

    #[test]
    fn region_markers_partition_the_run() {
        let params = AccelParams {
            n_words: 32,
            ..AccelParams::emg_default()
        };
        let (cim, im, protos) = model(&params, 9);
        let mut chain = AccelChain::new(&Platform::pulpv3(4), params).unwrap();
        chain.load_model(&cim, &im, &protos).unwrap();
        let run = chain.classify(&samples(&params, 10)).unwrap();
        assert!(run.cycles_map_encode > 0);
        assert!(run.cycles_am > 0);
        let sum = run.cycles_map_encode + run.cycles_am;
        assert!(
            sum <= run.cycles_total && sum >= run.cycles_total - run.cycles_total / 5,
            "regions {sum} should nearly cover total {}",
            run.cycles_total
        );
    }

    #[test]
    fn classification_is_repeatable_across_runs() {
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let (cim, im, protos) = model(&params, 11);
        let mut chain = AccelChain::new(&Platform::wolf_builtin(8), params).unwrap();
        chain.load_model(&cim, &im, &protos).unwrap();
        let input = samples(&params, 12);
        let a = chain.classify(&input).unwrap();
        let b = chain.classify(&input).unwrap();
        assert_eq!(a.query, b.query);
        assert_eq!(
            a.cycles_total, b.cycles_total,
            "simulation must be deterministic"
        );
    }

    #[test]
    fn input_validation() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let (cim, im, protos) = model(&params, 13);
        let mut chain = AccelChain::new(&Platform::pulpv3(1), params).unwrap();
        // Classify before load.
        assert!(matches!(
            chain.classify(&[vec![0u16; 4]]),
            Err(ChainError::ModelMismatch(_))
        ));
        chain.load_model(&cim, &im, &protos).unwrap();
        // Wrong sample count.
        assert!(matches!(
            chain.classify(&[vec![0u16; 4], vec![0u16; 4]]),
            Err(ChainError::InputMismatch(_))
        ));
        // Wrong channel count.
        assert!(matches!(
            chain.classify(&[vec![0u16; 3]]),
            Err(ChainError::InputMismatch(_))
        ));
    }

    #[test]
    fn model_validation() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let (cim, im, protos) = model(&params, 14);
        let mut chain = AccelChain::new(&Platform::pulpv3(1), params).unwrap();
        let bad_protos: Vec<BinaryHv> = protos.iter().take(3).cloned().collect();
        assert!(matches!(
            chain.load_model(&cim, &im, &bad_protos),
            Err(ChainError::ModelMismatch(_))
        ));
        let bad_im = ItemMemory::new(3, 8, 0);
        assert!(matches!(
            chain.load_model(&cim, &bad_im, &protos),
            Err(ChainError::ModelMismatch(_))
        ));
    }

    #[test]
    fn l2_direct_policy_also_matches_native() {
        let mut platform = Platform::pulpv3(4);
        platform.policy = MemPolicy::L2Direct;
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        check_bit_exact(platform, params, 15);
    }
}
