//! **Fig. 4** — multi-core scaling of the accelerated chain for N-gram
//! sizes 1–10 (Wolf with built-ins, 10,016-bit hypervectors). The
//! paper's claim: the workload scales essentially ideally across cores
//! for every N.

use crate::experiments::report::{render_table, speedup};
use crate::experiments::{measure_chain, CycleRun};
use crate::layout::AccelParams;
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// Core counts plotted.
pub const CORES: [usize; 4] = [1, 2, 4, 8];

/// One N-gram row of Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// N-gram size.
    pub ngram: usize,
    /// Cycle counts per core count, aligned with [`CORES`].
    pub cycles: Vec<CycleRun>,
}

impl Fig4Row {
    /// Speed-up on `CORES[i]` cores relative to one core.
    #[must_use]
    pub fn speedup_at(&self, i: usize) -> f64 {
        self.cycles[0].total as f64 / self.cycles[i].total as f64
    }

    /// Parallel efficiency on the largest core count.
    #[must_use]
    pub fn efficiency_at_max(&self) -> f64 {
        self.speedup_at(CORES.len() - 1) / CORES[CORES.len() - 1] as f64
    }
}

/// The regenerated Fig. 4 data.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// One row per N-gram size 1–10.
    pub rows: Vec<Fig4Row>,
}

/// Runs the sweep.
///
/// # Errors
///
/// Returns [`ChainError`] if any configuration fails.
pub fn run() -> Result<Fig4, ChainError> {
    let mut rows = Vec::new();
    for n in 1..=10usize {
        let mut cycles = Vec::new();
        for &cores in &CORES {
            let params = AccelParams {
                ngram: n,
                ..AccelParams::emg_default()
            };
            cycles.push(measure_chain(&Platform::wolf_builtin(cores), params)?);
        }
        rows.push(Fig4Row { ngram: n, cycles });
    }
    Ok(Fig4 { rows })
}

impl Fig4 {
    /// Renders cycles and speed-ups per core count.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![format!("N={}", r.ngram)];
                for (i, c) in r.cycles.iter().enumerate() {
                    row.push(format!("{}", c.total));
                    if i > 0 {
                        row.push(speedup(r.speedup_at(i)));
                    }
                }
                row
            })
            .collect();
        render_table(
            "Fig. 4 — scaling with cores for N-grams 1..10 (Wolf built-in, 10,016-bit)",
            &[
                "N", "1c cyc", "2c cyc", "sp", "4c cyc", "sp", "8c cyc", "sp",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_near_ideal_for_small_and_large_n() {
        for n in [1usize, 5] {
            let params = AccelParams {
                n_words: 157, // half dimension keeps the test quick
                ngram: n,
                ..AccelParams::emg_default()
            };
            let c1 = measure_chain(&Platform::wolf_builtin(1), params).unwrap();
            let c8 = measure_chain(&Platform::wolf_builtin(8), params).unwrap();
            let sp = c1.total as f64 / c8.total as f64;
            assert!((5.5..8.2).contains(&sp), "N={n}: 8-core speed-up {sp}");
        }
    }
}
