//! **Fig. 5** — scaling the number of input channels from 4 to 256
//! (10,016-bit hypervectors, N = 1): execution cycles and memory
//! footprint both grow linearly, the 8-core Wolf keeps meeting the
//! 10 ms latency budget, and the ARM Cortex M4 stops meeting it beyond
//! 16 channels.

use crate::experiments::report::render_table;
use crate::experiments::{measure_chain, meets_latency, required_mhz, CycleRun, LATENCY_MS};
use crate::layout::{AccelParams, Layout, MemPolicy};
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// Channel counts plotted.
pub const CHANNELS: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];

/// One channel-count point.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Number of channels.
    pub channels: usize,
    /// Wolf 8-core (built-in) cycles.
    pub wolf: CycleRun,
    /// Model memory footprint in bytes (matrices + working set).
    pub footprint_bytes: u32,
    /// Frequency the Wolf needs for 10 ms.
    pub wolf_required_mhz: f64,
    /// Whether the Wolf meets 10 ms at its maximum clock.
    pub wolf_meets_latency: bool,
    /// ARM Cortex M4 cycles for the same task.
    pub m4: CycleRun,
    /// Whether the M4 meets 10 ms at 168 MHz.
    pub m4_meets_latency: bool,
}

/// The regenerated Fig. 5 data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Points in increasing channel count.
    pub points: Vec<Fig5Point>,
}

/// Runs the channel sweep.
///
/// # Errors
///
/// Returns [`ChainError`] if any configuration fails.
pub fn run() -> Result<Fig5, ChainError> {
    let wolf = Platform::wolf_builtin(8);
    let mut m4 = Platform::cortex_m4();
    // The M4's SRAM cannot hold a 256-channel IM; let it overflow into
    // modelled external memory the same way the paper lets the
    // comparison run (the latency verdict is what matters).
    m4.cluster.l1_size = 2 * 1024 * 1024;
    let mut points = Vec::new();
    for &channels in &CHANNELS {
        let params = AccelParams {
            channels,
            ..AccelParams::emg_default()
        };
        let wolf_run = measure_chain(&wolf, params)?;
        let m4_run = measure_chain(&m4, params)?;
        let layout = Layout::plan(
            params,
            MemPolicy::DmaDoubleBuffer,
            8,
            wolf.cluster.l1_size,
            // Footprint accounting wants the matrices placed, not an
            // overflow error: plan against a roomy L2.
            8 * 1024 * 1024,
        )?;
        points.push(Fig5Point {
            channels,
            wolf: wolf_run,
            footprint_bytes: layout.total_footprint_bytes(),
            wolf_required_mhz: required_mhz(wolf_run.total),
            wolf_meets_latency: meets_latency(&wolf, wolf_run.total),
            m4: m4_run,
            m4_meets_latency: required_mhz(m4_run.total) <= Platform::cortex_m4().fmax_mhz,
        });
    }
    Ok(Fig5 { points })
}

impl Fig5 {
    /// Largest channel count at which the M4 still meets 10 ms.
    #[must_use]
    pub fn m4_max_feasible_channels(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.m4_meets_latency)
            .map(|p| p.channels)
            .max()
            .unwrap_or(0)
    }

    /// Renders the sweep.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.channels.to_string(),
                    p.wolf.total.to_string(),
                    format!("{:.1}", p.wolf_required_mhz),
                    if p.wolf_meets_latency { "yes" } else { "NO" }.into(),
                    format!("{:.1}", p.footprint_bytes as f64 / 1024.0),
                    p.m4.total.to_string(),
                    format!("{:.1}", required_mhz(p.m4.total) / 168.0 * LATENCY_MS),
                    if p.m4_meets_latency { "yes" } else { "NO" }.into(),
                ]
            })
            .collect();
        let mut out = render_table(
            "Fig. 5 — channel scaling (10,016-bit, N=1): Wolf 8 cores built-in vs ARM M4",
            &[
                "channels",
                "wolf cyc",
                "MHz@10ms",
                "meets",
                "mem (kB)",
                "m4 cyc",
                "m4 ms@168MHz",
                "meets",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nM4 feasible up to {} channels (paper: 16); Wolf 8c meets 10 ms at all points: {}\n",
            self.m4_max_feasible_channels(),
            self.points.iter().all(|p| p.wolf_meets_latency),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_scale_linearly_and_m4_crosses_over() {
        // Reduced sweep (4, 16, 64 channels) at full dimension.
        let wolf = Platform::wolf_builtin(8);
        let mut m4 = Platform::cortex_m4();
        m4.cluster.l1_size = 2 * 1024 * 1024;
        let mut wolf_cycles = Vec::new();
        let mut m4_feasible = Vec::new();
        for channels in [4usize, 16, 64] {
            let params = AccelParams {
                channels,
                ..AccelParams::emg_default()
            };
            let w = measure_chain(&wolf, params).unwrap();
            let m = measure_chain(&m4, params).unwrap();
            wolf_cycles.push(w.total as f64);
            m4_feasible.push(required_mhz(m.total) <= 168.0);
            assert!(
                meets_latency(&wolf, w.total),
                "wolf must meet 10 ms at {channels}ch"
            );
        }
        // Linear growth: cost per channel roughly constant between spans.
        let slope1 = (wolf_cycles[1] - wolf_cycles[0]) / 12.0;
        let slope2 = (wolf_cycles[2] - wolf_cycles[1]) / 48.0;
        assert!(
            (slope1 / slope2 - 1.0).abs() < 0.45,
            "slopes {slope1} vs {slope2}"
        );
        // M4: fine at 4 and 16 channels, infeasible at 64 (paper: >16).
        assert_eq!(m4_feasible, vec![true, true, false]);
    }
}
