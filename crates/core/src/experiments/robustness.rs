//! **Robustness study** (the paper's §4.1 aside): "the HD classifier
//! exhibits a graceful degradation with lower dimensionality, *or faulty
//! components*, allowing a trade-off between the application's accuracy
//! and the available hardware resources".
//!
//! This experiment quantifies that claim: classification accuracy as a
//! function of the fraction of associative-memory cells flipped
//! (modelling faulty nanoscale memory), at full dimensionality and at
//! the 224-bit compaction point. High-dimensional prototypes shrug off
//! fault rates that destroy the compact model — the holographic
//! redundancy argument of the HD literature, measured.

use emg::{Dataset, SynthConfig};
use hdc::HdConfig;

use crate::backend::{ExecutionBackend, FastBackend, HdModel, TrainSpec, TrainableBackend};
use crate::experiments::accuracy::{hold_windows, AccuracyConfig};
use crate::experiments::report::{percent, render_table};

/// Fault rates evaluated (fraction of prototype bits flipped).
pub const FAULT_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];

/// One row: accuracy at every fault rate for a given dimensionality.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Hypervector width in words.
    pub n_words: usize,
    /// Accuracy per fault rate, aligned with [`FAULT_RATES`].
    pub accuracy: Vec<f64>,
}

/// The robustness study results.
#[derive(Debug, Clone)]
pub struct Robustness {
    /// One row per dimensionality.
    pub rows: Vec<RobustnessRow>,
}

/// Runs the fault-injection study on one subject.
///
/// # Panics
///
/// Panics on internal configuration errors (experiment driver).
#[must_use]
pub fn run(quick: bool) -> Robustness {
    let acc_cfg = if quick {
        AccuracyConfig::quick()
    } else {
        AccuracyConfig::paper()
    };
    let synth = SynthConfig {
        reps: acc_cfg.reps,
        ..SynthConfig::paper()
    };
    let ds = Dataset::generate(&synth, 0, acc_cfg.seed);
    let train_idx = ds.training_trial_indices(acc_cfg.train_frac);
    let all_idx: Vec<usize> = (0..ds.trials().len()).collect();
    let train = hold_windows(&ds, &train_idx, acc_cfg.window, acc_cfg.hold_margin);
    let test = hold_windows(&ds, &all_idx, acc_cfg.window, acc_cfg.hold_margin);

    let train_windows: Vec<Vec<Vec<u16>>> = train.iter().map(|w| w.codes.clone()).collect();
    let train_labels: Vec<usize> = train.iter().map(|w| w.label).collect();
    let test_windows: Vec<Vec<Vec<u16>>> = test.iter().map(|w| w.codes.clone()).collect();

    let mut rows = Vec::new();
    for n_words in [313usize, 7] {
        let config = HdConfig {
            n_words,
            channels: ds.channels(),
            levels: 22,
            ngram: acc_cfg.ngram,
            window: acc_cfg.window,
            seed: acc_cfg.seed ^ 0x11d,
        };
        // Train through the fast trainable session (bit-identical to
        // the golden classifier's loop), then serve fault-injected
        // variants of the clean model.
        let spec = TrainSpec::from_config(&config, ds.classes()).expect("valid config");
        let mut trainer = FastBackend::new().begin_training(&spec).expect("session");
        trainer
            .train_batch(&train_windows, &train_labels)
            .expect("window shape");
        let clean = trainer.finalize().expect("trained model");

        let mut accuracy = Vec::with_capacity(FAULT_RATES.len());
        for (fi, &rate) in FAULT_RATES.iter().enumerate() {
            // Inject faults into every prototype.
            let dim = n_words * 32;
            let flips = (dim as f64 * rate).round() as usize;
            let faulty: Vec<hdc::BinaryHv> = clean
                .prototypes()
                .iter()
                .enumerate()
                .map(|(k, p)| p.with_bit_flips(flips, (fi * 16 + k) as u64))
                .collect();
            let model = HdModel::new(
                clean.cim().clone(),
                clean.im().clone(),
                faulty,
                clean.ngram(),
            )
            .expect("faulted model");
            let mut session = FastBackend::new().prepare(&model).expect("serving");
            let verdicts = session.classify_batch(&test_windows).expect("window shape");
            let correct = verdicts
                .iter()
                .zip(&test)
                .filter(|(v, w)| v.class == w.label)
                .count();
            accuracy.push(correct as f64 / test.len() as f64);
        }
        rows.push(RobustnessRow { n_words, accuracy });
    }
    Robustness { rows }
}

impl Robustness {
    /// Renders the fault-rate grid.
    #[must_use]
    pub fn render(&self) -> String {
        let mut headers: Vec<String> = vec!["dimension".into()];
        for r in FAULT_RATES {
            headers.push(format!("{:.0}% faults", 100.0 * r));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![format!("{}-bit", r.n_words * 32)];
                row.extend(r.accuracy.iter().map(|&a| percent(a)));
                row
            })
            .collect();
        render_table(
            "Robustness — accuracy vs fraction of faulty AM cells (subject 0)",
            &header_refs,
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_dimension_degrades_more_gracefully() {
        let r = run(true);
        let full = &r.rows[0];
        let compact = &r.rows[1];
        assert_eq!(full.n_words, 313);
        assert_eq!(compact.n_words, 7);
        // Clean accuracies are healthy.
        assert!(full.accuracy[0] > 0.85, "clean full {}", full.accuracy[0]);
        // At 20% faults the full-dimension model keeps nearly all of its
        // accuracy…
        let full_drop = full.accuracy[0] - full.accuracy[3];
        assert!(
            full_drop < 0.05,
            "10,016-bit drop at 20% faults: {full_drop}"
        );
        // …and degradation is monotone-ish and worse for the compact
        // model at high fault rates.
        let compact_drop = compact.accuracy[0] - compact.accuracy[4];
        let full_drop30 = full.accuracy[0] - full.accuracy[4];
        assert!(
            compact_drop > full_drop30,
            "224-bit should suffer more: {compact_drop} vs {full_drop30}"
        );
    }
}
