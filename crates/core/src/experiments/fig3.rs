//! **Fig. 3** — execution cycles versus hypervector dimension for
//! several N-gram sizes, on the 8-core Wolf with built-ins. The paper's
//! claim: cycles grow *linearly* with dimension for every N.

use crate::experiments::report::render_table;
use crate::experiments::{measure_chain, CycleRun};
use crate::layout::AccelParams;
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// One series of Fig. 3 (a fixed N-gram size).
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// N-gram size.
    pub ngram: usize,
    /// `(dimension in bits, cycles)` points, in increasing dimension.
    pub points: Vec<(usize, CycleRun)>,
}

impl Fig3Series {
    /// Coefficient of determination (R²) of a least-squares line through
    /// the `(dimension, total cycles)` points — the linearity measure.
    #[must_use]
    pub fn linearity_r2(&self) -> f64 {
        let n = self.points.len() as f64;
        let xs: Vec<f64> = self.points.iter().map(|&(d, _)| d as f64).collect();
        let ys: Vec<f64> = self.points.iter().map(|&(_, c)| c.total as f64).collect();
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_res: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        1.0 - ss_res / ss_tot
    }
}

/// The regenerated Fig. 3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// One series per N-gram size.
    pub series: Vec<Fig3Series>,
}

/// Dimension sweep used by the figure (words; ≈2k…10k bits).
pub const DIM_WORDS: [usize; 5] = [63, 125, 188, 250, 313];
/// N-gram sizes plotted.
pub const NGRAMS: [usize; 5] = [1, 3, 5, 7, 10];

/// Runs the sweep on the 8-core Wolf with built-ins.
///
/// # Errors
///
/// Returns [`ChainError`] if any configuration fails.
pub fn run() -> Result<Fig3, ChainError> {
    let platform = Platform::wolf_builtin(8);
    let mut series = Vec::new();
    for &n in &NGRAMS {
        let mut points = Vec::new();
        for &words in &DIM_WORDS {
            let params = AccelParams {
                n_words: words,
                ngram: n,
                ..AccelParams::emg_default()
            };
            points.push((words * 32, measure_chain(&platform, params)?));
        }
        series.push(Fig3Series { ngram: n, points });
    }
    Ok(Fig3 { series })
}

impl Fig3 {
    /// Renders the cycles grid (rows = dimension, columns = N).
    #[must_use]
    pub fn render(&self) -> String {
        let mut headers: Vec<String> = vec!["dim (bits)".into()];
        for s in &self.series {
            headers.push(format!("N={}", s.ngram));
        }
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = (0..DIM_WORDS.len())
            .map(|i| {
                let mut row = vec![format!("{}", DIM_WORDS[i] * 32)];
                for s in &self.series {
                    row.push(format!("{}", s.points[i].1.total));
                }
                row
            })
            .collect();
        let mut out = render_table(
            "Fig. 3 — cycles vs dimension for several N-gram sizes (Wolf 8 cores, built-in)",
            &header_refs,
            &rows,
        );
        out.push_str("\nlinearity (R2 of cycles vs dimension):\n");
        for s in &self.series {
            out.push_str(&format!(
                "  N={:>2}: R2 = {:.5}\n",
                s.ngram,
                s.linearity_r2()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_grow_linearly_with_dimension() {
        // Reduced sweep for test time: N ∈ {1, 3}, three dimensions.
        let platform = Platform::wolf_builtin(8);
        for n in [1usize, 3] {
            let mut points = Vec::new();
            for words in [63usize, 188, 313] {
                let params = AccelParams {
                    n_words: words,
                    ngram: n,
                    ..AccelParams::emg_default()
                };
                points.push((words * 32, measure_chain(&platform, params).unwrap()));
            }
            let series = Fig3Series { ngram: n, points };
            let r2 = series.linearity_r2();
            assert!(r2 > 0.995, "N={n}: R2 = {r2}");
            // And larger N costs more at fixed dimension.
            if n == 3 {
                assert!(series.points[2].1.total > 2 * 313 * 32 / 10, "sanity");
            }
        }
    }
}
