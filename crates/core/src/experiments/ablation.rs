//! **Ablation** (beyond the paper's tables) — how much each design
//! choice of the accelerator contributes:
//!
//! * memory policy: DMA double buffering vs direct L2 access vs
//!   everything-in-L1 (the paper asserts double buffering matters; this
//!   measures it),
//! * ISA lowering: generic vs builtin on the same Wolf cluster
//!   (isolating the Fig. 2 bit-manipulation effect from the core count).

use crate::experiments::report::{render_table, speedup};
use crate::experiments::{measure_chain, CycleRun};
use crate::kernels::IsaVariant;
use crate::layout::{AccelParams, MemPolicy};
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration description.
    pub name: String,
    /// Measured cycles.
    pub cycles: CycleRun,
}

/// The ablation study results.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Memory-policy rows (Wolf 8 cores, built-in).
    pub policies: Vec<AblationRow>,
    /// ISA rows (Wolf 8 cores).
    pub isa: Vec<AblationRow>,
}

/// Runs the ablation on the Wolf 8-core configuration.
///
/// # Errors
///
/// Returns [`ChainError`] if any configuration fails.
pub fn run() -> Result<Ablation, ChainError> {
    let params = AccelParams::emg_default();

    let mut policies = Vec::new();
    for (name, policy) in [
        ("DMA double buffering (paper)", MemPolicy::DmaDoubleBuffer),
        ("direct L2 access (no DMA)", MemPolicy::L2Direct),
        ("all matrices in L1", MemPolicy::AllL1),
    ] {
        let mut platform = Platform::wolf_builtin(8);
        platform.policy = policy;
        policies.push(AblationRow {
            name: name.into(),
            cycles: measure_chain(&platform, params)?,
        });
    }

    let mut isa = Vec::new();
    for (name, variant) in [
        ("Wolf 8c generic", IsaVariant::Generic),
        ("Wolf 8c built-in", IsaVariant::Builtin),
    ] {
        let mut platform = Platform::wolf_builtin(8);
        platform.variant = variant;
        isa.push(AblationRow {
            name: name.into(),
            cycles: measure_chain(&platform, params)?,
        });
    }

    Ok(Ablation { policies, isa })
}

impl Ablation {
    /// Renders both ablation tables.
    #[must_use]
    pub fn render(&self) -> String {
        let base = self.policies[0].cycles.total as f64;
        let rows: Vec<Vec<String>> = self
            .policies
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.cycles.total.to_string(),
                    speedup(base / r.cycles.total as f64),
                ]
            })
            .collect();
        let mut out = render_table(
            "Ablation A — memory policy (Wolf 8 cores built-in, EMG task)",
            &["policy", "cycles", "vs paper policy"],
            &rows,
        );
        let gen = self.isa[0].cycles.total as f64;
        let rows: Vec<Vec<String>> = self
            .isa
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.cycles.total.to_string(),
                    speedup(gen / r.cycles.total as f64),
                ]
            })
            .collect();
        out.push('\n');
        out.push_str(&render_table(
            "Ablation B — ISA lowering at fixed core count (Wolf 8 cores)",
            &["lowering", "cycles", "speed-up"],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_beats_l2_direct_and_builtins_beat_generic() {
        let params = AccelParams {
            n_words: 64,
            ..AccelParams::emg_default()
        };
        let mut dma = Platform::wolf_builtin(8);
        dma.policy = MemPolicy::DmaDoubleBuffer;
        let mut l2 = Platform::wolf_builtin(8);
        l2.policy = MemPolicy::L2Direct;
        let c_dma = measure_chain(&dma, params).unwrap();
        let c_l2 = measure_chain(&l2, params).unwrap();
        assert!(
            c_l2.total > c_dma.total,
            "L2-direct {} should be slower than DMA {}",
            c_l2.total,
            c_dma.total
        );

        let mut generic = Platform::wolf_builtin(8);
        generic.variant = IsaVariant::Generic;
        let c_gen = measure_chain(&generic, params).unwrap();
        assert!(
            c_gen.total as f64 > 1.5 * c_dma.total as f64,
            "generic {} vs builtin {}",
            c_gen.total,
            c_dma.total
        );
    }
}
