//! **Table 2** — power comparison of the HD algorithm on the ARM Cortex
//! M4 and PULPv3 at three operating points, at a 10 ms detection
//! latency.
//!
//! Cycle counts are measured by executing the chain; operating
//! frequencies follow the paper's rule `f = cycles / 10 ms`; power comes
//! from the silicon-fitted model of [`pulp_sim::power`]. The derived
//! headline ratios (≈2× energy saving for 4 cores at 0.5 V vs 1 core,
//! ≈4.9/8.1/9.9× power boost vs the M4, ≈20× with a next-generation
//! FLL) are reported alongside.

use pulp_sim::{CortexM4Power, OperatingPoint, PowerModel};

use crate::experiments::report::render_table;
use crate::experiments::{measure_chain, required_mhz};
use crate::layout::AccelParams;
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Configuration name.
    pub name: String,
    /// Measured cycles per classification.
    pub cycles: u64,
    /// Paper's cycle count.
    pub paper_cycles: u64,
    /// Operating frequency (MHz) for the 10 ms deadline.
    pub freq_mhz: f64,
    /// FLL power (mW); `None` for the M4 (single measured figure).
    pub fll_mw: Option<f64>,
    /// SoC-domain power (mW).
    pub soc_mw: Option<f64>,
    /// Cluster-domain power (mW).
    pub cluster_mw: Option<f64>,
    /// Total power (mW).
    pub total_mw: f64,
    /// Paper's total power (mW).
    pub paper_total_mw: f64,
    /// Power boost vs the ARM M4.
    pub boost: Option<f64>,
    /// Paper's boost figure.
    pub paper_boost: Option<f64>,
}

/// The regenerated Table 2 plus derived ratios.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in paper order (M4, PULPv3 1c@0.7 V, 4c@0.7 V, 4c@0.5 V).
    pub rows: Vec<Table2Row>,
    /// Energy ratio of 1-core@0.7 V vs 4-core@0.5 V execution (paper:
    /// ≈2×).
    pub energy_saving_4c: f64,
    /// Projected boost vs M4 with the next-generation FLL (paper: ≈20×).
    pub next_gen_fll_boost: f64,
}

/// Runs the Table 2 measurements.
///
/// # Errors
///
/// Returns [`ChainError`] if a chain fails to build or simulate.
pub fn run() -> Result<Table2, ChainError> {
    let params = AccelParams::emg_default();
    let model = PowerModel::pulpv3();
    let m4_power = CortexM4Power::paper();

    let m4_cycles = measure_chain(&Platform::cortex_m4(), params)?.total;
    let p1_cycles = measure_chain(&Platform::pulpv3(1), params)?.total;
    let p4_cycles = measure_chain(&Platform::pulpv3(4), params)?.total;

    let mut rows = Vec::new();
    rows.push(Table2Row {
        name: "ARM Cortex M4 @1.85V".into(),
        cycles: m4_cycles,
        paper_cycles: 439_000,
        freq_mhz: required_mhz(m4_cycles),
        fll_mw: None,
        soc_mw: None,
        cluster_mw: None,
        total_mw: m4_power.total_mw,
        paper_total_mw: 20.83,
        boost: None,
        paper_boost: None,
    });

    let mut pulp_row = |name: &str,
                        cycles: u64,
                        paper_cycles: u64,
                        cores: usize,
                        volts: f64,
                        paper_total: f64,
                        paper_boost: f64| {
        let op = OperatingPoint::new(volts, required_mhz(cycles));
        let b = model.breakdown(cores, op);
        rows.push(Table2Row {
            name: name.into(),
            cycles,
            paper_cycles,
            freq_mhz: op.freq_mhz,
            fll_mw: Some(b.fll_mw),
            soc_mw: Some(b.soc_mw),
            cluster_mw: Some(b.cluster_mw),
            total_mw: b.total_mw(),
            paper_total_mw: paper_total,
            boost: Some(m4_power.total_mw / b.total_mw()),
            paper_boost: Some(paper_boost),
        });
    };
    pulp_row("PULPv3 1 core @0.7V", p1_cycles, 533_000, 1, 0.7, 4.22, 4.9);
    pulp_row(
        "PULPv3 4 cores @0.7V",
        p4_cycles,
        143_000,
        4,
        0.7,
        2.56,
        8.1,
    );
    pulp_row(
        "PULPv3 4 cores @0.5V",
        p4_cycles,
        143_000,
        4,
        0.5,
        2.10,
        9.9,
    );

    // Derived headline numbers.
    let e1 = model.energy_uj(
        1,
        OperatingPoint::new(0.7, required_mhz(p1_cycles)),
        p1_cycles,
    );
    let e4 = model.energy_uj(
        4,
        OperatingPoint::new(0.5, required_mhz(p4_cycles)),
        p4_cycles,
    );
    let next = PowerModel::pulpv3_next_gen_fll();
    let p_next = next
        .breakdown(4, OperatingPoint::new(0.5, required_mhz(p4_cycles)))
        .total_mw();

    Ok(Table2 {
        rows,
        energy_saving_4c: e1 / e4,
        next_gen_fll_boost: m4_power.total_mw / p_next,
    })
}

impl Table2 {
    /// Renders the table plus the derived ratios.
    #[must_use]
    pub fn render(&self) -> String {
        let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.2}"));
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.0}k", r.cycles as f64 / 1000.0),
                    format!("{:.0}k", r.paper_cycles as f64 / 1000.0),
                    format!("{:.1}", r.freq_mhz),
                    fmt_opt(r.fll_mw),
                    fmt_opt(r.soc_mw),
                    fmt_opt(r.cluster_mw),
                    format!("{:.2}", r.total_mw),
                    format!("{:.2}", r.paper_total_mw),
                    fmt_opt(r.boost),
                    fmt_opt(r.paper_boost),
                ]
            })
            .collect();
        let mut out = render_table(
            "Table 2 — power of the HD algorithm on ARM Cortex M4 and PULPv3 (10 ms latency)",
            &[
                "configuration",
                "cyc",
                "(paper)",
                "MHz",
                "P fll",
                "P soc",
                "P clus",
                "P tot",
                "(paper)",
                "boost",
                "(paper)",
            ],
            &rows,
        );
        out.push_str(&format!(
            "\nderived: energy saving 4c@0.5V vs 1c@0.7V = {:.2}x (paper ~2x)\n",
            self.energy_saving_4c
        ));
        out.push_str(&format!(
            "derived: boost vs M4 with next-gen FLL = {:.1}x (paper ~20x)\n",
            self.next_gen_fll_boost
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_table2_reproduces_paper_shape() {
        let t = run().unwrap();
        assert_eq!(t.rows.len(), 4);
        // Boosts grow monotonically across the three PULPv3 rows and land
        // near the paper's 4.9 / 8.1 / 9.9.
        let boosts: Vec<f64> = t.rows[1..].iter().map(|r| r.boost.unwrap()).collect();
        assert!(boosts[0] < boosts[1] && boosts[1] < boosts[2], "{boosts:?}");
        assert!((3.5..7.0).contains(&boosts[0]), "1c boost {}", boosts[0]);
        assert!(
            (6.5..11.0).contains(&boosts[1]),
            "4c@0.7 boost {}",
            boosts[1]
        );
        assert!(
            (8.0..13.0).contains(&boosts[2]),
            "4c@0.5 boost {}",
            boosts[2]
        );
        // ≈2× energy saving and ≈20× projected boost.
        assert!(
            (1.6..2.6).contains(&t.energy_saving_4c),
            "{}",
            t.energy_saving_4c
        );
        assert!(
            (14.0..26.0).contains(&t.next_gen_fll_boost),
            "{}",
            t.next_gen_fll_boost
        );
        let text = t.render();
        assert!(text.contains("PULPv3 4 cores @0.5V"));
    }
}
