//! **§4.1 accuracy study** — HD versus SVM classification accuracy on
//! the (synthetic) 5-subject EMG task, plus the dimensionality sweep
//! behind the paper's graceful-degradation claim.
//!
//! Protocol follows the paper: per-subject models, trained on 25 % of
//! the trials, tested on the entire dataset; 10 ms (5-sample)
//! classification windows. Gesture trials are scored on their hold
//! phase (the onset/release transitions carry no class information and
//! are not part of the paper's per-gesture accuracy either).

use emg::{Dataset, SynthConfig, Window};
use hdc::HdConfig;
use svm::{FixedSvm, Kernel, SmoParams, SvmClassifier};

use crate::backend::{BackendSession, FastBackend, TrainSpec, TrainableBackend};
use crate::experiments::report::{percent, render_table};

/// Configuration of the accuracy study.
#[derive(Debug, Clone)]
pub struct AccuracyConfig {
    /// Number of synthetic subjects.
    pub subjects: usize,
    /// Gesture repetitions per class and subject.
    pub reps: usize,
    /// Classification window in samples (5 ≙ 10 ms at 500 Hz).
    pub window: usize,
    /// N-gram size (the EMG task uses 1).
    pub ngram: usize,
    /// Fraction of trials used for training.
    pub train_frac: f64,
    /// Hypervector widths (words) for the dimensionality sweep.
    pub dim_words_sweep: Vec<usize>,
    /// Samples trimmed from each trial's start/end when scoring
    /// (transition removal).
    pub hold_margin: (usize, usize),
    /// Keep every n-th training window for the SVM optimizer (SMO is
    /// quadratic; the paper's SVM likewise trains on widely spaced
    /// windows).
    pub svm_train_stride: usize,
    /// Master seed.
    pub seed: u64,
}

impl AccuracyConfig {
    /// The paper's protocol: 5 subjects, 10 repetitions, 25 % training.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            subjects: 5,
            reps: 10,
            window: 5,
            ngram: 1,
            train_frac: 0.25,
            // 64, 224 ("200-D"), 512, 1024, 2048, 5024, 10016 bits.
            dim_words_sweep: vec![2, 7, 16, 32, 64, 157, 313],
            hold_margin: (250, 300),
            svm_train_stride: 6,
            seed: 0xE16_ACC,
        }
    }

    /// Reduced-scale configuration for tests.
    ///
    /// Fewer subjects/repetitions, but a denser SVM training subsample —
    /// with a single training trial per class, a sparse stride would
    /// starve the SMO of boundary examples.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            subjects: 2,
            reps: 4,
            dim_words_sweep: vec![2, 7, 313],
            svm_train_stride: 2,
            ..Self::paper()
        }
    }
}

/// Accuracy results of one subject.
#[derive(Debug, Clone, Copy)]
pub struct SubjectAccuracy {
    /// Subject index.
    pub subject: usize,
    /// HD classifier at full dimensionality (10,016-D).
    pub hd_full: f64,
    /// HD classifier at 224-D (7 words — the paper's "200-D" point).
    pub hd_200d: f64,
    /// SVM baseline.
    pub svm: f64,
    /// Unique support vectors of the subject's SVM model.
    pub svm_unique_svs: usize,
}

/// One point of the dimensionality sweep.
#[derive(Debug, Clone, Copy)]
pub struct DimPoint {
    /// Effective dimensionality in bits (words × 32).
    pub dim_bits: usize,
    /// Mean HD accuracy across subjects.
    pub mean_accuracy: f64,
}

/// The full accuracy report.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Per-subject results.
    pub subjects: Vec<SubjectAccuracy>,
    /// Dimensionality sweep (mean over subjects).
    pub dim_sweep: Vec<DimPoint>,
}

impl AccuracyReport {
    /// Mean HD accuracy at full dimensionality.
    #[must_use]
    pub fn mean_hd_full(&self) -> f64 {
        mean(self.subjects.iter().map(|s| s.hd_full))
    }

    /// Mean HD accuracy at 224-D.
    #[must_use]
    pub fn mean_hd_200d(&self) -> f64 {
        mean(self.subjects.iter().map(|s| s.hd_200d))
    }

    /// Mean SVM accuracy.
    #[must_use]
    pub fn mean_svm(&self) -> f64 {
        mean(self.subjects.iter().map(|s| s.svm))
    }

    /// Renders subject table + sweep.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .subjects
            .iter()
            .map(|s| {
                vec![
                    format!("subject {}", s.subject),
                    percent(s.hd_full),
                    percent(s.hd_200d),
                    percent(s.svm),
                    s.svm_unique_svs.to_string(),
                ]
            })
            .collect();
        let mut out = render_table(
            "Accuracy — HD vs SVM, per subject (train 25%, test all; 10 ms windows)",
            &["subject", "HD 10016-D", "HD 224-D", "SVM", "SVM #SV"],
            &rows,
        );
        out.push_str(&format!(
            "\nmean: HD {} (paper 92.4%) | HD@224-D {} (paper 90.7%) | SVM {} (paper 89.6%)\n",
            percent(self.mean_hd_full()),
            percent(self.mean_hd_200d()),
            percent(self.mean_svm()),
        ));
        out.push_str("\nDimensionality sweep (mean HD accuracy):\n");
        for p in &self.dim_sweep {
            out.push_str(&format!(
                "  D = {:>6} : {}\n",
                p.dim_bits,
                percent(p.mean_accuracy)
            ));
        }
        out
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    v.iter().sum::<f64>() / v.len() as f64
}

/// Hold-phase windows of the given trials.
pub(crate) fn hold_windows(
    ds: &Dataset,
    indices: &[usize],
    window: usize,
    margin: (usize, usize),
) -> Vec<Window> {
    let mut out = Vec::new();
    for &i in indices {
        let trial = &ds.trials()[i];
        let len = trial.codes.len();
        let from = margin.0.min(len);
        let to = len.saturating_sub(margin.1).max(from);
        let mut start = from;
        while start + window <= to {
            out.push(Window {
                codes: trial.codes[start..start + window].to_vec(),
                label: trial.label,
            });
            start += window;
        }
    }
    out
}

/// Labelled windows converted once into the batch shape the backend
/// sessions consume, so the per-dimension sweep reuses them instead of
/// re-cloning every window per point.
struct LabelledBatch {
    windows: Vec<Vec<Vec<u16>>>,
    labels: Vec<usize>,
}

impl LabelledBatch {
    fn from_windows(windows: &[Window]) -> Self {
        Self {
            windows: windows.iter().map(|w| w.codes.clone()).collect(),
            labels: windows.iter().map(|w| w.label).collect(),
        }
    }
}

/// Trains an HD model through the fast trainable session (batched over
/// the worker pool; bit-identical to the golden classifier's training
/// loop by the backend equivalence properties) and hands it off as a
/// serving session for evaluation.
fn train_hd(
    n_words: usize,
    cfg: &AccuracyConfig,
    channels: usize,
    classes: usize,
    train: &LabelledBatch,
) -> Box<dyn BackendSession> {
    let hd_cfg = HdConfig {
        n_words,
        channels,
        levels: 22,
        ngram: cfg.ngram,
        window: cfg.window,
        seed: cfg.seed ^ 0x11d,
    };
    let spec = TrainSpec::from_config(&hd_cfg, classes).expect("valid config");
    let mut trainer = FastBackend::new().begin_training(&spec).expect("session");
    trainer
        .train_batch(&train.windows, &train.labels)
        .expect("window shape");
    trainer.into_serving().expect("serving hand-off")
}

fn hd_accuracy(session: &mut dyn BackendSession, test: &LabelledBatch) -> f64 {
    let verdicts = session.classify_batch(&test.windows).expect("window shape");
    let correct = verdicts
        .iter()
        .zip(&test.labels)
        .filter(|(v, &label)| v.class == label)
        .count();
    correct as f64 / test.labels.len() as f64
}

/// Runs the accuracy study.
///
/// # Panics
///
/// Panics on internally inconsistent configurations (this is an
/// experiment driver, not a library entry point).
#[must_use]
pub fn run(cfg: &AccuracyConfig) -> AccuracyReport {
    let synth = SynthConfig {
        reps: cfg.reps,
        ..SynthConfig::paper()
    };
    let mut subjects = Vec::new();
    let mut sweep_acc = vec![0.0f64; cfg.dim_words_sweep.len()];

    for subject in 0..cfg.subjects {
        let ds = Dataset::generate(&synth, subject, cfg.seed);
        let train_idx = ds.training_trial_indices(cfg.train_frac);
        let all_idx: Vec<usize> = (0..ds.trials().len()).collect();
        let train = hold_windows(&ds, &train_idx, cfg.window, cfg.hold_margin);
        let test = hold_windows(&ds, &all_idx, cfg.window, cfg.hold_margin);
        let train_batch = LabelledBatch::from_windows(&train);
        let test_batch = LabelledBatch::from_windows(&test);

        // HD at full dimension and at the 224-D compaction point.
        let hd_full = hd_accuracy(
            train_hd(313, cfg, ds.channels(), ds.classes(), &train_batch).as_mut(),
            &test_batch,
        );
        let hd_200 = hd_accuracy(
            train_hd(7, cfg, ds.channels(), ds.classes(), &train_batch).as_mut(),
            &test_batch,
        );

        // Dimensionality sweep.
        for (i, &words) in cfg.dim_words_sweep.iter().enumerate() {
            let acc = if words == 313 {
                hd_full
            } else if words == 7 {
                hd_200
            } else {
                hd_accuracy(
                    train_hd(words, cfg, ds.channels(), ds.classes(), &train_batch).as_mut(),
                    &test_batch,
                )
            };
            sweep_acc[i] += acc;
        }

        // SVM baseline on per-window mean-envelope features.
        let svm_x: Vec<Vec<f64>> = train
            .iter()
            .step_by(cfg.svm_train_stride)
            .map(Window::features)
            .collect();
        let svm_y: Vec<usize> = train
            .iter()
            .step_by(cfg.svm_train_stride)
            .map(|w| w.label)
            .collect();
        let svm_clf = SvmClassifier::train(
            &svm_x,
            &svm_y,
            ds.classes(),
            Kernel::Rbf { gamma: 12.0 },
            SmoParams::default(),
        );
        let fixed = FixedSvm::quantize(&svm_clf, ds.channels());
        let svm_correct = test
            .iter()
            .filter(|w| {
                let codes: Vec<u16> = w
                    .features()
                    .iter()
                    .map(|&f| (f * f64::from(u16::MAX)) as u16)
                    .collect();
                fixed.predict_codes(&codes) == w.label
            })
            .count();
        subjects.push(SubjectAccuracy {
            subject,
            hd_full,
            hd_200d: hd_200,
            svm: svm_correct as f64 / test.len() as f64,
            svm_unique_svs: svm_clf.unique_support_vector_count(),
        });
    }

    let dim_sweep = cfg
        .dim_words_sweep
        .iter()
        .zip(sweep_acc)
        .map(|(&words, acc)| DimPoint {
            dim_bits: words * 32,
            mean_accuracy: acc / cfg.subjects as f64,
        })
        .collect();
    AccuracyReport {
        subjects,
        dim_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_accuracy_study_reproduces_ordering() {
        let report = run(&AccuracyConfig::quick());
        let hd = report.mean_hd_full();
        let hd200 = report.mean_hd_200d();
        let svm = report.mean_svm();
        // Bands, not exact values: HD strong, 224-D close behind, SVM
        // competitive but behind HD (the paper's ordering).
        assert!(hd > 0.85, "HD accuracy {hd}");
        assert!(hd200 > 0.80, "HD@224 accuracy {hd200}");
        assert!(
            hd + 0.02 >= hd200,
            "compaction should not help: {hd} vs {hd200}"
        );
        assert!(svm > 0.70, "SVM accuracy {svm}");
        assert!(
            hd >= svm - 0.02,
            "HD should match or beat SVM: {hd} vs {svm}"
        );
        // Graceful degradation: the 64-bit point collapses relative to
        // full dimension.
        let d64 = report.dim_sweep[0].mean_accuracy;
        assert!(
            d64 < hd - 0.03,
            "64-bit point should degrade: {d64} vs {hd}"
        );
        let text = report.render();
        assert!(text.contains("Dimensionality sweep"));
    }
}
