//! **Table 1** — HD computing (200-D) versus SVM at iso-accuracy on the
//! ARM Cortex M4, 10 ms detection latency.
//!
//! Both cycle counts are *measured by execution* on the same M4 core
//! model: the HD chain at 7 words (224-bit), and the fixed-point SVM via
//! [`crate::svm_kernel::SvmChain`] (per support vector: 4-feature squared
//! distance, bucketed `exp` lookup, Q15 multiply-accumulate; then
//! one-vs-one voting). Accuracies come from the §4.1 study. The legacy
//! instruction-cost model [`svm_m4_cycles`] is kept for sanity-checking
//! the measured count.

use svm::FixedSvm;

use crate::experiments::accuracy::{self, AccuracyConfig};
use crate::experiments::report::{percent, render_table};
use crate::experiments::{measure_chain, CycleRun};
use crate::layout::AccelParams;
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// The regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Measured HD (224-D) chain cycles on the M4 model.
    pub hd: CycleRun,
    /// Measured fixed-point SVM cycles on the M4 (executed via
    /// [`crate::svm_kernel::SvmChain`]).
    pub svm_cycles: u64,
    /// Total kernel evaluations of the SVM model that was costed.
    pub svm_kernel_evals: usize,
    /// Mean HD accuracy at 224-D.
    pub hd_accuracy: f64,
    /// Mean SVM accuracy.
    pub svm_accuracy: f64,
}

/// Instruction-cost model of the fixed-point SVM inner loop on the M4
/// (see module docs). Exposed so the ablation benches can reuse it.
#[must_use]
pub fn svm_m4_cycles(model: &FixedSvm) -> u64 {
    let features = model.n_features() as u64;
    // Distance accumulation per feature: lhu f (2) + lhu sv (2) +
    // 2× srli (2) + sub (1) + mul (1) + add (1) = 9.
    let per_feature = 9;
    // Bucketing + LUT + MAC per SV: srl, clamp (slt + branch), lhu LUT
    // (2), lw coeff (2), mul, srai, add, loop overhead (addi + taken
    // branch 3).
    let per_sv_tail = 14;
    let per_sv = features * per_feature + per_sv_tail;
    // Per machine: pointer setup, bias add, sign test, vote update.
    let per_machine = 28;
    let evals = model.total_kernel_evaluations() as u64;
    let machines = model.machines().len() as u64;
    evals * per_sv + machines * per_machine + 180
}

/// Runs Table 1. `quick` shrinks the accuracy study (used by tests).
///
/// # Errors
///
/// Returns [`ChainError`] if the HD chain fails to build or simulate.
pub fn run(quick: bool) -> Result<Table1, ChainError> {
    // 200-D rounds up to 7 words = 224 bits, exactly as the paper's
    // compaction to "seven unsigned integers".
    let params = AccelParams {
        n_words: 7,
        ..AccelParams::emg_default()
    };
    let hd = measure_chain(&Platform::cortex_m4(), params)?;

    let acc_cfg = if quick {
        AccuracyConfig::quick()
    } else {
        AccuracyConfig::paper()
    };
    let report = accuracy::run(&acc_cfg);

    // The paper costs the smallest SVM among the subjects ("the number
    // of SVs … is chosen to be 55 as the smallest among the subjects"):
    // train every subject's model and keep the one with the fewest
    // shared support vectors.
    let synth = emg::SynthConfig {
        reps: acc_cfg.reps,
        ..emg::SynthConfig::paper()
    };
    let mut best: Option<(FixedSvm, Vec<f64>)> = None;
    for subject in 0..acc_cfg.subjects {
        let ds = emg::Dataset::generate(&synth, subject, acc_cfg.seed);
        let train_idx = ds.training_trial_indices(acc_cfg.train_frac);
        let windows = crate::experiments::accuracy::hold_windows(
            &ds,
            &train_idx,
            acc_cfg.window,
            acc_cfg.hold_margin,
        );
        let x: Vec<Vec<f64>> = windows
            .iter()
            .step_by(acc_cfg.svm_train_stride)
            .map(emg::Window::features)
            .collect();
        let y: Vec<usize> = windows
            .iter()
            .step_by(acc_cfg.svm_train_stride)
            .map(|w| w.label)
            .collect();
        let clf = svm::SvmClassifier::train(
            &x,
            &y,
            ds.classes(),
            svm::Kernel::Rbf { gamma: 12.0 },
            svm::SmoParams::default(),
        );
        let fixed = FixedSvm::quantize(&clf, ds.channels());
        let probe = windows[windows.len() / 2].features();
        if best
            .as_ref()
            .is_none_or(|(b, _)| fixed.support_vectors().len() < b.support_vectors().len())
        {
            best = Some((fixed, probe));
        }
    }
    let (fixed, probe_f) = best.expect("at least one subject");

    // Execute the SVM on the simulated M4 with a representative window's
    // features (timing varies by at most a few cycles with the input via
    // the LUT-clamp and vote branches).
    let mut svm_chain = crate::svm_kernel::SvmChain::new(&fixed)?;
    let probe: Vec<u16> = probe_f
        .iter()
        .map(|&f| (f * f64::from(u16::MAX)) as u16)
        .collect();
    let svm_run = svm_chain.classify(&probe)?;
    debug_assert!(
        svm_m4_cycles(&fixed).abs_diff(svm_run.cycles) < svm_run.cycles,
        "cost model and measurement should agree within 2x"
    );

    Ok(Table1 {
        hd,
        svm_cycles: svm_run.cycles,
        svm_kernel_evals: fixed.total_kernel_evaluations(),
        hd_accuracy: report.mean_hd_200d(),
        svm_accuracy: report.mean_svm(),
    })
}

impl Table1 {
    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let rows = vec![
            vec![
                "HD COMPUTING".into(),
                format!("{:.2}k", self.hd.total as f64 / 1000.0),
                "12.35k".into(),
                percent(self.hd_accuracy),
                "90.7%".into(),
            ],
            vec![
                "SVM".into(),
                format!("{:.2}k", self.svm_cycles as f64 / 1000.0),
                "25.10k".into(),
                percent(self.svm_accuracy),
                "89.6%".into(),
            ],
        ];
        let mut out = render_table(
            "Table 1 — HD (200-D ≙ 224-bit) vs SVM on ARM Cortex M4 (10 ms latency)",
            &["kernel", "cycles", "(paper)", "accuracy", "(paper)"],
            &rows,
        );
        out.push_str(&format!(
            "\nSVM/HD cycle ratio: {:.2}x (paper 2.03x); SVM kernel evaluations: {} (paper ~550)\n",
            self.svm_cycles as f64 / self.hd.total as f64,
            self.svm_kernel_evals
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let t = run(true).unwrap();
        // HD at 224-D is an order of magnitude cheaper than at 10,016-D
        // and cheaper than the SVM (paper: 2×; our synthetic task yields
        // a sparser SVM, so the measured gap is smaller — see
        // EXPERIMENTS.md).
        assert!(t.hd.total < 40_000, "HD cycles {}", t.hd.total);
        assert!(
            t.svm_cycles > t.hd.total,
            "SVM {} should cost more than HD {}",
            t.svm_cycles,
            t.hd.total
        );
        assert!(t.hd_accuracy > 0.8);
        let text = t.render();
        assert!(text.contains("HD COMPUTING") && text.contains("SVM"));
    }
}
