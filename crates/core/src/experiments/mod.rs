//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each submodule exposes a `run()` returning typed rows that pair the
//! paper's published value with our measured value, plus a `render()`
//! producing the aligned text table the bench binaries print. The
//! mapping from experiment to paper artifact is indexed in `DESIGN.md`
//! §4; measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.
//!
//! Cycle measurements execute the real kernels on the simulated cluster;
//! accuracy measurements run the golden-model classifier over the
//! synthetic EMG workload.

pub mod ablation;
pub mod accuracy;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod robustness;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::backend::{AccelBackend, CycleBreakdown, ExecutionBackend, HdModel};
use crate::layout::AccelParams;
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// The paper's detection-latency budget per classification.
pub const LATENCY_MS: f64 = 10.0;

/// Per-kernel cycle counts of one chain execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRun {
    /// MAP + spatial + temporal encoders.
    pub map_encode: u64,
    /// Associative-memory search.
    pub am: u64,
    /// End-to-end total.
    pub total: u64,
}

impl From<CycleBreakdown> for CycleRun {
    fn from(cycles: CycleBreakdown) -> Self {
        Self {
            map_encode: cycles.map_encode,
            am: cycles.am,
            total: cycles.total,
        }
    }
}

/// Measures the chain's cycle counts on `platform`, through the
/// [`AccelBackend`] (the cycle-measuring execution backend).
///
/// Kernel timing is data-independent (no data-dependent branches in the
/// generated code), so a seeded random model and a fixed input window
/// are sufficient — a property asserted by the tests below.
///
/// # Errors
///
/// Returns [`ChainError`] if the chain cannot be built or simulated.
pub fn measure_chain(platform: &Platform, params: AccelParams) -> Result<CycleRun, ChainError> {
    let model = HdModel::random(&params, 0x00C1_C1E5);
    let mut session = AccelBackend::new(platform.clone())
        .prepare(&model)
        .map_err(ChainError::from)?;
    let window: Vec<Vec<u16>> = (0..params.ngram)
        .map(|t| {
            (0..params.channels)
                .map(|c| ((t * 131 + c * 7919) % 65_536) as u16)
                .collect()
        })
        .collect();
    let verdict = session.classify(&window).map_err(ChainError::from)?;
    let cycles = verdict.cycles.expect("accelerated backend reports cycles");
    Ok(CycleRun::from(cycles))
}

/// Frequency in MHz required to finish `cycles` within the 10 ms budget.
#[must_use]
pub fn required_mhz(cycles: u64) -> f64 {
    pulp_sim::power::frequency_for_latency_mhz(cycles, LATENCY_MS)
}

/// Whether `cycles` fits the 10 ms budget at the platform's maximum
/// clock.
#[must_use]
pub fn meets_latency(platform: &Platform, cycles: u64) -> bool {
    required_mhz(cycles) <= platform.fmax_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_cycles_are_data_independent() {
        // Two different models / inputs must produce identical timing —
        // the property `measure_chain` relies on.
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let platform = Platform::pulpv3(2);
        let mut totals = Vec::new();
        for seed in [1u64, 2] {
            let model = HdModel::random(&params, seed);
            let mut session = AccelBackend::new(platform.clone()).prepare(&model).unwrap();
            let window = vec![vec![(seed * 1000) as u16, 40_000, 7, 65_000]];
            let verdict = session.classify(&window).unwrap();
            totals.push(verdict.cycles.expect("accel reports cycles").total);
        }
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn latency_helpers() {
        assert!((required_mhz(533_000) - 53.3).abs() < 1e-9);
        assert!(meets_latency(&Platform::cortex_m4(), 439_000));
        assert!(!meets_latency(&Platform::cortex_m4(), 5_000_000));
    }
}
