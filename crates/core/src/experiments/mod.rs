//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each submodule exposes a `run()` returning typed rows that pair the
//! paper's published value with our measured value, plus a `render()`
//! producing the aligned text table the bench binaries print. The
//! mapping from experiment to paper artifact is indexed in `DESIGN.md`
//! §4; measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.
//!
//! Cycle measurements execute the real kernels on the simulated cluster;
//! accuracy measurements run the golden-model classifier over the
//! synthetic EMG workload.

pub mod ablation;
pub mod accuracy;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod report;
pub mod robustness;
pub mod table1;
pub mod table2;
pub mod table3;

use hdc::rng::derive_seed;
use hdc::{BinaryHv, ContinuousItemMemory, ItemMemory};

use crate::layout::AccelParams;
use crate::pipeline::{AccelChain, ChainError, ChainRun};
use crate::platform::Platform;

/// The paper's detection-latency budget per classification.
pub const LATENCY_MS: f64 = 10.0;

/// Per-kernel cycle counts of one chain execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleRun {
    /// MAP + spatial + temporal encoders.
    pub map_encode: u64,
    /// Associative-memory search.
    pub am: u64,
    /// End-to-end total.
    pub total: u64,
}

impl From<&ChainRun> for CycleRun {
    fn from(run: &ChainRun) -> Self {
        Self {
            map_encode: run.cycles_map_encode,
            am: run.cycles_am,
            total: run.cycles_total,
        }
    }
}

/// Measures the chain's cycle counts on `platform`.
///
/// Kernel timing is data-independent (no data-dependent branches in the
/// generated code), so a seeded random model and a fixed input window
/// are sufficient — a property asserted by the tests below.
///
/// # Errors
///
/// Returns [`ChainError`] if the chain cannot be built or simulated.
pub fn measure_chain(platform: &Platform, params: AccelParams) -> Result<CycleRun, ChainError> {
    let seed = 0x00C1_C1E5u64;
    let cim = ContinuousItemMemory::new(params.levels, params.n_words, derive_seed(seed, 1));
    let im = ItemMemory::new(params.channels, params.n_words, derive_seed(seed, 2));
    let prototypes: Vec<BinaryHv> = (0..params.classes)
        .map(|k| BinaryHv::random(params.n_words, derive_seed(seed, 100 + k as u64)))
        .collect();
    let mut chain = AccelChain::new(platform, params)?;
    chain.load_model(&cim, &im, &prototypes)?;
    let window: Vec<Vec<u16>> = (0..params.ngram)
        .map(|t| {
            (0..params.channels)
                .map(|c| ((t * 131 + c * 7919) % 65_536) as u16)
                .collect()
        })
        .collect();
    let run = chain.classify(&window)?;
    Ok(CycleRun::from(&run))
}

/// Frequency in MHz required to finish `cycles` within the 10 ms budget.
#[must_use]
pub fn required_mhz(cycles: u64) -> f64 {
    pulp_sim::power::frequency_for_latency_mhz(cycles, LATENCY_MS)
}

/// Whether `cycles` fits the 10 ms budget at the platform's maximum
/// clock.
#[must_use]
pub fn meets_latency(platform: &Platform, cycles: u64) -> bool {
    required_mhz(cycles) <= platform.fmax_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_cycles_are_data_independent() {
        // Two different models / inputs must produce identical timing —
        // the property `measure_chain` relies on.
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let platform = Platform::pulpv3(2);
        let mut totals = Vec::new();
        for seed in [1u64, 2] {
            let cim =
                ContinuousItemMemory::new(params.levels, params.n_words, derive_seed(seed, 1));
            let im = ItemMemory::new(params.channels, params.n_words, derive_seed(seed, 2));
            let protos: Vec<BinaryHv> = (0..params.classes)
                .map(|k| BinaryHv::random(params.n_words, derive_seed(seed, 50 + k as u64)))
                .collect();
            let mut chain = AccelChain::new(&platform, params).unwrap();
            chain.load_model(&cim, &im, &protos).unwrap();
            let window = vec![vec![(seed * 1000) as u16, 40_000, 7, 65_000]];
            totals.push(chain.classify(&window).unwrap().cycles_total);
        }
        assert_eq!(totals[0], totals[1]);
    }

    #[test]
    fn latency_helpers() {
        assert!((required_mhz(533_000) - 53.3).abs() < 1e-9);
        assert!(meets_latency(&Platform::cortex_m4(), 439_000));
        assert!(!meets_latency(&Platform::cortex_m4(), 5_000_000));
    }
}
