//! **Table 3** — accelerated HD computing on PULPv3 versus Wolf:
//! per-kernel cycles, load split, and speed-ups relative to the
//! single-core PULPv3 (10,000-D, N = 1, 4 channels, built-ins on Wolf).

use crate::experiments::report::{kcycles, render_table, speedup};
use crate::experiments::{measure_chain, CycleRun};
use crate::layout::AccelParams;
use crate::pipeline::ChainError;
use crate::platform::Platform;

/// Paper-published cycle counts (kcycles) for one platform column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCycles {
    /// MAP+ENCODERS kcycles.
    pub map_encode_k: f64,
    /// AM kcycles.
    pub am_k: f64,
    /// Total kcycles.
    pub total_k: f64,
}

/// One platform column of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Column {
    /// Platform display name.
    pub name: String,
    /// Measured cycles.
    pub measured: CycleRun,
    /// Paper values.
    pub paper: PaperCycles,
}

impl Table3Column {
    /// Measured total speed-up relative to `baseline` (PULPv3 1 core).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &CycleRun) -> f64 {
        baseline.total as f64 / self.measured.total as f64
    }

    /// Paper total speed-up relative to the paper baseline (533 k).
    #[must_use]
    pub fn paper_speedup(&self) -> f64 {
        533.0 / self.paper.total_k
    }

    /// Measured MAP+ENCODERS share of the total.
    #[must_use]
    pub fn map_encode_share(&self) -> f64 {
        self.measured.map_encode as f64 / self.measured.total as f64
    }
}

/// The regenerated Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One column per platform configuration, in paper order.
    pub columns: Vec<Table3Column>,
}

/// Runs the five platform configurations of Table 3.
///
/// # Errors
///
/// Returns [`ChainError`] if any chain fails to build or simulate.
pub fn run() -> Result<Table3, ChainError> {
    let params = AccelParams::emg_default();
    let configs: [(Platform, PaperCycles); 5] = [
        (
            Platform::pulpv3(1),
            PaperCycles {
                map_encode_k: 492.0,
                am_k: 41.0,
                total_k: 533.0,
            },
        ),
        (
            Platform::pulpv3(4),
            PaperCycles {
                map_encode_k: 129.0,
                am_k: 14.0,
                total_k: 143.0,
            },
        ),
        (
            Platform::wolf_plain(1),
            PaperCycles {
                map_encode_k: 401.0,
                am_k: 33.0,
                total_k: 434.0,
            },
        ),
        (
            Platform::wolf_builtin(1),
            PaperCycles {
                map_encode_k: 176.0,
                am_k: 12.0,
                total_k: 188.0,
            },
        ),
        (
            Platform::wolf_builtin(8),
            PaperCycles {
                map_encode_k: 25.0,
                am_k: 4.0,
                total_k: 29.0,
            },
        ),
    ];
    let mut columns = Vec::with_capacity(configs.len());
    for (platform, paper) in configs {
        let measured = measure_chain(&platform, params)?;
        columns.push(Table3Column {
            name: platform.name.clone(),
            measured,
            paper,
        });
    }
    Ok(Table3 { columns })
}

impl Table3 {
    /// Renders the table with measured and paper values side by side.
    #[must_use]
    pub fn render(&self) -> String {
        let baseline = self.columns[0].measured;
        let rows: Vec<Vec<String>> = self
            .columns
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    kcycles(c.measured.map_encode),
                    format!("{:.0}k", c.paper.map_encode_k),
                    kcycles(c.measured.am),
                    format!("{:.0}k", c.paper.am_k),
                    kcycles(c.measured.total),
                    format!("{:.0}k", c.paper.total_k),
                    speedup(c.speedup_vs(&baseline)),
                    speedup(c.paper_speedup()),
                ]
            })
            .collect();
        render_table(
            "Table 3 — HD computing on PULPv3 vs Wolf (10,000-D, N=1, 4 channels; sp vs PULPv3 1 core)",
            &[
                "platform",
                "map+enc",
                "(paper)",
                "am",
                "(paper)",
                "total",
                "(paper)",
                "sp",
                "(paper)",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-dimension smoke version used in `cargo test` (the full
    /// 313-word run is exercised by the bench binary and by
    /// `tests/experiments.rs`).
    #[test]
    fn speedup_shapes_hold_at_reduced_dimension() {
        let params = AccelParams {
            n_words: 64,
            ..AccelParams::emg_default()
        };
        let base = measure_chain(&Platform::pulpv3(1), params).unwrap();
        let quad = measure_chain(&Platform::pulpv3(4), params).unwrap();
        let wolf = measure_chain(&Platform::wolf_plain(1), params).unwrap();
        let wolf_bi = measure_chain(&Platform::wolf_builtin(1), params).unwrap();
        let wolf8 = measure_chain(&Platform::wolf_builtin(8), params).unwrap();

        let sp = |c: &CycleRun| base.total as f64 / c.total as f64;
        assert!((3.2..4.05).contains(&sp(&quad)), "4-core {}", sp(&quad));
        assert!((1.1..1.45).contains(&sp(&wolf)), "wolf plain {}", sp(&wolf));
        assert!(
            (2.1..3.1).contains(&sp(&wolf_bi)),
            "wolf builtin {}",
            sp(&wolf_bi)
        );
        assert!((12.0..21.0).contains(&sp(&wolf8)), "wolf 8c {}", sp(&wolf8));
        // MAP+ENCODERS dominates on one core, AM saturates on many.
        assert!(base.map_encode * 10 > base.total * 8);
    }

    #[test]
    fn render_contains_all_columns() {
        // Use a tiny dimension through the private path: rendering only.
        let col = Table3Column {
            name: "X".into(),
            measured: CycleRun {
                map_encode: 1000,
                am: 100,
                total: 1100,
            },
            paper: PaperCycles {
                map_encode_k: 1.0,
                am_k: 0.1,
                total_k: 1.1,
            },
        };
        let t = Table3 { columns: vec![col] };
        let text = t.render();
        assert!(text.contains("Table 3"));
        assert!(text.contains("1.00x"));
    }
}
