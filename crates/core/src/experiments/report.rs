//! Minimal aligned-column table rendering for experiment output.

/// Renders an aligned text table with a title, header row, and rows.
///
/// # Examples
///
/// ```
/// use pulp_hd_core::experiments::report::render_table;
///
/// let out = render_table(
///     "Demo",
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(out.contains("Demo"));
/// assert!(out.contains("bb"));
/// ```
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 3 * (cols - 1);
    out.push_str(&"=".repeat(rule.min(120)));
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("   ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(rule.min(120)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats cycles as `xxx.x k`.
#[must_use]
pub fn kcycles(cycles: u64) -> String {
    format!("{:.2}k", cycles as f64 / 1000.0)
}

/// Formats a speed-up factor.
#[must_use]
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage.
#[must_use]
pub fn percent(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let out = render_table("T", &["a", "long_header"], &[vec!["x".into(), "1".into()]]);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[2].contains("long_header"));
        // Data right-aligns under headers.
        assert!(lines[4].ends_with('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(kcycles(533_000), "533.00k");
        assert_eq!(speedup(3.728), "3.73x");
        assert_eq!(percent(0.924), "92.4%");
    }
}
