//! Multi-session sharding: fan one serving (or training) workload out
//! across N inner sessions of any [`ExecutionBackend`].
//!
//! The paper's core result is near-perfect parallel efficiency *inside*
//! one PULP cluster; this module is the multi-cluster story the single
//! cluster cannot tell. A [`ShardedBackend`] wraps any inner backend,
//! [`prepare`](ExecutionBackend::prepare)s N inner sessions, and exposes
//! them behind a single [`BackendSession`] — so the serving front-end
//! (`pulp-hd-serve`) and every other `Box<dyn BackendSession>` consumer
//! scale across sessions without changing a line.
//!
//! Two strategies, selected by [`ShardSpec`]:
//!
//! * **Batch-sharding** ([`ShardSpec::Batch`]) — for throughput. Every
//!   shard holds the full model; `classify_batch` splits the batch into
//!   contiguous chunks, shard 0 runs on the calling thread, shards
//!   1..N run on their own long-lived threads, and the chunk verdicts
//!   are spliced back in order. Tiny batches skip the fan-out entirely
//!   (same [`MIN_WINDOWS_PER_WORKER`] cutover as the fast backend), so
//!   the sharded session never loses to its own primary shard.
//! * **Class-sharding** ([`ShardSpec::Class`]) — for large-AM latency.
//!   The associative memory is partitioned by class into contiguous
//!   slices; every shard encodes the same window (the encode chain is
//!   identical, so any shard's query is *the* query) and scans only its
//!   slice; the merge step concatenates the per-shard `distances` in
//!   class order and takes the global minimum. Min over Hamming
//!   distances is a commutative reduction, so the merged verdict is
//!   **bit-identical** to the unsharded scan — including first-minimum
//!   tie order, because shard-local winners are compared in ascending
//!   shard (= class) order with strict `<`. This holds even when the
//!   inner backend scans with [`ScanPolicy::Pruned`](super::ScanPolicy):
//!   each shard's *winning* distance is exact, so the cross-shard min is
//!   taken over exact values (non-winning entries keep the documented
//!   lower-bound semantics). Merged verdicts report no cycle counts.
//!
//! **Training** ([`TrainableBackend`], fast inner backend) always
//! shards over *examples*, whichever spec was chosen: each shard owns a
//! private training session accumulating [`CounterBundler`] partials,
//! and every `train_batch` ends by draining the shard partials into
//! shard 0 via the commutative [`CounterBundler::merge`] — so the
//! reduced counters, and therefore the trained prototypes, are
//! bit-identical to sequential golden training by construction, and
//! `examples` / `update_online` / `finalize` simply read shard 0.
//!
//! **Pool sizing:** inner pools multiply — N batch shards of a
//! `FastBackend` with T threads want `N × T` CPUs. The
//! [`ShardedBackend::fast`] constructor does the division
//! (`threads = max(1, available_parallelism / shards)` per shard) so the
//! product never oversubscribes; with [`ShardedBackend::new`] the inner
//! descriptor is taken as given (its own `available_parallelism` clamp
//! still applies per shard, but not to the product).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use hdc::hv64::CounterBundler;

use super::fast::{FastBackend, FastTrainingSession, MIN_WINDOWS_PER_WORKER};
use super::pool::{
    contain, fan_out_for, ChunkResult, RawLabels, RawWindows, ResultDrain, WorkerPool,
};
use super::{
    BackendError, BackendSession, ExecutionBackend, HdModel, TrainSpec, TrainableBackend,
    TrainingSession, Verdict, VerdictSource,
};

/// How a [`ShardedBackend`] splits work across its inner sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardSpec {
    /// `Batch(n)`: n full-model sessions; each batch is split into
    /// contiguous chunks, one per participating shard. Scales
    /// *throughput* with the batch size.
    Batch(usize),
    /// `Class(n)`: the associative memory is partitioned by class into
    /// n contiguous slices (capped at one class per shard); every shard
    /// scans its slice of every window and the verdicts are merged.
    /// Scales the *per-window scan* with the class count.
    Class(usize),
}

impl ShardSpec {
    /// The requested shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        match *self {
            Self::Batch(n) | Self::Class(n) => n,
        }
    }
}

/// A generic N-session wrapper around any inner [`ExecutionBackend`]
/// (see the [module docs](self) for the two sharding strategies and
/// their merge semantics).
#[derive(Debug, Clone, Copy)]
pub struct ShardedBackend<B> {
    inner: B,
    spec: ShardSpec,
}

impl<B: ExecutionBackend> ShardedBackend<B> {
    /// Wraps `inner`, to be instantiated once per shard.
    ///
    /// The inner descriptor is used as given — when it owns a thread
    /// pool, size it against `available_parallelism / shards` (or use
    /// [`ShardedBackend::fast`], which does that for you).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Config`] if `spec` requests zero shards.
    pub fn new(inner: B, spec: ShardSpec) -> Result<Self, BackendError> {
        if spec.shards() == 0 {
            return Err(BackendError::Config(
                "sharded backend needs at least one shard".into(),
            ));
        }
        Ok(Self { inner, spec })
    }

    /// The inner per-shard backend descriptor.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The sharding strategy.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// [`prepare`](ExecutionBackend::prepare), returning the concrete
    /// session type — use this when you need the [`ShardMonitor`]
    /// (per-shard traffic counters) before handing the session off.
    ///
    /// # Errors
    ///
    /// As [`prepare`](ExecutionBackend::prepare).
    pub fn prepare_sharded(&self, model: &HdModel) -> Result<ShardedSession, BackendError> {
        match self.spec {
            ShardSpec::Batch(shards) => {
                // Every shard serves the full model; work splits by
                // batch chunk.
                let mut sessions: Vec<Option<Box<dyn BackendSession>>> = (0..shards)
                    .map(|_| self.inner.prepare(model).map(Some))
                    .collect::<Result<_, _>>()?;
                // INFALLIBLE: the collect above filled every slot with
                // `Some`, and nothing has taken slot 0 yet.
                let primary = sessions[0].take().expect("shard 0 prepared above");
                Ok(ShardedSession {
                    primary,
                    pool: spawn_shard_pool(&mut sessions),
                    offsets: Vec::new(),
                    monitor: ShardMonitor::new(shards),
                })
            }
            ShardSpec::Class(shards) => {
                // One slice of the AM per shard, contiguous in class
                // order; an `HdModel` needs ≥ 1 prototype, so the
                // effective shard count caps at the class count.
                let classes = model.classes();
                let shards = shards.min(classes);
                let chunk = classes.div_ceil(shards);
                // Ceiling chunks can cover every class with fewer
                // shards than requested (5 classes / 4 shards → chunks
                // of 2 → 3 shards); drop the shards that would get an
                // empty slice.
                let shards = classes.div_ceil(chunk);
                let mut offsets = Vec::with_capacity(shards);
                let mut sessions: Vec<Option<Box<dyn BackendSession>>> = Vec::with_capacity(shards);
                for s in 0..shards {
                    let range = s * chunk..((s + 1) * chunk).min(classes);
                    let slice = HdModel::new(
                        model.cim().clone(),
                        model.im().clone(),
                        model.prototypes()[range.clone()].to_vec(),
                        model.ngram(),
                    )?;
                    offsets.push(range.start);
                    sessions.push(Some(self.inner.prepare(&slice)?));
                }
                // INFALLIBLE: the loop above pushed `Some` for every
                // shard, and nothing has taken slot 0 yet.
                let primary = sessions[0].take().expect("shard 0 prepared above");
                Ok(ShardedSession {
                    primary,
                    pool: spawn_shard_pool(&mut sessions),
                    offsets,
                    monitor: ShardMonitor::new(shards),
                })
            }
        }
    }
}

impl ShardedBackend<FastBackend> {
    /// A sharded fast backend with the oversubscription math done:
    /// each shard's session gets
    /// `max(1, available_parallelism / shards)` threads, so
    /// `shards × threads-per-shard` never exceeds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Config`] if `spec` requests zero shards.
    pub fn fast(spec: ShardSpec) -> Result<Self, BackendError> {
        let shards = spec.shards();
        if shards == 0 {
            return Err(BackendError::Config(
                "sharded backend needs at least one shard".into(),
            ));
        }
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::new(FastBackend::with_threads((cpus / shards).max(1)), spec)
    }
}

impl<B: ExecutionBackend> ExecutionBackend for ShardedBackend<B> {
    fn name(&self) -> &'static str {
        match self.spec {
            ShardSpec::Batch(_) => "sharded-batch",
            ShardSpec::Class(_) => "sharded-class",
        }
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        Ok(Box::new(self.prepare_sharded(model)?))
    }
}

/// Clonable per-shard telemetry of a [`ShardedSession`]: how many
/// windows each shard has served, and which shards are still healthy.
/// The serving layer snapshots these into its stats
/// (`ServerStats::shard_windows` / `ServerStats::shard_healthy` in
/// `pulp-hd-serve`) for per-shard visibility without touching the
/// session.
#[derive(Debug, Clone)]
pub struct ShardMonitor {
    windows: Arc<[AtomicU64]>,
    healthy: Arc<[AtomicBool]>,
}

impl ShardMonitor {
    fn new(shards: usize) -> Self {
        Self {
            windows: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            healthy: (0..shards).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// Number of shards observed.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.windows.len()
    }

    /// Per-shard health, indexed by shard. A shard goes unhealthy when
    /// its worker panicked (the panic was contained and surfaced as a
    /// typed error): under batch-sharding the session keeps serving with
    /// the survivors; under class-sharding every later call reports
    /// [`BackendError::ShardLost`]. Health never recovers — a lost
    /// shard's session state is suspect for good.
    #[must_use]
    pub fn healthy(&self) -> Vec<bool> {
        self.healthy
            .iter()
            .map(|h| h.load(Ordering::Acquire))
            .collect()
    }

    /// How many shards are still healthy.
    #[must_use]
    pub fn healthy_shards(&self) -> usize {
        self.healthy
            .iter()
            .filter(|h| h.load(Ordering::Acquire))
            .count()
    }

    fn is_healthy(&self, shard: usize) -> bool {
        self.healthy[shard].load(Ordering::Acquire)
    }

    fn mark_lost(&self, shard: usize) {
        // ORDERING: Release, paired with the Acquire loads above. This
        // used to be Relaxed on both sides, which let a monitor reader
        // (e.g. a serving thread deciding whether to route to this
        // shard) observe `healthy == false` without also observing the
        // dispatcher's earlier bookkeeping for the loss — the marker is
        // only flipped after the failed chunk's result has been
        // recorded, and readers may rely on that ordering.
        self.healthy[shard].store(false, Ordering::Release);
    }

    /// Snapshot of the windows served per shard, indexed by shard.
    /// Under batch-sharding the entries sum to the total windows served
    /// (shard 0 also absorbs every batch too small to fan out); under
    /// class-sharding every shard sees every window, so each entry
    /// equals the total.
    #[must_use]
    pub fn windows(&self) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    fn add(&self, shard: usize, n: u64) {
        // ORDERING: Relaxed — per-shard window counts are telemetry
        // read by stats snapshots; routing uses `healthy`, not these.
        self.windows[shard].fetch_add(n, Ordering::Relaxed);
    }
}

/// One unit of sharded work: a chunk of the batch (batch-sharding) or
/// the whole batch (class-sharding), classified on the shard worker's
/// own session.
struct ShardJob {
    windows: RawWindows,
    range: Range<usize>,
    /// Reassembly index: the batch chunk position under batch-sharding
    /// (the dispatcher remembers which shard served it), the shard index
    /// under class-sharding (every shard scans the whole batch).
    chunk: usize,
    done: Sender<ChunkResult>,
}

/// Spawns one long-lived thread per shard session in `sessions[1..]`
/// (shard 0 stays with the dispatcher as the inline primary).
///
/// Workers run each job with its panics contained: a panic in the inner
/// session comes back as [`BackendError::WorkerLost`], and the
/// dispatcher then marks the shard lost (its session state is suspect)
/// instead of the whole process unwinding.
fn spawn_shard_pool(sessions: &mut [Option<Box<dyn BackendSession>>]) -> WorkerPool<ShardJob> {
    WorkerPool::spawn(sessions.len() - 1, |idx| {
        let mut session = sessions[idx + 1]
            .take()
            // INFALLIBLE: WorkerPool::spawn calls this closure once per
            // index, and only slot 0 (the primary) was taken earlier.
            .expect("each shard session moves to exactly one worker");
        move |job: ShardJob| {
            let ShardJob {
                windows,
                range,
                chunk,
                done,
            } = job;
            let result = contain(|| {
                // SAFETY: see `RawWindows` — the dispatcher's
                // `ResultDrain` keeps the batch borrowed until our
                // `done` lands.
                let windows = unsafe { windows.slice() };
                session.classify_batch(&windows[range.clone()])
            })
            .unwrap_or_else(|panic| Err(BackendError::WorkerLost { chunk, panic }));
            let _ = done.send((chunk, result));
        }
    })
}

/// N inner sessions behind one [`BackendSession`] (see the [module
/// docs](self)).
pub struct ShardedSession {
    /// Shard 0, worked by the calling thread.
    primary: Box<dyn BackendSession>,
    /// Shards 1..N, each owned by a long-lived thread.
    pool: WorkerPool<ShardJob>,
    /// Class-sharding: first global class of each shard's AM slice.
    /// Empty under batch-sharding (the strategy discriminant).
    offsets: Vec<usize>,
    monitor: ShardMonitor,
}

impl std::fmt::Debug for ShardedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSession")
            .field("shards", &(self.pool.workers() + 1))
            .field("class_sharded", &!self.offsets.is_empty())
            .finish_non_exhaustive()
    }
}

impl ShardedSession {
    /// Total shard count (primary + pooled).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.pool.workers() + 1
    }

    /// A clonable handle onto this session's per-shard traffic
    /// counters.
    #[must_use]
    pub fn monitor(&self) -> ShardMonitor {
        self.monitor.clone()
    }

    /// Batch-sharding: contiguous chunks across the *surviving* shards,
    /// calling thread working chunk 0, verdicts spliced back in chunk
    /// order (chunk-order error precedence, like the fast backend).
    ///
    /// Degraded mode: a shard whose worker panicked is marked lost in
    /// the [`ShardMonitor`] — the batch it was serving fails with the
    /// typed [`BackendError::WorkerLost`] (and rolls back), and every
    /// subsequent batch reroutes across the survivors, all the way down
    /// to the primary serving everything alone.
    fn batch_sharded_into(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        // Pooled shards still routable (shard 0 is the calling thread
        // and cannot be lost).
        let alive: Vec<usize> = (1..=self.pool.workers())
            .filter(|&s| self.monitor.is_healthy(s))
            .collect();
        let fan_out = (alive.len() + 1)
            .min(windows.len() / MIN_WINDOWS_PER_WORKER)
            .max(1);
        if fan_out <= 1 {
            self.primary.classify_batch_into(windows, out)?;
            self.monitor.add(0, windows.len() as u64);
            return Ok(());
        }
        let chunk = windows.len().div_ceil(fan_out);
        let n_chunks = windows.len().div_ceil(chunk);
        let (done_tx, done_rx) = channel();
        let mut drain = ResultDrain {
            rx: &done_rx,
            tx: Some(done_tx),
            outstanding: 0,
        };
        // Which shard serves each chunk (chunk 0 → primary); chunks
        // whose worker thread is gone entirely fall back to the primary.
        let mut chunk_shard = vec![0usize; n_chunks];
        let mut orphaned: Vec<(usize, Range<usize>)> = Vec::new();
        for idx in 1..n_chunks {
            let range = idx * chunk..((idx + 1) * chunk).min(windows.len());
            let shard = alive[idx - 1];
            let done = drain
                .tx
                .as_ref()
                // INFALLIBLE: `tx` is only taken by `ResultDrain::drop`
                // after dispatch returns, so it is `Some` for the whole
                // dispatch body.
                .expect("dispatcher sender lives through dispatch")
                .clone();
            let job = ShardJob {
                windows: RawWindows::of(windows),
                range: range.clone(),
                chunk: idx,
                done,
            };
            if self.pool.senders[shard - 1].send(job).is_err() {
                self.monitor.mark_lost(shard);
                orphaned.push((idx, range));
            } else {
                chunk_shard[idx] = shard;
                drain.outstanding += 1;
            }
        }
        drain.tx = None;
        // Shard 0 works chunk 0 straight into the output buffer
        // (rollback on error is the caller's truncate).
        let first_error = self
            .primary
            .classify_batch_into(&windows[..chunk], out)
            .err();
        let mut parts: Vec<Option<Result<Vec<Verdict>, BackendError>>> =
            (1..n_chunks).map(|_| None).collect();
        for (idx, range) in orphaned {
            parts[idx - 1] = Some(self.primary.classify_batch(&windows[range]));
        }
        while drain.outstanding > 0 {
            // A recv error means a shard worker died without reporting
            // (all senders gone, so no worker still sees the batch).
            let Ok((idx, result)) = drain.rx.recv() else {
                drain.outstanding = 0;
                break;
            };
            drain.outstanding -= 1;
            parts[idx - 1] = Some(result);
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        self.monitor.add(0, chunk as u64);
        let mut failure: Option<BackendError> = None;
        for (i, part) in parts.into_iter().enumerate() {
            let idx = i + 1;
            let result = part.unwrap_or_else(|| {
                Err(BackendError::WorkerLost {
                    chunk: idx,
                    panic: "shard worker terminated before reporting".into(),
                })
            });
            match result {
                Ok(verdicts) => {
                    if failure.is_none() {
                        self.monitor.add(chunk_shard[idx], verdicts.len() as u64);
                        out.extend(verdicts);
                    }
                }
                Err(e) => {
                    // A contained panic poisons the shard's session:
                    // stop routing to it (plain per-window errors leave
                    // it healthy).
                    if matches!(e, BackendError::WorkerLost { .. }) {
                        self.monitor.mark_lost(chunk_shard[idx]);
                    }
                    failure = failure.or(Some(e));
                }
            }
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Class-sharding: every shard scans its AM slice over the whole
    /// batch; per window, distances are concatenated in class order and
    /// the verdict is the shard-local winner with the smallest *exact*
    /// winning distance, first shard winning ties — which reproduces
    /// the unsharded first-minimum argmin exactly (see the [module
    /// docs](self) for why this also holds under the pruned scan).
    fn class_sharded_into(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        if windows.is_empty() {
            return Ok(());
        }
        let shards = self.shards();
        // A lost class shard is permanent: its slice of the associative
        // memory is gone, and serving without it would silently drop
        // classes — so the session reports the loss instead.
        if let Some(shard) = (0..shards).find(|&s| !self.monitor.is_healthy(s)) {
            return Err(BackendError::ShardLost {
                shard,
                panic: "shard lost by an earlier panic".into(),
            });
        }
        let (done_tx, done_rx) = channel();
        let mut drain = ResultDrain {
            rx: &done_rx,
            tx: Some(done_tx),
            outstanding: 0,
        };
        for shard in 1..shards {
            let done = drain
                .tx
                .as_ref()
                // INFALLIBLE: `tx` is only taken by `ResultDrain::drop`
                // after dispatch returns, so it is `Some` for the whole
                // dispatch body.
                .expect("dispatcher sender lives through dispatch")
                .clone();
            let job = ShardJob {
                windows: RawWindows::of(windows),
                range: 0..windows.len(),
                chunk: shard,
                done,
            };
            if self.pool.senders[shard - 1].send(job).is_err() {
                // Early return is safe mid-dispatch: `drain` blocks in
                // its drop until the already-sent jobs report.
                self.monitor.mark_lost(shard);
                return Err(BackendError::ShardLost {
                    shard,
                    panic: "shard worker terminated".into(),
                });
            }
            drain.outstanding += 1;
        }
        drain.tx = None;
        let first = self.primary.classify_batch(windows);
        let mut parts: Vec<Option<Result<Vec<Verdict>, BackendError>>> =
            (1..shards).map(|_| None).collect();
        while drain.outstanding > 0 {
            let Ok((shard, result)) = drain.rx.recv() else {
                drain.outstanding = 0;
                break;
            };
            drain.outstanding -= 1;
            parts[shard - 1] = Some(result);
        }
        // Shard-order error precedence (shard 0 = lowest classes first).
        let mut shard_verdicts = Vec::with_capacity(shards);
        shard_verdicts.push(first?.into_iter());
        for (i, part) in parts.into_iter().enumerate() {
            let shard = i + 1;
            let verdicts = match part {
                Some(Ok(v)) => v,
                // A contained panic (or a silent death) loses the shard
                // for good; plain per-window errors leave it healthy.
                Some(Err(BackendError::WorkerLost { panic, .. })) => {
                    self.monitor.mark_lost(shard);
                    return Err(BackendError::ShardLost { shard, panic });
                }
                Some(Err(e)) => return Err(e),
                None => {
                    self.monitor.mark_lost(shard);
                    return Err(BackendError::ShardLost {
                        shard,
                        panic: "shard worker terminated before reporting".into(),
                    });
                }
            };
            shard_verdicts.push(verdicts.into_iter());
        }
        out.reserve(windows.len());
        for _ in 0..windows.len() {
            let mut distances = Vec::new();
            let mut query = None;
            // (exact winning distance, global class) of the best shard
            // so far; strict `<` keeps the first (lowest-class) shard
            // on cross-shard ties, matching first-minimum argmin.
            let mut best: Option<(u32, usize)> = None;
            for (shard, verdicts) in shard_verdicts.iter_mut().enumerate() {
                let v = verdicts
                    .next()
                    // INFALLIBLE: each shard result was length-checked
                    // against the batch before entering this merge.
                    .expect("each shard returns one verdict per window");
                let winner = v.distances[v.class];
                if best.is_none_or(|(d, _)| winner < d) {
                    best = Some((winner, self.offsets[shard] + v.class));
                }
                distances.extend(v.distances);
                if shard == 0 {
                    query = Some(v.query);
                }
            }
            // INFALLIBLE: the loop above visited >= 1 shard, so `best`
            // was set at least once.
            let (_, class) = best.expect("at least one shard");
            out.push(Verdict {
                class,
                distances,
                // INFALLIBLE: shard 0 always exists and sets `query`
                // on its pass through the loop above.
                query: query.expect("shard 0 always reports"),
                cycles: None,
                // The merge is an exact cross-shard arg-min; inner
                // shards of a class-sharded session are exact sessions.
                source: VerdictSource::Scan,
            });
        }
        for shard in 0..shards {
            self.monitor.add(shard, windows.len() as u64);
        }
        Ok(())
    }

    fn classify_batch_impl(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        if self.offsets.is_empty() {
            self.batch_sharded_into(windows, out)
        } else {
            self.class_sharded_into(windows, out)
        }
    }
}

impl BackendSession for ShardedSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        if self.offsets.is_empty() {
            // Batch-sharding: a single window never fans out.
            let verdict = self.primary.classify(window)?;
            self.monitor.add(0, 1);
            Ok(verdict)
        } else {
            // Class-sharding: every shard must scan its slice even for
            // one window.
            let batch = vec![window.to_vec()];
            let mut out = Vec::with_capacity(1);
            self.class_sharded_into(&batch, &mut out)?;
            // INFALLIBLE: `class_sharded_into` pushes exactly one
            // verdict per input window, and one window went in.
            Ok(out.pop().expect("one verdict for one window"))
        }
    }

    fn classify_batch(&mut self, windows: &[Vec<Vec<u16>>]) -> Result<Vec<Verdict>, BackendError> {
        let mut out = Vec::with_capacity(windows.len());
        self.classify_batch_into(windows, &mut out)?;
        Ok(out)
    }

    fn classify_batch_into(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        let start = out.len();
        let result = self.classify_batch_impl(windows, out);
        if result.is_err() {
            // Keep the documented contract: `out` unchanged on error,
            // even when one shard fails mid-batch after others landed.
            out.truncate(start);
        }
        result
    }
}

/// One unit of sharded training work.
enum TrainShardJob {
    /// Accumulate a chunk of the labelled batch on the shard's private
    /// counters.
    Train {
        windows: RawWindows,
        labels: RawLabels,
        range: Range<usize>,
        shard: usize,
        done: Sender<(usize, Result<(), BackendError>)>,
    },
    /// Hand the accumulated per-class counter partials back for the
    /// cross-shard merge, leaving the shard empty.
    Harvest {
        shard: usize,
        done: Sender<(usize, Vec<CounterBundler>)>,
    },
}

/// Training sharded over examples: shard 0 lives on the calling
/// thread, shards 1..N on their own threads, each a full
/// `FastTrainingSession` (with its own adaptively-sized worker pool);
/// after every fanned `train_batch` the shard partials are drained into
/// shard 0 via [`CounterBundler::merge`], so shard 0 always holds the
/// globally reduced counters and single-window ops simply delegate.
struct ShardedTrainingSession {
    primary: FastTrainingSession,
    pool: WorkerPool<TrainShardJob>,
    backend: ShardedBackend<FastBackend>,
}

impl std::fmt::Debug for ShardedTrainingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTrainingSession")
            .field("shards", &(self.pool.workers() + 1))
            .finish_non_exhaustive()
    }
}

impl TrainableBackend for ShardedBackend<FastBackend> {
    /// Starts a sharded training session (see [module docs](self):
    /// training shards over *examples* under either [`ShardSpec`]; the
    /// spec decides how [`into_serving`](TrainingSession::into_serving)
    /// shards the trained model).
    fn begin_training(&self, spec: &TrainSpec) -> Result<Box<dyn TrainingSession>, BackendError> {
        Ok(Box::new(self.begin_training_sharded(spec)?))
    }
}

impl ShardedBackend<FastBackend> {
    /// [`begin_training`](TrainableBackend::begin_training) returning
    /// the concrete session type (the in-module fault tests reach its
    /// shard pool directly).
    fn begin_training_sharded(
        &self,
        spec: &TrainSpec,
    ) -> Result<ShardedTrainingSession, BackendError> {
        let shards = self.spec.shards();
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let participants = self.inner.threads().min(cpus).max(1);
        let mut sessions: Vec<Option<FastTrainingSession>> = (0..shards)
            .map(|_| {
                self.inner
                    .begin_training_with_participants(spec, participants)
                    .map(Some)
            })
            .collect::<Result<_, _>>()?;
        // INFALLIBLE: the collect above filled every slot with `Some`.
        let primary = sessions[0].take().expect("shard 0 built above");
        let pool = WorkerPool::spawn(shards - 1, |idx| {
            let mut session = sessions[idx + 1]
                .take()
                // INFALLIBLE: one spawn call per index; slot 0 was
                // taken as the primary just above.
                .expect("each shard session moves to exactly one worker");
            move |job: TrainShardJob| match job {
                TrainShardJob::Train {
                    windows,
                    labels,
                    range,
                    shard,
                    done,
                } => {
                    let result = contain(|| {
                        // SAFETY: see `RawWindows`/`RawLabels` — the
                        // dispatcher's `ResultDrain` keeps both slices
                        // borrowed until our `done` lands.
                        let windows = unsafe { windows.slice() };
                        // SAFETY: same guard as `windows` above.
                        let labels = unsafe { labels.slice() };
                        session.train_batch(&windows[range.clone()], &labels[range])
                    })
                    .unwrap_or_else(|panic| {
                        // The shard's counters are suspect after an
                        // unwind mid-accumulation; start them over so a
                        // half-counted chunk cannot leak into the merge.
                        session.reset();
                        Err(BackendError::WorkerLost {
                            chunk: shard,
                            panic,
                        })
                    });
                    let _ = done.send((shard, result));
                }
                TrainShardJob::Harvest { shard, done } => {
                    let partials = contain(|| session.take_partials()).unwrap_or_default();
                    let _ = done.send((shard, partials));
                }
            }
        });
        Ok(ShardedTrainingSession {
            primary,
            pool,
            backend: *self,
        })
    }
}

impl ShardedTrainingSession {
    /// Drains every shard's counter partials into shard 0 (the
    /// commutative reduction). Runs after every fanned batch — also on
    /// its error path, so between calls the shard sessions are always
    /// empty and shard 0 alone answers `examples`/`finalize`.
    fn harvest(&mut self) {
        if self.pool.workers() == 0 {
            return;
        }
        let (done_tx, done_rx) = channel();
        let mut drain = ResultDrain {
            rx: &done_rx,
            tx: Some(done_tx),
            outstanding: 0,
        };
        for shard in 1..=self.pool.workers() {
            let done = drain
                .tx
                .as_ref()
                // INFALLIBLE: `tx` is only taken by `ResultDrain::drop`
                // after dispatch returns, so it is `Some` for the whole
                // dispatch body.
                .expect("dispatcher sender lives through dispatch")
                .clone();
            // A dead shard thread has nothing left to harvest (its
            // counters died with it); skip it rather than fail the
            // reduction for the survivors.
            if self.pool.senders[shard - 1]
                .send(TrainShardJob::Harvest { shard, done })
                .is_ok()
            {
                drain.outstanding += 1;
            }
        }
        drain.tx = None;
        while drain.outstanding > 0 {
            let Ok((_, partials)) = drain.rx.recv() else {
                drain.outstanding = 0;
                break;
            };
            drain.outstanding -= 1;
            self.primary.absorb_partials(&partials);
        }
    }
}

impl TrainingSession for ShardedTrainingSession {
    fn train(&mut self, window: &[Vec<u16>], label: usize) -> Result<(), BackendError> {
        self.primary.train(window, label)
    }

    fn train_batch(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        labels: &[usize],
    ) -> Result<(), BackendError> {
        if windows.len() != labels.len() {
            return Err(BackendError::Input(format!(
                "batch of {} windows carries {} labels",
                windows.len(),
                labels.len()
            )));
        }
        let fan_out = fan_out_for(&self.pool, windows.len(), MIN_WINDOWS_PER_WORKER);
        if fan_out <= 1 {
            return self.primary.train_batch(windows, labels);
        }
        let chunk = windows.len().div_ceil(fan_out);
        let n_chunks = windows.len().div_ceil(chunk);
        let (done_tx, done_rx) = channel();
        let mut drain = ResultDrain {
            rx: &done_rx,
            tx: Some(done_tx),
            outstanding: 0,
        };
        let mut orphaned: Vec<Range<usize>> = Vec::new();
        for shard in 1..n_chunks {
            let range = shard * chunk..((shard + 1) * chunk).min(windows.len());
            let done = drain
                .tx
                .as_ref()
                // INFALLIBLE: `tx` is only taken by `ResultDrain::drop`
                // after dispatch returns, so it is `Some` for the whole
                // dispatch body.
                .expect("dispatcher sender lives through dispatch")
                .clone();
            let job = TrainShardJob::Train {
                windows: RawWindows::of(windows),
                labels: RawLabels::of(labels),
                range: range.clone(),
                shard,
                done,
            };
            // A dead shard thread can't accumulate; its chunk runs on
            // shard 0 instead so the reduced counters stay complete.
            if self.pool.senders[shard - 1].send(job).is_err() {
                orphaned.push(range);
            } else {
                drain.outstanding += 1;
            }
        }
        drain.tx = None;
        let mut first_error = self
            .primary
            .train_batch(&windows[..chunk], &labels[..chunk])
            .err();
        for range in orphaned {
            let result = self
                .primary
                .train_batch(&windows[range.clone()], &labels[range]);
            if let Err(e) = result {
                first_error = first_error.or(Some(e));
            }
        }
        let mut lost = 0usize;
        while drain.outstanding > 0 {
            let Ok((_, result)) = drain.rx.recv() else {
                lost += drain.outstanding;
                drain.outstanding = 0;
                break;
            };
            drain.outstanding -= 1;
            if let Err(e) = result {
                first_error = first_error.or(Some(e));
            }
        }
        if lost > 0 {
            first_error = first_error.or(Some(BackendError::WorkerLost {
                chunk: 0,
                panic: format!("{lost} training shard(s) terminated before reporting"),
            }));
        }
        // Reduce even on error: the trait leaves counters unspecified
        // after a failed batch, but harvesting keeps the invariant that
        // shard sessions are empty between calls.
        self.harvest();
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn update_online(
        &mut self,
        window: &[Vec<u16>],
        label: usize,
    ) -> Result<Verdict, BackendError> {
        self.primary.update_online(window, label)
    }

    fn examples(&self, class: usize) -> u32 {
        self.primary.examples(class)
    }

    fn finalize(&mut self) -> Result<HdModel, BackendError> {
        self.primary.finalize()
    }

    fn reset(&mut self) {
        // Pull any shard-held partials in first so they cannot leak
        // into the next model, then clear the reduced state.
        self.harvest();
        self.primary.reset();
    }

    fn into_serving(mut self: Box<Self>) -> Result<Box<dyn BackendSession>, BackendError> {
        self.harvest();
        let model = self.primary.finalize()?;
        self.backend.prepare(&model)
    }
}

#[cfg(test)]
mod tests {
    use super::super::GoldenBackend;
    use super::*;
    use crate::layout::AccelParams;
    use hdc::rng::Xoshiro256PlusPlus;

    fn random_windows(
        params: &AccelParams,
        seed: u64,
        count: usize,
        samples: usize,
    ) -> Vec<Vec<Vec<u16>>> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn params() -> AccelParams {
        AccelParams {
            n_words: 10,
            channels: 4,
            ngram: 3,
            classes: 5,
            levels: 21,
        }
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(matches!(
            ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Batch(0)),
            Err(BackendError::Config(_))
        ));
        assert!(matches!(
            ShardedBackend::fast(ShardSpec::Class(0)),
            Err(BackendError::Config(_))
        ));
    }

    #[test]
    fn both_strategies_match_golden_across_batch_sizes() {
        let params = params();
        let model = HdModel::random(&params, 11);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        for spec in [ShardSpec::Batch(3), ShardSpec::Class(3)] {
            let sharded = ShardedBackend::new(FastBackend::with_threads(1), spec).unwrap();
            let mut session = sharded.prepare(&model).unwrap();
            // 0, 1, shards−1, shards+1, and a fanning batch.
            for count in [0usize, 1, 2, 4, 4 * MIN_WINDOWS_PER_WORKER] {
                let windows = random_windows(&params, 50 + count as u64, count, params.ngram + 1);
                assert_eq!(
                    session.classify_batch(&windows).unwrap(),
                    golden.classify_batch(&windows).unwrap(),
                    "{spec:?} diverged at batch size {count}"
                );
            }
        }
    }

    #[test]
    fn class_sharding_handles_ragged_and_single_class_shards() {
        // 5 classes over 3 shards → slices of 2/2/1 (ragged, and the
        // last shard holds a single class); 4 shards → ceiling chunks
        // of 2 cover all 5 classes in 3 shards (the requested count is
        // unreachable, not just capped); also more shards than classes
        // (capped to one class per shard).
        let params = params();
        let model = HdModel::random(&params, 23);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let windows = random_windows(&params, 77, 12, params.ngram + 2);
        let expected = golden.classify_batch(&windows).unwrap();
        for shards in [2, 3, 4, 5, 9] {
            let sharded =
                ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Class(shards))
                    .unwrap();
            let mut session = sharded.prepare_sharded(&model).unwrap();
            let capped = shards.min(params.classes);
            let chunk = params.classes.div_ceil(capped);
            assert_eq!(session.shards(), params.classes.div_ceil(chunk));
            assert_eq!(
                session.classify_batch(&windows).unwrap(),
                expected,
                "class-sharded over {shards} shards diverged"
            );
        }
    }

    #[test]
    fn single_window_classify_matches_golden_under_both_strategies() {
        let params = params();
        let model = HdModel::random(&params, 31);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let windows = random_windows(&params, 3, 4, params.ngram);
        for spec in [ShardSpec::Batch(2), ShardSpec::Class(2)] {
            let mut session = ShardedBackend::new(FastBackend::with_threads(1), spec)
                .unwrap()
                .prepare(&model)
                .unwrap();
            for w in &windows {
                assert_eq!(
                    session.classify(w).unwrap(),
                    golden.classify(w).unwrap(),
                    "{spec:?} single-window verdict diverged"
                );
            }
        }
    }

    #[test]
    fn classify_batch_into_rolls_back_when_a_shard_fails_mid_batch() {
        let params = params();
        let model = HdModel::random(&params, 47);
        for spec in [ShardSpec::Batch(3), ShardSpec::Class(3)] {
            let mut session = ShardedBackend::new(FastBackend::with_threads(1), spec)
                .unwrap()
                .prepare(&model)
                .unwrap();
            let good = random_windows(&params, 5, 4, params.ngram);
            let mut out = session.classify_batch(&good).unwrap();
            let expected = out.clone();
            // Poison a window deep in the batch so (under
            // batch-sharding) a non-primary shard hits it.
            let mut windows = random_windows(&params, 6, 4 * MIN_WINDOWS_PER_WORKER, params.ngram);
            let poison = windows.len() - 2;
            windows[poison][0].pop();
            let err = session.classify_batch_into(&windows, &mut out).unwrap_err();
            assert!(matches!(err, BackendError::Input(_)), "{spec:?}: {err}");
            assert_eq!(out, expected, "{spec:?}: out must roll back on error");
            // The session stays serviceable after the failed batch.
            assert_eq!(session.classify_batch(&good).unwrap(), expected);
        }
    }

    #[test]
    fn monitor_counts_windows_per_shard() {
        let params = params();
        let model = HdModel::random(&params, 59);
        let n = 4 * MIN_WINDOWS_PER_WORKER;
        let windows = random_windows(&params, 7, n, params.ngram);

        let batch = ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Batch(2)).unwrap();
        let mut session = batch.prepare_sharded(&model).unwrap();
        let monitor = session.monitor();
        session.classify_batch(&windows).unwrap();
        let per_shard = monitor.windows();
        assert_eq!(per_shard.len(), 2);
        assert_eq!(per_shard.iter().sum::<u64>(), n as u64);
        assert!(per_shard.iter().all(|&w| w > 0), "{per_shard:?}");

        let class = ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Class(2)).unwrap();
        let mut session = class.prepare_sharded(&model).unwrap();
        let monitor = session.monitor();
        session.classify_batch(&windows).unwrap();
        assert_eq!(monitor.windows(), vec![n as u64; 2]);
    }

    #[test]
    fn sharded_training_matches_golden_and_serves_sharded() {
        let params = params();
        let spec = TrainSpec::random(&params, 67);
        let count = 5 * MIN_WINDOWS_PER_WORKER;
        let windows = random_windows(&params, 8, count, params.ngram + 1);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
        let labels: Vec<usize> = (0..count)
            .map(|_| rng.next_below(params.classes as u32) as usize)
            .collect();

        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        golden.train_batch(&windows, &labels).unwrap();

        let backend =
            ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Batch(3)).unwrap();
        let mut sharded = backend.begin_training(&spec).unwrap();
        sharded.train_batch(&windows, &labels).unwrap();

        for class in 0..params.classes {
            assert_eq!(sharded.examples(class), golden.examples(class), "{class}");
        }
        let g_model = golden.finalize().unwrap();
        assert_eq!(
            sharded.finalize().unwrap().prototypes(),
            g_model.prototypes(),
            "sharded training diverged from sequential golden"
        );

        // Online updates run on the reduced counters.
        for (w, &l) in windows.iter().zip(&labels).take(4) {
            assert_eq!(
                sharded.update_online(w, l).unwrap(),
                golden.update_online(w, l).unwrap()
            );
        }

        // reset wipes shard partials too: retraining from scratch
        // reproduces a fresh golden session.
        sharded.reset();
        let mut fresh = GoldenBackend.begin_training(&spec).unwrap();
        sharded.train_batch(&windows, &labels).unwrap();
        fresh.train_batch(&windows, &labels).unwrap();
        let mut fresh_serve = fresh.into_serving().unwrap();
        let mut sharded_serve = sharded.into_serving().unwrap();
        let probe = random_windows(&params, 13, 6, params.ngram);
        assert_eq!(
            sharded_serve.classify_batch(&probe).unwrap(),
            fresh_serve.classify_batch(&probe).unwrap(),
            "sharded-trained model serves differently"
        );
    }

    #[test]
    fn sharded_training_surfaces_errors_and_recovers() {
        let params = params();
        let spec = TrainSpec::random(&params, 71);
        let count = 4 * MIN_WINDOWS_PER_WORKER;
        let windows = random_windows(&params, 17, count, params.ngram);
        let labels = vec![0usize; count];
        let backend =
            ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Batch(2)).unwrap();
        let mut session = backend.begin_training(&spec).unwrap();

        let mut bad_labels = labels.clone();
        bad_labels[count - 1] = params.classes; // out of range, lands on shard 1
        assert!(matches!(
            session.train_batch(&windows, &bad_labels),
            Err(BackendError::Input(_))
        ));
        assert!(matches!(
            session.train_batch(&windows, &labels[..count - 1]),
            Err(BackendError::Input(_))
        ));

        // After reset the session trains cleanly again.
        session.reset();
        session.train_batch(&windows, &labels).unwrap();
        assert_eq!(session.examples(0), count as u32);
    }

    /// A panic inside a training shard worker is contained: the job
    /// comes back as a typed [`BackendError::WorkerLost`], the shard's
    /// counters reset (no half-counted chunk can leak into the merge),
    /// and subsequent fanned batches still reduce to the sequential
    /// golden result.
    #[test]
    fn contained_training_shard_panic_surfaces_and_training_recovers() {
        crate::backend::pool::silence_expected_panics();
        let params = params();
        let spec = TrainSpec::random(&params, 83);
        let count = 4 * MIN_WINDOWS_PER_WORKER;
        let windows = random_windows(&params, 21, count, params.ngram);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let labels: Vec<usize> = (0..count)
            .map(|_| rng.next_below(params.classes as u32) as usize)
            .collect();

        let backend =
            ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Batch(2)).unwrap();
        let mut session = backend.begin_training_sharded(&spec).unwrap();

        // An out-of-range chunk makes shard 1's worker panic inside the
        // batch slice — a genuine unwind on the worker thread, not a
        // simulated error.
        let (done_tx, done_rx) = channel();
        session.pool.senders[0]
            .send(TrainShardJob::Train {
                windows: RawWindows::of(&windows),
                labels: RawLabels::of(&labels),
                range: count..count + 9,
                shard: 1,
                done: done_tx,
            })
            .unwrap();
        let (shard, result) = done_rx.recv().unwrap();
        assert_eq!(shard, 1);
        match result {
            Err(BackendError::WorkerLost { chunk, panic }) => {
                assert_eq!(chunk, 1);
                assert!(panic.contains("out of range"), "{panic}");
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }

        // The worker survived with clean counters: a fanned batch still
        // reduces to exactly the sequential golden result.
        session.train_batch(&windows, &labels).unwrap();
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        golden.train_batch(&windows, &labels).unwrap();
        assert_eq!(
            session.finalize().unwrap().prototypes(),
            golden.finalize().unwrap().prototypes()
        );
    }
}
