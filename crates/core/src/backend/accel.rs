//! The simulated-cluster backend: the paper's accelerated kernels on a
//! cycle-stepped PULP platform, behind the uniform
//! [`ExecutionBackend`] interface.
//!
//! [`prepare`](ExecutionBackend::prepare) plans the memory layout,
//! generates the chain program for the platform's ISA variant, and
//! writes the seed matrices into simulated L2 (the work
//! [`AccelChain::new`] + [`AccelChain::load_model`] used to expose only
//! as concrete types). Every [`Verdict`] carries the per-kernel cycle
//! breakdown — this is the one backend that measures time.
//!
//! The chain program consumes exactly `ngram` samples per run, so
//! [`classify`](super::BackendSession::classify) requires
//! `window.len() == ngram`; use a host backend for sliding-window
//! bundling.
//!
//! **This backend is a cycle-accurate simulator, not a slow engine.**
//! Every instruction of the generated kernels is stepped through the
//! [`pulp_sim`] cluster model, so its host wall-clock measures the cost
//! of *simulation* (typically a few thousand windows/sec) while its
//! [`CycleBreakdown`] models what the silicon would take. Keep it out
//! of host-throughput comparisons — the throughput bench reports its
//! `accel_sim` row for scale only and excludes it from every guard.

use crate::pipeline::AccelChain;
use crate::platform::Platform;

use super::{
    BackendError, BackendSession, CycleBreakdown, ExecutionBackend, HdModel, Verdict, VerdictSource,
};

/// The cycle-accurate simulated-platform backend.
///
/// Wall-clock here is simulation cost, not achievable host throughput —
/// see the [module docs](self) before comparing it against the host
/// backends.
#[derive(Debug, Clone)]
pub struct AccelBackend {
    platform: Platform,
}

impl AccelBackend {
    /// A backend targeting `platform` (core count, ISA variant, memory
    /// policy, and clock ceiling all come from the preset).
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        Self { platform }
    }

    /// The target platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }
}

impl ExecutionBackend for AccelBackend {
    fn name(&self) -> &'static str {
        "accel"
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        let mut chain = AccelChain::new(&self.platform, model.params())?;
        chain.load_model(model.cim(), model.im(), model.prototypes())?;
        Ok(Box::new(AccelSession {
            chain,
            ngram: model.ngram(),
            channels: model.channels(),
        }))
    }
}

struct AccelSession {
    chain: AccelChain,
    ngram: usize,
    channels: usize,
}

impl BackendSession for AccelSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        super::validate_window(window, self.channels, self.ngram)?;
        if window.len() != self.ngram {
            return Err(BackendError::Input(format!(
                "simulated chain consumes exactly {} samples per run, got {}",
                self.ngram,
                window.len()
            )));
        }
        let run = self.chain.classify(window)?;
        Ok(Verdict {
            class: run.class,
            distances: run.distances,
            query: run.query,
            cycles: Some(CycleBreakdown {
                total: run.cycles_total,
                map_encode: run.cycles_map_encode,
                am: run.cycles_am,
            }),
            source: VerdictSource::Scan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GoldenBackend;
    use crate::layout::AccelParams;

    #[test]
    fn agrees_with_golden_backend_and_reports_cycles() {
        let params = AccelParams {
            n_words: 16,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 21);
        let window: Vec<Vec<u16>> = (0..2)
            .map(|t| {
                (0..4)
                    .map(|c| ((t * 7 + c * 13) * 997 % 65_536) as u16)
                    .collect()
            })
            .collect();
        let mut accel = AccelBackend::new(Platform::pulpv3(4))
            .prepare(&model)
            .unwrap();
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let a = accel.classify(&window).unwrap();
        let g = golden.classify(&window).unwrap();
        assert_eq!(a.class, g.class);
        assert_eq!(a.distances, g.distances);
        assert_eq!(a.query, g.query);
        let cycles = a.cycles.expect("simulated backend measures time");
        assert!(cycles.map_encode > 0 && cycles.am > 0);
        assert!(cycles.map_encode + cycles.am <= cycles.total);
    }

    #[test]
    fn rejects_windows_longer_than_one_gram() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 3);
        let mut session = AccelBackend::new(Platform::wolf_builtin(2))
            .prepare(&model)
            .unwrap();
        let window: Vec<Vec<u16>> = vec![vec![0u16; 4]; 2]; // ngram is 1
        assert!(matches!(
            session.classify(&window),
            Err(BackendError::Input(_))
        ));
    }
}
