//! The throughput backend: the HD chain on `u64`-packed hypervectors
//! with multi-threaded batch classification.
//!
//! Three things make it fast while staying bit-identical to the golden
//! model (a property test pins this — see `tests/` here and at the
//! workspace root):
//!
//! * hypervectors are repacked into [`Hv64`] words, halving the word
//!   count of every bind/rotate/majority/popcount;
//! * the `channels × levels` bind table `IM[c] ⊕ CIM[l]` is
//!   precomputed at [`prepare`](super::ExecutionBackend::prepare) time,
//!   removing one XOR per channel per sample from the hot path;
//! * [`classify_batch`](super::BackendSession::classify_batch) splits
//!   the batch across OS threads (sessions hold no mutable state, so
//!   windows are embarrassingly parallel).
//!
//! Single-window latency is similar to the golden model's; the win is
//! batch throughput — the regime the ROADMAP's "heavy traffic" goal
//! cares about. `crates/bench/benches/throughput.rs` measures both.

use hdc::hv64::{majority_paper64, ngram64, Hv64};
use hdc::item_memory::quantize_code;

use super::{
    argmin, validate_window, BackendError, BackendSession, ExecutionBackend, HdModel, Verdict,
};

/// The `u64`-packed multi-threaded host backend.
///
/// The thread count applies to
/// [`classify_batch`](super::BackendSession::classify_batch); single
/// windows always run inline on the calling thread.
#[derive(Debug, Clone, Copy)]
pub struct FastBackend {
    threads: usize,
}

impl FastBackend {
    /// A backend using all available CPU parallelism for batches.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self { threads }
    }

    /// A backend with an explicit batch thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "fast backend needs at least one thread");
        Self { threads }
    }

    /// The configured batch thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for FastBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionBackend for FastBackend {
    fn name(&self) -> &'static str {
        "fast"
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        let levels = model.levels();
        let bound: Vec<Vec<Hv64>> = (0..model.channels())
            .map(|c| {
                (0..levels)
                    .map(|l| Hv64::from_binary(&model.im().get(c).bind(model.cim().get(l))))
                    .collect()
            })
            .collect();
        let prototypes: Vec<Hv64> = model.prototypes().iter().map(Hv64::from_binary).collect();
        Ok(Box::new(FastSession {
            bound,
            prototypes,
            levels,
            ngram: model.ngram(),
            threads: self.threads,
        }))
    }
}

struct FastSession {
    /// `bound[c][l] = IM[c] ⊕ CIM[l]`, the per-sample bind table.
    bound: Vec<Vec<Hv64>>,
    prototypes: Vec<Hv64>,
    levels: usize,
    ngram: usize,
    threads: usize,
}

impl FastSession {
    fn classify_one(&self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        validate_window(window, self.bound.len(), self.ngram)?;
        let spatials: Vec<Hv64> = window
            .iter()
            .map(|sample| {
                let bound: Vec<&Hv64> = sample
                    .iter()
                    .enumerate()
                    .map(|(c, &code)| &self.bound[c][quantize_code(code, self.levels)])
                    .collect();
                majority_paper64(&bound)
            })
            .collect();
        let grams: Vec<Hv64> = (0..=spatials.len() - self.ngram)
            .map(|t| ngram64(&spatials[t..t + self.ngram]))
            .collect();
        let gram_refs: Vec<&Hv64> = grams.iter().collect();
        let query = majority_paper64(&gram_refs);
        let distances: Vec<u32> = self.prototypes.iter().map(|p| p.hamming(&query)).collect();
        Ok(Verdict {
            class: argmin(&distances),
            distances,
            query: query.to_binary(),
            cycles: None,
        })
    }
}

impl BackendSession for FastSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        self.classify_one(window)
    }

    fn classify_batch(&mut self, windows: &[Vec<Vec<u16>>]) -> Result<Vec<Verdict>, BackendError> {
        let threads = self.threads.min(windows.len());
        if threads <= 1 {
            return windows.iter().map(|w| self.classify_one(w)).collect();
        }
        let chunk = windows.len().div_ceil(threads);
        let session: &FastSession = self;
        let chunk_results: Vec<Result<Vec<Verdict>, BackendError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = windows
                .chunks(chunk)
                .map(|ws| {
                    scope.spawn(move || {
                        ws.iter()
                            .map(|w| session.classify_one(w))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("classification worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(windows.len());
        for chunk in chunk_results {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GoldenBackend;
    use crate::layout::AccelParams;
    use hdc::rng::Xoshiro256PlusPlus;

    fn random_windows(
        params: &AccelParams,
        samples: usize,
        count: usize,
        seed: u64,
    ) -> Vec<Vec<Vec<u16>>> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// The decisive property: fast == golden, bit for bit, across
    /// random shapes and inputs.
    #[test]
    fn bit_identical_to_golden_across_shapes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xFA57_BACC);
        for case in 0..24 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                levels: 2 + rng.next_below(28) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(5) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            let windows = random_windows(&params, samples, 6, rng.next_u64());
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let mut fast = FastBackend::with_threads(3).prepare(&model).unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            let got = fast.classify_batch(&windows).unwrap();
            assert_eq!(got, expected, "case {case} with {params:?}");
        }
    }

    #[test]
    fn batch_order_is_preserved_across_thread_counts() {
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 11);
        let windows = random_windows(&params, 1, 37, 5);
        let mut one = FastBackend::with_threads(1).prepare(&model).unwrap();
        let sequential = one.classify_batch(&windows).unwrap();
        for threads in [2usize, 4, 8] {
            let mut many = FastBackend::with_threads(threads).prepare(&model).unwrap();
            assert_eq!(
                many.classify_batch(&windows).unwrap(),
                sequential,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn batch_surfaces_input_errors() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 2);
        let mut session = FastBackend::with_threads(4).prepare(&model).unwrap();
        let mut windows = random_windows(&params, 1, 8, 3);
        windows[5] = vec![vec![0u16; 3]]; // wrong channel count
        assert!(matches!(
            session.classify_batch(&windows),
            Err(BackendError::Input(_))
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 2);
        let mut session = FastBackend::new().prepare(&model).unwrap();
        assert!(session.classify_batch(&[]).unwrap().is_empty());
    }
}
