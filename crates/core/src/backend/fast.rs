//! The throughput backend: the HD chain on `u64`-packed hypervectors
//! with a zero-allocation encode hot path, runtime-dispatched SIMD
//! kernels, and a persistent multi-threaded batch pipeline.
//!
//! Five things make it fast while staying bit-identical to the golden
//! model (property tests pin this — see `tests/` here and at the
//! workspace root):
//!
//! * hypervectors are repacked into [`Hv64`] words, halving the word
//!   count of every bind/rotate/majority/popcount;
//! * every word loop of those kernels dispatches through
//!   [`hdc::simd::Simd`] — AVX2/POPCNT lanes when the CPU has them, a
//!   portable unrolled fallback otherwise, selected once per process
//!   (`BENCH_throughput.json` records which level a bench run used);
//! * the `channels × levels` bind table `IM[c] ⊕ CIM[l]` is
//!   precomputed at [`prepare`](super::ExecutionBackend::prepare) time,
//!   removing one XOR per channel per sample from the hot path;
//! * encoding runs entirely inside a reusable per-thread
//!   [`EncodeScratch`] arena: spatial and temporal bundling go through
//!   the word-major, register-resident carry-save majority
//!   ([`BitslicedBundler::bundle_paper_into`], with fixed full-adder
//!   networks for the common vote sizes), N-grams are
//!   built with the fused bind-rotate [`Hv64::xor_rotated`], and after
//!   the arena has warmed up to the window length, classifying a window
//!   performs **no heap allocation in the encode path** (the returned
//!   [`Verdict`] still owns its two output buffers — the distances
//!   vector and the unpacked query — which are the only per-window
//!   allocations left);
//! * [`classify_batch`](super::BackendSession::classify_batch) feeds a
//!   **persistent worker pool** owned by the session: workers are
//!   spawned once at `prepare` time (one channel and one private
//!   scratch arena each, never re-created per call), each batch is
//!   split into contiguous chunks with the calling thread working chunk
//!   0 alongside the pool, and an adaptive cutover keeps small batches
//!   inline on the calling thread — fanning out only when every
//!   participant gets at least [`MIN_WINDOWS_PER_WORKER`] windows, so
//!   the threaded path never loses to the single-threaded one. The
//!   pool holds `min(threads, available_parallelism) - 1` workers:
//!   oversubscribing a CPU-bound bit-kernel workload can only add
//!   context switches.
//!
//! The associative-memory search is controlled by [`ScanPolicy`]: the
//! default [`ScanPolicy::Full`] scans every prototype word and returns
//! exact distances (bit-identical `Verdict`s vs. the golden backend);
//! [`ScanPolicy::Pruned`] abandons a prototype as soon as its partial
//! distance exceeds the running minimum — same class, always, with the
//! lower-bound distance semantics documented at
//! [`hdc::hv64::scan_pruned_into`].
//!
//! **Scan-policy crossover.** Pruning only pays when there is work to
//! skip *and* the skipped work outweighs the per-block bookkeeping: at
//! batch 256 on the 5-class EMG model the bench records `fast-pruned`
//! at ~0.85× `fast` (the `"pruned_cliff"` guard in
//! `BENCH_throughput.json`), and with one prototype there is nothing to
//! prune at all — so sessions whose associative memory holds **≤ 1
//! prototype silently run [`ScanPolicy::Full`]** whatever was
//! requested. This matters for class-sharded serving: a
//! [`ShardedBackend`](super::ShardedBackend) sliced down to one class
//! per shard would otherwise pay the pruned scan's bookkeeping on every
//! shard with zero skippable work. Reach for `Pruned` in
//! latency-sensitive single-window regimes with many classes; large
//! batches and tiny associative memories belong on `Full`.
//!
//! On top of the exact scan sits the **approximate inference ladder**,
//! [`ApproxPolicy`]: threshold early-termination
//! ([`ApproxPolicy::Threshold`], accept the first prototype provably
//! within τ·D via [`hdc::hv64::scan_threshold_into`]), a
//! query-similarity cache ([`ApproxPolicy::Cached`], replay the scan
//! of an identical recent query), and their composition. Approximate
//! verdicts carry their provenance in [`Verdict::source`] and are
//! checked by accuracy tests (`crates/core/tests/approx_accuracy.rs`)
//! instead of bit-equivalence; the default [`ApproxPolicy::Exact`]
//! stays bit-identical to golden.
//!
//! `crates/bench/benches/throughput.rs` measures all of it and records
//! the numbers in `BENCH_throughput.json`.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use hdc::hv64::{scan_pruned_into, scan_threshold_into, BitslicedBundler, CounterBundler, Hv64};
use hdc::item_memory::quantize_code;
use hdc::rng::{derive_seed, Xoshiro256PlusPlus};
use hdc::BinaryHv;

use super::pool::{
    contain, fan_out_for, ChunkResult, RawLabels, RawWindows, ResultDrain, WorkerPool,
};
use super::{
    argmin, validate_label, validate_window, BackendError, BackendSession, ExecutionBackend,
    HdModel, TrainSpec, TrainableBackend, TrainingSession, Verdict, VerdictSource,
};

/// Fewest windows a batch participant (the calling thread or a pool
/// worker) must receive before fanning out pays for its dispatch: below
/// this, the batch runs inline on the calling thread.
pub const MIN_WINDOWS_PER_WORKER: usize = 8;

/// Associative-memory scan strategy of the [`FastBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Scan every prototype completely: exact Hamming distances for all
    /// classes, `Verdict`s bit-identical to the golden backend.
    #[default]
    Full,
    /// Early-exit scan: abandon a prototype once its partial distance
    /// exceeds the running minimum. The predicted class (and the
    /// winner's distance) are always identical to [`Full`](Self::Full);
    /// non-winning `distances` entries may be the partial distance at
    /// the abandonment point — a lower bound on the true distance that
    /// still exceeds the winning distance (see
    /// [`hdc::hv64::scan_pruned_into`]).
    ///
    /// **Large batches should stay on [`Full`](Self::Full) for now**:
    /// on the multi-threaded batch path the pruned scan's extra
    /// per-block bookkeeping currently *costs* throughput instead of
    /// saving it — the bench's pruned-cliff guard records `fast-pruned`
    /// at roughly half of `fast` at batch 256 (`"pruned_cliff"` in
    /// `BENCH_throughput.json`). Reach for `Pruned` in
    /// latency-sensitive single-window regimes with many classes, where
    /// skipping doomed prototypes shortens the critical path, not to
    /// speed up bulk batches.
    Pruned,
}

/// The approximate-inference ladder of the [`FastBackend`]: how much
/// exactness to trade for scan throughput (see the [module
/// docs](self)).
///
/// The rungs compose — [`CachedThreshold`](Self::CachedThreshold) runs
/// the cache in front of the threshold scan — and every non-`Exact`
/// rung marks its verdicts' [`Verdict::source`], so a pipeline can
/// audit exactly which shortcuts fired. Accuracy (not bit-equivalence)
/// is the correctness contract for the approximate rungs, pinned by
/// `crates/core/tests/approx_accuracy.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ApproxPolicy {
    /// No approximation: verdicts bit-identical to the exact scan
    /// (and, under [`ScanPolicy::Full`], to the golden backend).
    #[default]
    Exact,
    /// Threshold early-termination: accept the first prototype whose
    /// Hamming distance is provably at most `tau × D` (`D` = the model
    /// dimension in bits) and skip the remaining classes. Queries that
    /// land close to their class prototype — the common case on
    /// clustered sensor data — finish after a fraction of the
    /// associative memory; queries near no prototype degrade to the
    /// exact pruned scan and return the true arg-min.
    Threshold {
        /// Acceptance radius as a fraction of the dimension, in
        /// `(0, 1)`. Random hypervectors sit at ~0.5·D from each other,
        /// so useful values live well below that (τ ≈ 0.2–0.3 on the
        /// EMG workload).
        tau: f32,
    },
    /// Query-similarity cache: a per-participant fixed-capacity LRU
    /// keyed on a cheap signature of the encoded query. A hit requires
    /// the cached query to match the new one **word for word** (the
    /// signature is only a filter), so replayed verdicts are exactly
    /// what the scan would have produced — the accuracy cost is zero;
    /// the win is skipping the AM scan for repeated windows, which
    /// streaming sensor data produces constantly.
    Cached {
        /// Entries per participant (calling thread and each pool
        /// worker hold a private cache; must be ≥ 1). Each entry owns
        /// one packed query plus one distances vector.
        capacity: usize,
    },
    /// Both rungs: the cache short-circuits repeated queries, the
    /// threshold scan accelerates the misses.
    CachedThreshold {
        /// As in [`Threshold`](Self::Threshold).
        tau: f32,
        /// As in [`Cached`](Self::Cached).
        capacity: usize,
    },
}

impl ApproxPolicy {
    /// The acceptance fraction, when threshold early-termination is
    /// enabled.
    #[must_use]
    pub fn tau(&self) -> Option<f32> {
        match *self {
            Self::Threshold { tau } | Self::CachedThreshold { tau, .. } => Some(tau),
            Self::Exact | Self::Cached { .. } => None,
        }
    }

    /// The per-participant cache capacity, when caching is enabled.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        match *self {
            Self::Cached { capacity } | Self::CachedThreshold { capacity, .. } => Some(capacity),
            Self::Exact | Self::Threshold { .. } => None,
        }
    }

    /// Whether this is the exact (bit-identical) default.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        matches!(self, Self::Exact)
    }

    /// Rejects malformed knobs with [`BackendError::Config`] — called
    /// at `prepare` time, before any model work.
    fn validate(&self) -> Result<(), BackendError> {
        if let Some(tau) = self.tau() {
            if !tau.is_finite() || tau <= 0.0 || tau >= 1.0 {
                return Err(BackendError::Config(format!(
                    "approximate scan threshold tau must be a finite fraction in (0, 1), got {tau}"
                )));
            }
        }
        if let Some(capacity) = self.capacity() {
            if capacity == 0 {
                return Err(BackendError::Config(
                    "query cache capacity must be at least 1 entry".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Shared hit/miss/evict counters of a session's query caches. Every
/// participant's private cache ticks the same counters, so the monitor
/// sees the session-wide totals.
#[derive(Debug, Default)]
struct ApproxCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A cloneable, read-only handle onto a session's query-cache counters
/// (hits / misses / evictions), obtained from
/// [`BackendSession::approx_monitor`] and safe to poll from any thread
/// while the session serves — the serving front-end surfaces these
/// through `ServerStats`.
#[derive(Debug, Clone)]
pub struct ApproxMonitor {
    counters: Arc<ApproxCounters>,
}

impl ApproxMonitor {
    /// Windows answered straight from a query cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    /// Windows that went through to the AM scan (and were then cached).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    /// Cache entries displaced to make room for a newer query.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.counters.evictions.load(Ordering::Relaxed)
    }
}

/// A cheap 64-bit signature of a packed query hypervector: four sampled
/// words — first, the two thirds, and **always the last word**, so an
/// odd-`n_words32` tail participates — plus the total popcount bucketed
/// to 64 bits, mixed through SplitMix64 finalizers.
///
/// The signature is a *filter*, not an identity: a cache lookup that
/// matches on signature still compares the full query word-for-word
/// before replaying a verdict, so collisions cost one extra compare and
/// never a wrong answer.
fn query_signature(words: &[u64]) -> u64 {
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    let n = words.len();
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for idx in [0, n / 3, (2 * n) / 3, n - 1] {
        h = mix(h ^ words[idx]);
    }
    let pop: u32 = words.iter().map(|w| w.count_ones()).sum();
    mix(h ^ u64::from(pop / 64))
}

/// One cached scan result: the full packed query (the ground truth a
/// hit must match word-for-word), its signature (the cheap pre-filter),
/// and the verdict data to replay.
struct CacheEntry {
    sig: u64,
    query: Box<[u64]>,
    class: usize,
    distances: Vec<u32>,
    /// Logical timestamp of the last hit or insertion (LRU order).
    stamp: u64,
}

/// A fixed-capacity, per-participant LRU cache of scan results, keyed
/// by [`query_signature`] and verified by full word comparison. Private
/// to one thread (no locks on the hot path); only the shared telemetry
/// counters are atomic.
///
/// Capacities are serving-cache sized (tens of entries), so lookup is a
/// linear signature sweep over a flat `Vec` — cheaper than any hashed
/// structure at this size and free of per-hit allocation.
struct QueryCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    clock: u64,
    counters: Arc<ApproxCounters>,
}

impl QueryCache {
    fn new(capacity: usize, counters: Arc<ApproxCounters>) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            counters,
        }
    }

    /// Replays the cached class and distances for `words`, if an entry
    /// holds this exact query. Counts the hit or miss either way.
    fn lookup(&mut self, sig: u64, words: &[u64]) -> Option<(usize, Vec<u32>)> {
        self.clock += 1;
        for entry in &mut self.entries {
            // Signature first (one compare), full query only on a
            // signature match — see `query_signature`.
            if entry.sig == sig && *entry.query == *words {
                entry.stamp = self.clock;
                // ORDERING: Relaxed — the cache counters are telemetry
                // read only by stats snapshots; the cache itself is
                // behind `&mut self`, so no synchronization rides on
                // these counters.
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                return Some((entry.class, entry.distances.clone()));
            }
        }
        // ORDERING: Relaxed telemetry, as for `hits` above.
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a freshly scanned verdict, evicting the least recently
    /// used entry at capacity.
    fn insert(&mut self, sig: u64, words: &[u64], class: usize, distances: Vec<u32>) {
        self.clock += 1;
        if self.entries.len() == self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                // INFALLIBLE: this branch runs only when the cache is
                // at capacity, and capacity is validated >= 1, so the
                // iterator is non-empty.
                .expect("capacity >= 1, so a full cache has entries");
            self.entries.swap_remove(oldest);
            // ORDERING: Relaxed telemetry, as for `hits` above.
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.entries.push(CacheEntry {
            sig,
            query: words.into(),
            class,
            distances,
            stamp: self.clock,
        });
    }
}

/// The `u64`-packed multi-threaded host backend.
///
/// The thread count is the **requested parallelism cap** for
/// [`classify_batch`](super::BackendSession::classify_batch); the
/// session it prepares sizes its persistent worker pool to
/// `min(threads, available_parallelism)` participants and falls back to
/// the calling thread for batches too small to split (see the [module
/// docs](self)). Single windows always run inline on the calling
/// thread.
#[derive(Debug, Clone, Copy)]
pub struct FastBackend {
    threads: usize,
    scan: ScanPolicy,
    approx: ApproxPolicy,
    /// Pool workers contain job panics behind `catch_unwind` (on by
    /// default; the bench's overhead guard is the only caller that
    /// turns it off).
    containment: bool,
}

impl FastBackend {
    /// A backend using all available CPU parallelism for batches, the
    /// exact [`ScanPolicy::Full`] AM scan, and no approximation.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            threads,
            scan: ScanPolicy::Full,
            approx: ApproxPolicy::Exact,
            containment: true,
        }
    }

    /// A backend with an explicit batch thread cap — the panicking
    /// convenience for thread counts known at compile time (tests,
    /// benches, examples with hard-coded parallelism). When the count
    /// comes from configuration or user input, use
    /// [`try_with_threads`](Self::try_with_threads) and handle the error.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        // INFALLIBLE: not a proof — this is the documented panicking
        // twin of `try_with_threads` ("# Panics" above); callers who
        // cannot rule out `threads == 0` must use the fallible form.
        Self::try_with_threads(threads).expect("fast backend needs at least one thread")
    }

    /// The fallible twin of [`with_threads`](Self::with_threads):
    /// rejects a zero thread count with [`BackendError::Config`] instead
    /// of panicking, matching the `Result`-based contract of
    /// [`prepare`](ExecutionBackend::prepare). The serving front-end and
    /// the examples route through this constructor.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Config`] if `threads == 0`.
    pub fn try_with_threads(threads: usize) -> Result<Self, BackendError> {
        if threads == 0 {
            return Err(BackendError::Config(
                "fast backend needs at least one thread".into(),
            ));
        }
        Ok(Self {
            threads,
            scan: ScanPolicy::Full,
            approx: ApproxPolicy::Exact,
            containment: true,
        })
    }

    /// Returns this backend with the given AM scan policy.
    #[must_use]
    pub fn with_scan(mut self, scan: ScanPolicy) -> Self {
        self.scan = scan;
        self
    }

    /// Returns this backend with the given approximation policy. The
    /// knobs are validated at [`prepare`](ExecutionBackend::prepare)
    /// time ([`BackendError::Config`] on a τ outside `(0, 1)` or a
    /// zero cache capacity), matching the `Result`-based contract
    /// there.
    #[must_use]
    pub fn with_approx(mut self, approx: ApproxPolicy) -> Self {
        self.approx = approx;
        self
    }

    /// Disables worker panic containment. A panicking job then unwinds
    /// the worker thread and the batch fails with
    /// [`BackendError::WorkerLost`] once the dead worker is detected —
    /// but the worker is gone for good. Exists **only** so the bench can
    /// measure the healthy-path cost of containment (the
    /// `"containment"` guard in `BENCH_throughput.json`); every real
    /// deployment wants the default.
    #[doc(hidden)]
    #[must_use]
    pub fn without_containment(mut self) -> Self {
        self.containment = false;
        self
    }

    /// The configured batch thread cap.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured AM scan policy.
    #[must_use]
    pub fn scan(&self) -> ScanPolicy {
        self.scan
    }

    /// The configured approximation policy.
    #[must_use]
    pub fn approx(&self) -> ApproxPolicy {
        self.approx
    }

    /// [`prepare`](ExecutionBackend::prepare) with an explicit
    /// participant count (callers + pool workers), bypassing the
    /// `available_parallelism` clamp — the testable core of session
    /// construction, also exercised on single-CPU hosts.
    fn prepare_with_participants(
        &self,
        model: &HdModel,
        participants: usize,
    ) -> Result<FastSession, BackendError> {
        self.approx.validate()?;
        let enc = EncodeCore::from_parts(model.im(), model.cim(), model.ngram());
        let prototypes: Vec<Hv64> = model.prototypes().iter().map(Hv64::from_binary).collect();
        let n_words32 = enc.n_words32;
        // The τ fraction resolves to an absolute bit radius here, once.
        let accept = self.approx.tau().map(|tau| {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_sign_loss)]
            let radius = (tau * (n_words32 * 32) as f32) as u32;
            radius
        });
        let counters = Arc::new(ApproxCounters::default());
        let core = Arc::new(FastCore {
            enc,
            prototypes,
            scan: self.scan,
            accept,
            cache_capacity: self.approx.capacity(),
            counters,
        });
        let caught = Arc::new(AtomicU64::new(0));
        let pool = {
            let core = &core;
            let caught = &caught;
            let containment = self.containment;
            WorkerPool::spawn(participants.saturating_sub(1), |_| {
                let core = Arc::clone(core);
                let caught = Arc::clone(caught);
                let mut scratch = EncodeScratch::new(core.enc.n_words32);
                let mut cache = core.new_cache();
                move |job: ClassifyJob| {
                    let ClassifyJob {
                        windows,
                        range,
                        chunk,
                        done,
                    } = job;
                    let run = |scratch: &mut EncodeScratch, cache: &mut Option<QueryCache>| {
                        // SAFETY: see `RawWindows` — the batch outlives
                        // the job because the dispatcher waits for our
                        // `done` message before returning.
                        let windows = unsafe { windows.slice() };
                        windows[range.clone()]
                            .iter()
                            .map(|w| core.classify_with(w, scratch, cache))
                            .collect::<Result<Vec<_>, _>>()
                    };
                    let result = if containment {
                        contain(|| run(&mut scratch, &mut cache)).unwrap_or_else(|panic| {
                            // The arena (and cache) may hold torn state
                            // from the unwound encode; respawn both,
                            // count the loss, keep the worker alive.
                            scratch = EncodeScratch::new(core.enc.n_words32);
                            cache = core.new_cache();
                            // ORDERING: Relaxed — contained-panic
                            // telemetry; the loss itself is reported
                            // through the job's result channel, which
                            // does the synchronizing.
                            caught.fetch_add(1, Ordering::Relaxed);
                            Err(BackendError::WorkerLost { chunk, panic })
                        })
                    } else {
                        run(&mut scratch, &mut cache)
                    };
                    // A dropped receiver just means the dispatcher gave
                    // up on the batch; keep serving future jobs.
                    let _ = done.send((chunk, result));
                }
            })
        };
        let cache = core.new_cache();
        let monitor = core.cache_capacity.map(|_| ApproxMonitor {
            counters: Arc::clone(&core.counters),
        });
        Ok(FastSession {
            scratch: EncodeScratch::new(n_words32),
            cache,
            monitor,
            core,
            pool,
            caught,
        })
    }

    /// [`begin_training`](TrainableBackend::begin_training) with an
    /// explicit participant count — the testable core of training
    /// session construction, also exercised on single-CPU hosts.
    pub(super) fn begin_training_with_participants(
        &self,
        spec: &TrainSpec,
        participants: usize,
    ) -> Result<FastTrainingSession, BackendError> {
        let enc = Arc::new(EncodeCore::from_parts(spec.im(), spec.cim(), spec.ngram()));
        let n_words32 = enc.n_words32;
        let classes = spec.classes();
        // The per-class seeded tie vectors of the golden associative
        // memory, materialized once and packed: ties resolve identically
        // forever after, at zero per-update cost.
        let ties: Vec<Hv64> = (0..classes)
            .map(|class| {
                let mut rng =
                    Xoshiro256PlusPlus::seed_from_u64(derive_seed(spec.tie_seed(), class as u64));
                Hv64::from_binary(&BinaryHv::random_from(n_words32, &mut rng))
            })
            .collect();
        let caught = Arc::new(AtomicU64::new(0));
        let pool = {
            let enc = &enc;
            let caught = &caught;
            let containment = self.containment;
            WorkerPool::spawn(participants.saturating_sub(1), |_| {
                let enc = Arc::clone(enc);
                let caught = Arc::clone(caught);
                let mut scratch = EncodeScratch::new(enc.n_words32);
                move |job: TrainJob| {
                    let TrainJob {
                        windows,
                        labels,
                        range,
                        chunk,
                        classes,
                        done,
                    } = job;
                    let run = |scratch: &mut EncodeScratch| {
                        // SAFETY: see `RawWindows`/`RawLabels` — the
                        // batch and label slices outlive the job because
                        // the dispatcher waits for our `done` message.
                        let windows = unsafe { windows.slice() };
                        // SAFETY: same guard as `windows` above.
                        let labels = unsafe { labels.slice() };
                        let mut partials: Vec<CounterBundler> = (0..classes)
                            .map(|_| CounterBundler::new(enc.n_words32))
                            .collect();
                        range
                            .clone()
                            .try_for_each(|i| {
                                validate_label(labels[i], classes)?;
                                enc.encode_with(&windows[i], scratch)?;
                                partials[labels[i]].add(&scratch.query);
                                Ok(())
                            })
                            .map(|()| partials)
                    };
                    let result = if containment {
                        contain(|| run(&mut scratch)).unwrap_or_else(|panic| {
                            // Partial counters died with the unwind (they
                            // were job-local); only the arena needs a
                            // respawn before the next job.
                            scratch = EncodeScratch::new(enc.n_words32);
                            // ORDERING: Relaxed — contained-panic
                            // telemetry; the loss itself is reported
                            // through the job's result channel, which
                            // does the synchronizing.
                            caught.fetch_add(1, Ordering::Relaxed);
                            Err(BackendError::WorkerLost { chunk, panic })
                        })
                    } else {
                        run(&mut scratch)
                    };
                    let _ = done.send((chunk, result));
                }
            })
        };
        Ok(FastTrainingSession {
            counters: (0..classes)
                .map(|_| CounterBundler::new(n_words32))
                .collect(),
            prototypes: vec![Hv64::zeros(n_words32); classes],
            stale: vec![false; classes],
            ties,
            scratch: EncodeScratch::new(n_words32),
            enc,
            pool,
            caught,
            spec: spec.clone(),
            backend: *self,
        })
    }
}

impl Default for FastBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionBackend for FastBackend {
    fn name(&self) -> &'static str {
        match self.approx {
            ApproxPolicy::Exact => match self.scan {
                ScanPolicy::Full => "fast",
                ScanPolicy::Pruned => "fast-pruned",
            },
            ApproxPolicy::Threshold { .. } => "fast-threshold",
            ApproxPolicy::Cached { .. } => "fast-cached",
            ApproxPolicy::CachedThreshold { .. } => "fast-cached-threshold",
        }
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let session = self.prepare_with_participants(model, self.threads.min(cpus))?;
        Ok(Box::new(session))
    }

    /// Honors both knobs: the returned session scans with `scan` and
    /// approximates per `approx`, whatever this descriptor was built
    /// with.
    fn prepare_tuned(
        &self,
        model: &HdModel,
        scan: ScanPolicy,
        approx: ApproxPolicy,
    ) -> Result<Box<dyn BackendSession>, BackendError> {
        self.with_scan(scan).with_approx(approx).prepare(model)
    }
}

impl TrainableBackend for FastBackend {
    fn begin_training(&self, spec: &TrainSpec) -> Result<Box<dyn TrainingSession>, BackendError> {
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let session = self.begin_training_with_participants(spec, self.threads.min(cpus))?;
        Ok(Box::new(session))
    }
}

/// Reusable per-thread encode arena: every intermediate buffer of the
/// spatial → temporal → query chain, allocated once and recycled across
/// windows. After it has grown to the longest window seen, the encode
/// path performs zero heap allocations. Pool workers each own one for
/// the lifetime of the session, so repeated batches reuse warm arenas.
#[derive(Debug)]
struct EncodeScratch {
    /// Quantized level index per channel of the sample being encoded.
    levels: Vec<usize>,
    /// Spatial hypervector per sample; grows to the window length and is
    /// then reused in place.
    spatials: Vec<Hv64>,
    /// One buffer per sliding N-gram of the window (unused when
    /// `ngram == 1`; the spatials feed the query majority directly).
    grams: Vec<Hv64>,
    /// The encoded query of the current window.
    query: Hv64,
}

impl EncodeScratch {
    fn new(n_words32: usize) -> Self {
        Self {
            levels: Vec::new(),
            spatials: Vec::new(),
            grams: Vec::new(),
            query: Hv64::zeros(n_words32),
        }
    }
}

/// The immutable encoding tables of the chain — everything needed to
/// turn a window into its packed query hypervector, shared by the
/// serving and training sessions (and their pool workers) behind an
/// [`Arc`].
struct EncodeCore {
    /// `bound[c][l] = IM[c] ⊕ CIM[l]`, the per-sample bind table.
    bound: Vec<Vec<Hv64>>,
    levels: usize,
    ngram: usize,
    n_words32: usize,
}

impl EncodeCore {
    /// Precomputes the bind table from the model's item memories.
    fn from_parts(im: &hdc::ItemMemory, cim: &hdc::ContinuousItemMemory, ngram: usize) -> Self {
        let levels = cim.n_levels();
        let bound: Vec<Vec<Hv64>> = (0..im.len())
            .map(|c| {
                (0..levels)
                    .map(|l| Hv64::from_binary(&im.get(c).bind(cim.get(l))))
                    .collect()
            })
            .collect();
        Self {
            n_words32: cim.get(0).n_words(),
            bound,
            levels,
            ngram,
        }
    }

    /// Encodes one window into `scratch.query` — the zero-allocation
    /// spatial → temporal chain (see the module docs).
    fn encode_with(
        &self,
        window: &[Vec<u16>],
        scratch: &mut EncodeScratch,
    ) -> Result<(), BackendError> {
        validate_window(window, self.bound.len(), self.ngram)?;
        let EncodeScratch {
            levels,
            spatials,
            grams,
            query,
        } = scratch;
        while spatials.len() < window.len() {
            spatials.push(Hv64::zeros(self.n_words32));
        }
        // Spatial encode: one word-major carry-save majority per sample
        // over the precomputed bind table rows.
        for (t, sample) in window.iter().enumerate() {
            levels.clear();
            levels.extend(sample.iter().map(|&code| quantize_code(code, self.levels)));
            BitslicedBundler::bundle_paper_into(
                sample.len(),
                |c| &self.bound[c][levels[c]],
                &mut spatials[t],
            );
        }
        // Temporal encode: build each sliding N-gram with fused
        // bind-rotates, then bundle all N-grams into the query with a
        // second word-major majority. Unigrams skip the materialization
        // and vote directly over the spatial hypervectors.
        let n = self.ngram;
        let g_count = window.len() - n + 1;
        if n == 1 {
            BitslicedBundler::bundle_paper_into(g_count, |i| &spatials[i], query);
        } else {
            while grams.len() < g_count {
                grams.push(Hv64::zeros(self.n_words32));
            }
            for s in 0..g_count {
                let gram = &mut grams[s];
                gram.copy_from(&spatials[s]);
                for (k, sp) in spatials[s + 1..s + n].iter().enumerate() {
                    gram.xor_rotated(sp, k + 1);
                }
            }
            BitslicedBundler::bundle_paper_into(g_count, |i| &grams[i], query);
        }
        Ok(())
    }
}

/// The immutable, shareable part of a serving session: the encoding
/// tables plus the trained prototypes and the resolved scan and
/// approximation configuration.
struct FastCore {
    enc: EncodeCore,
    prototypes: Vec<Hv64>,
    scan: ScanPolicy,
    /// Threshold-scan acceptance radius in bits (τ·D, resolved at
    /// prepare time); `None` disables threshold early-termination.
    accept: Option<u32>,
    /// Per-participant query-cache capacity; `None` disables caching.
    cache_capacity: Option<usize>,
    /// Session-wide cache telemetry, shared by every participant's
    /// private cache.
    counters: Arc<ApproxCounters>,
}

impl FastCore {
    /// A fresh private query cache for one participant (`None` when the
    /// policy does not cache). Workers respawn theirs after a contained
    /// panic, exactly like their scratch arena.
    fn new_cache(&self) -> Option<QueryCache> {
        self.cache_capacity
            .map(|capacity| QueryCache::new(capacity, Arc::clone(&self.counters)))
    }

    /// The associative-memory search on an already-encoded query.
    fn scan_query(&self, query: &Hv64) -> Verdict {
        let mut distances = Vec::with_capacity(self.prototypes.len());
        // With ≤ 1 prototype there is nothing to prune or skip: every
        // policy degenerates to the full scan, and paying the pruned
        // scan's bookkeeping would be pure loss (the class-sharded
        // one-class-per-shard case — see the module docs).
        let effective = if self.prototypes.len() <= 1 {
            ScanPolicy::Full
        } else {
            self.scan
        };
        let (class, source) = match self.accept {
            Some(accept) if self.prototypes.len() > 1 => {
                // The threshold scan embeds the exact pruning rule for
                // prototypes it cannot accept, so `ScanPolicy` has no
                // further work to do on this arm.
                let (class, accepted) =
                    scan_threshold_into(&self.prototypes, query, accept, &mut distances);
                let source = if accepted {
                    VerdictSource::EarlyAccept
                } else {
                    VerdictSource::Scan
                };
                (class, source)
            }
            _ => match effective {
                ScanPolicy::Full => {
                    distances.extend(self.prototypes.iter().map(|p| p.hamming(query)));
                    (argmin(&distances), VerdictSource::Scan)
                }
                ScanPolicy::Pruned => (
                    scan_pruned_into(&self.prototypes, query, &mut distances),
                    VerdictSource::Scan,
                ),
            },
        };
        Verdict {
            class,
            distances,
            query: query.to_binary(),
            cycles: None,
            source,
        }
    }

    fn classify_with(
        &self,
        window: &[Vec<u16>],
        scratch: &mut EncodeScratch,
        cache: &mut Option<QueryCache>,
    ) -> Result<Verdict, BackendError> {
        self.enc.encode_with(window, scratch)?;
        let query = &scratch.query;
        let Some(cache) = cache.as_mut() else {
            return Ok(self.scan_query(query));
        };
        // Cache rung: signature filter, word-exact verification, replay
        // on a hit; scan-and-remember on a miss.
        let sig = query_signature(query.words());
        if let Some((class, distances)) = cache.lookup(sig, query.words()) {
            return Ok(Verdict {
                class,
                distances,
                query: query.to_binary(),
                cycles: None,
                source: VerdictSource::CacheHit,
            });
        }
        let verdict = self.scan_query(query);
        cache.insert(sig, query.words(), verdict.class, verdict.distances.clone());
        Ok(verdict)
    }
}

/// One chunk of a classification batch, dispatched to a pool worker.
struct ClassifyJob {
    windows: RawWindows,
    /// Window range of this chunk within the batch.
    range: Range<usize>,
    /// Chunk index, for in-order reassembly.
    chunk: usize,
    /// Per-call result channel.
    done: Sender<ChunkResult>,
}

/// A training chunk's completion message: chunk index + the partial
/// per-class counter planes the worker accumulated over its windows.
type TrainChunkResult = (usize, Result<Vec<CounterBundler>, BackendError>);

/// One chunk of a training batch, dispatched to a pool worker: the
/// worker encodes its window range into a **private** set of per-class
/// counter planes and sends the partials back for merging.
struct TrainJob {
    windows: RawWindows,
    labels: RawLabels,
    range: Range<usize>,
    chunk: usize,
    classes: usize,
    done: Sender<TrainChunkResult>,
}

struct FastSession {
    core: Arc<FastCore>,
    /// Arena for single-window calls and inline (non-fanned) batches.
    scratch: EncodeScratch,
    /// The calling thread's private query cache (`None` unless the
    /// approximation policy caches); pool workers own their own.
    cache: Option<QueryCache>,
    /// Handle onto the session-wide cache counters, cloned out through
    /// [`BackendSession::approx_monitor`].
    monitor: Option<ApproxMonitor>,
    pool: WorkerPool<ClassifyJob>,
    /// Worker panics contained so far (telemetry; each one also surfaced
    /// as a [`BackendError::WorkerLost`] to the affected batch).
    caught: Arc<AtomicU64>,
}

impl std::fmt::Debug for FastSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastSession")
            .field("participants", &(self.pool.workers() + 1))
            .field("contained_panics", &self.caught.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FastSession {
    fn fan_out(&self, batch: usize) -> usize {
        fan_out_for(&self.pool, batch, MIN_WINDOWS_PER_WORKER)
    }
}

impl FastSession {
    /// The batched pipeline, writing verdicts straight into `out` (the
    /// calling thread's chunk is pushed as it is computed; worker
    /// chunks are spliced in in order). On error, `out` may hold a
    /// partial prefix — [`classify_batch_into`](BackendSession::
    /// classify_batch_into) rolls it back.
    fn classify_batch_impl(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        let fan_out = self.fan_out(windows.len());
        out.reserve(windows.len());
        if fan_out <= 1 {
            for w in windows {
                out.push(
                    self.core
                        .classify_with(w, &mut self.scratch, &mut self.cache)?,
                );
            }
            return Ok(());
        }
        let chunk = windows.len().div_ceil(fan_out);
        let n_chunks = windows.len().div_ceil(chunk);
        let (done_tx, done_rx) = channel();
        // From the first dispatch on, `drain` guarantees the workers are
        // done with `windows` before this frame can unwind (see
        // `ResultDrain`); every panic below happens under its watch.
        let mut drain = ResultDrain {
            rx: &done_rx,
            tx: Some(done_tx),
            outstanding: 0,
        };
        // Chunks whose worker thread is already gone (its job channel
        // closed — only reachable with containment disabled, since
        // contained workers never die) fall back to the calling thread.
        let mut orphaned: Vec<(usize, Range<usize>)> = Vec::new();
        for idx in 1..n_chunks {
            let range = idx * chunk..((idx + 1) * chunk).min(windows.len());
            let done = drain
                .tx
                .as_ref()
                // INFALLIBLE: `tx` is only taken by `ResultDrain::drop`
                // after dispatch returns, so it is `Some` for the whole
                // dispatch body.
                .expect("dispatcher sender lives through dispatch")
                .clone();
            let job = ClassifyJob {
                windows: RawWindows::of(windows),
                range: range.clone(),
                chunk: idx,
                done,
            };
            if self.pool.senders[idx - 1].send(job).is_err() {
                orphaned.push((idx, range));
            } else {
                drain.outstanding += 1;
            }
        }
        // Only worker-held clones keep the result channel open now, so
        // a dead worker surfaces as a recv error instead of a deadlock.
        drain.tx = None;
        // The calling thread is participant 0, on its warm arena,
        // writing chunk 0 straight into the output buffer.
        let first: Result<(), BackendError> = windows[..chunk].iter().try_for_each(|w| {
            out.push(
                self.core
                    .classify_with(w, &mut self.scratch, &mut self.cache)?,
            );
            Ok(())
        });
        let mut parts: Vec<Option<Result<Vec<Verdict>, BackendError>>> =
            (1..n_chunks).map(|_| None).collect();
        for (idx, range) in orphaned {
            parts[idx - 1] = Some(
                windows[range]
                    .iter()
                    .map(|w| {
                        self.core
                            .classify_with(w, &mut self.scratch, &mut self.cache)
                    })
                    .collect(),
            );
        }
        while drain.outstanding > 0 {
            // A recv error means a worker died mid-job without reporting
            // (all senders gone, so no worker still sees the batch):
            // stop waiting and let the missing chunk surface below.
            let Ok((idx, result)) = drain.rx.recv() else {
                drain.outstanding = 0;
                break;
            };
            drain.outstanding -= 1;
            parts[idx - 1] = Some(result);
        }
        // Chunk-order error precedence, as before: chunk 0 first, then
        // the worker chunks in order.
        first?;
        for (i, part) in parts.into_iter().enumerate() {
            out.extend(part.unwrap_or_else(|| {
                Err(BackendError::WorkerLost {
                    chunk: i + 1,
                    panic: "worker thread terminated before reporting".into(),
                })
            })?);
        }
        Ok(())
    }
}

impl BackendSession for FastSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        self.core
            .classify_with(window, &mut self.scratch, &mut self.cache)
    }

    fn classify_batch(&mut self, windows: &[Vec<Vec<u16>>]) -> Result<Vec<Verdict>, BackendError> {
        let mut out = Vec::with_capacity(windows.len());
        self.classify_batch_into(windows, &mut out)?;
        Ok(out)
    }

    /// The real into-buffer pipeline: the inline path and the calling
    /// thread's chunk push verdicts directly into `out` with no
    /// intermediate vector, so a long-lived caller reusing one buffer
    /// (the serving micro-batcher) allocates nothing for the batch
    /// container after warm-up.
    fn classify_batch_into(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        let start = out.len();
        let result = self.classify_batch_impl(windows, out);
        if result.is_err() {
            // Keep the documented contract: `out` unchanged on error.
            out.truncate(start);
        }
        result
    }

    fn approx_monitor(&self) -> Option<ApproxMonitor> {
        self.monitor.clone()
    }
}

/// The throughput training session: the same packed encode chain and
/// persistent worker pool as the serving side, feeding per-class
/// [`CounterBundler`] counter planes instead of an AM scan.
///
/// * **Batch training** fans the batch out exactly like
///   `classify_batch`: workers encode disjoint chunks into *private*
///   partial counter planes (no shared mutable state, no locks), which
///   the calling thread then merges via bit-sliced sideways addition
///   and thresholds once. Counter addition is commutative, so the
///   trained prototypes are bit-identical to sequential golden
///   training regardless of the split.
/// * **Online updates** are incremental: one sideways addition into the
///   class's counters plus one vectorized re-threshold of that class
///   against its precomputed seeded tie vector — no other class is
///   touched, no tie vector is ever regenerated.
///
/// Prototypes re-threshold lazily ([`finalize`](TrainingSession::
/// finalize) or the classification inside `update_online` pay the cost
/// only for classes whose counters changed).
///
/// `pub(super)` so the [`sharded`](super::sharded) backend can run one
/// of these per shard and reduce their counter partials ([`take_
/// partials`](Self::take_partials) / [`absorb_partials`](Self::
/// absorb_partials)) — the same commutative merge that already joins
/// this session's own worker partials.
pub(super) struct FastTrainingSession {
    enc: Arc<EncodeCore>,
    counters: Vec<CounterBundler>,
    prototypes: Vec<Hv64>,
    stale: Vec<bool>,
    /// Per-class seeded tie vectors (see `begin_training_with_participants`).
    ties: Vec<Hv64>,
    /// Arena for inline encoding (single windows, non-fanned batches).
    scratch: EncodeScratch,
    pool: WorkerPool<TrainJob>,
    /// Worker panics contained so far (telemetry; each one also surfaced
    /// as a [`BackendError::WorkerLost`] to the affected batch).
    caught: Arc<AtomicU64>,
    spec: TrainSpec,
    /// The backend configuration, for the serving hand-off.
    backend: FastBackend,
}

impl std::fmt::Debug for FastTrainingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastTrainingSession")
            .field("participants", &(self.pool.workers() + 1))
            .field("classes", &self.counters.len())
            .field("contained_panics", &self.caught.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl FastTrainingSession {
    /// Re-thresholds every stale non-empty class.
    fn refresh_prototypes(&mut self) {
        for class in 0..self.counters.len() {
            if self.stale[class] && !self.counters[class].is_empty() {
                self.counters[class]
                    .majority_seeded_into(&self.ties[class], &mut self.prototypes[class]);
                self.stale[class] = false;
            }
        }
    }

    /// Encodes and accumulates one window inline on the calling thread.
    fn train_inline(&mut self, window: &[Vec<u16>], label: usize) -> Result<(), BackendError> {
        validate_label(label, self.counters.len())?;
        self.enc.encode_with(window, &mut self.scratch)?;
        self.counters[label].add(&self.scratch.query);
        self.stale[label] = true;
        Ok(())
    }

    /// Takes every accumulated per-class counter plane out of this
    /// session, leaving it empty (fresh bundlers, nothing stale) — the
    /// shard-side half of the sharded-training reduction.
    pub(super) fn take_partials(&mut self) -> Vec<CounterBundler> {
        for stale in &mut self.stale {
            *stale = false;
        }
        let fresh: Vec<CounterBundler> = self
            .counters
            .iter()
            .map(|c| CounterBundler::new(c.n_words32()))
            .collect();
        std::mem::replace(&mut self.counters, fresh)
    }

    /// Merges another session's taken partials into this session's
    /// counters (commutative, so the reduced counters equal sequential
    /// accumulation of both example streams in any order).
    pub(super) fn absorb_partials(&mut self, partials: &[CounterBundler]) {
        for (class, partial) in partials.iter().enumerate() {
            if !partial.is_empty() {
                self.counters[class].merge(partial);
                self.stale[class] = true;
            }
        }
    }
}

impl TrainingSession for FastTrainingSession {
    fn train(&mut self, window: &[Vec<u16>], label: usize) -> Result<(), BackendError> {
        self.train_inline(window, label)
    }

    fn train_batch(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        labels: &[usize],
    ) -> Result<(), BackendError> {
        if windows.len() != labels.len() {
            return Err(BackendError::Input(format!(
                "batch of {} windows carries {} labels",
                windows.len(),
                labels.len()
            )));
        }
        let fan_out = fan_out_for(&self.pool, windows.len(), MIN_WINDOWS_PER_WORKER);
        if fan_out <= 1 {
            return windows
                .iter()
                .zip(labels)
                .try_for_each(|(w, &l)| self.train_inline(w, l));
        }
        let chunk = windows.len().div_ceil(fan_out);
        let n_chunks = windows.len().div_ceil(chunk);
        let (done_tx, done_rx) = channel();
        // Same unwind contract as `classify_batch`: `drain` keeps this
        // frame alive until no worker can still see the borrows.
        let mut drain = ResultDrain {
            rx: &done_rx,
            tx: Some(done_tx),
            outstanding: 0,
        };
        // Chunks whose worker thread is already gone train inline on the
        // calling thread (only reachable with containment disabled).
        let mut orphaned: Vec<Range<usize>> = Vec::new();
        for idx in 1..n_chunks {
            let range = idx * chunk..((idx + 1) * chunk).min(windows.len());
            let done = drain
                .tx
                .as_ref()
                // INFALLIBLE: `tx` is only taken by `ResultDrain::drop`
                // after dispatch returns, so it is `Some` for the whole
                // dispatch body.
                .expect("dispatcher sender lives through dispatch")
                .clone();
            let job = TrainJob {
                windows: RawWindows::of(windows),
                labels: RawLabels::of(labels),
                range: range.clone(),
                chunk: idx,
                classes: self.counters.len(),
                done,
            };
            if self.pool.senders[idx - 1].send(job).is_err() {
                orphaned.push(range);
            } else {
                drain.outstanding += 1;
            }
        }
        drain.tx = None;
        // The calling thread works chunk 0 straight into the session
        // counters (merge order is irrelevant: counts are commutative).
        let mut first_error = windows[..chunk]
            .iter()
            .zip(&labels[..chunk])
            .try_for_each(|(w, &l)| self.train_inline(w, l))
            .err();
        for range in orphaned {
            let err = range
                .clone()
                .try_for_each(|i| self.train_inline(&windows[i], labels[i]))
                .err();
            first_error = first_error.or(err);
        }
        let mut lost = 0;
        while drain.outstanding > 0 {
            // A recv error means a worker died mid-job without reporting
            // (all senders gone, so no worker still sees the batch).
            let Ok((_, result)) = drain.rx.recv() else {
                lost = drain.outstanding;
                drain.outstanding = 0;
                break;
            };
            drain.outstanding -= 1;
            match result {
                Ok(partials) => {
                    for (class, partial) in partials.iter().enumerate() {
                        if !partial.is_empty() {
                            self.counters[class].merge(partial);
                            self.stale[class] = true;
                        }
                    }
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if lost > 0 {
            first_error = first_error.or(Some(BackendError::WorkerLost {
                chunk: 0,
                panic: format!("{lost} training worker(s) terminated before reporting"),
            }));
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn update_online(
        &mut self,
        window: &[Vec<u16>],
        label: usize,
    ) -> Result<Verdict, BackendError> {
        validate_label(label, self.counters.len())?;
        self.enc.encode_with(window, &mut self.scratch)?;
        self.refresh_prototypes();
        let query = &self.scratch.query;
        let mut distances = Vec::with_capacity(self.prototypes.len());
        distances.extend(self.prototypes.iter().map(|p| p.hamming(query)));
        let class = argmin(&distances);
        let verdict = Verdict {
            class,
            distances,
            query: query.to_binary(),
            cycles: None,
            source: VerdictSource::Scan,
        };
        // Incremental adaptation: one sideways addition + one vectorized
        // re-threshold of this class only.
        self.counters[label].add(&self.scratch.query);
        self.counters[label].majority_seeded_into(&self.ties[label], &mut self.prototypes[label]);
        self.stale[label] = false;
        Ok(verdict)
    }

    fn examples(&self, class: usize) -> u32 {
        self.counters[class].len()
    }

    fn finalize(&mut self) -> Result<HdModel, BackendError> {
        self.refresh_prototypes();
        HdModel::new(
            self.spec.cim().clone(),
            self.spec.im().clone(),
            self.prototypes.iter().map(Hv64::to_binary).collect(),
            self.spec.ngram(),
        )
    }

    fn reset(&mut self) {
        for (counter, (prototype, stale)) in self
            .counters
            .iter_mut()
            .zip(self.prototypes.iter_mut().zip(&mut self.stale))
        {
            counter.clear();
            *prototype = Hv64::zeros(counter.n_words32());
            *stale = false;
        }
    }

    fn into_serving(mut self: Box<Self>) -> Result<Box<dyn BackendSession>, BackendError> {
        let model = self.finalize()?;
        self.backend.prepare(&model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GoldenBackend;
    use crate::layout::AccelParams;
    use hdc::rng::Xoshiro256PlusPlus;

    fn random_windows(
        params: &AccelParams,
        samples: usize,
        count: usize,
        seed: u64,
    ) -> Vec<Vec<Vec<u16>>> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// A session with a real worker pool of the given size, regardless
    /// of how many CPUs the test host has — the pool path must be
    /// exercised even on single-CPU machines.
    fn pooled_session(backend: FastBackend, model: &HdModel, participants: usize) -> FastSession {
        backend
            .prepare_with_participants(model, participants)
            .unwrap()
    }

    /// The decisive property: fast == golden, bit for bit, across
    /// random shapes and inputs.
    #[test]
    fn bit_identical_to_golden_across_shapes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xFA57_BACC);
        for case in 0..24 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                levels: 2 + rng.next_below(28) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(5) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            let windows = random_windows(&params, samples, 6, rng.next_u64());
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let mut fast = FastBackend::with_threads(3).prepare(&model).unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            let got = fast.classify_batch(&windows).unwrap();
            assert_eq!(got, expected, "case {case} with {params:?}");
        }
    }

    /// The pool path itself (forced fan-out, real worker threads) is
    /// bit-identical to the inline path and to golden.
    #[test]
    fn worker_pool_path_matches_golden_and_inline() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x9001_1234);
        for case in 0..6 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(6) as usize,
                levels: 2 + rng.next_below(20) as usize,
                ngram: 1 + rng.next_below(3) as usize,
                classes: 2 + rng.next_below(5) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            // Big enough that a 4-participant session genuinely fans out.
            let windows = random_windows(
                &params,
                samples,
                4 * MIN_WINDOWS_PER_WORKER + 3,
                rng.next_u64(),
            );
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let mut pooled = pooled_session(FastBackend::with_threads(4), &model, 4);
            assert_eq!(pooled.fan_out(windows.len()), 4, "must exercise the pool");
            let expected = golden.classify_batch(&windows).unwrap();
            let got = pooled.classify_batch(&windows).unwrap();
            assert_eq!(got, expected, "case {case} with {params:?}");
        }
    }

    /// One session, many batches: the persistent pool and its warm
    /// per-worker arenas must not leak state between batches (varying
    /// batch sizes cross the inline/fan-out cutover repeatedly).
    #[test]
    fn pool_is_reusable_across_batches_of_varying_size() {
        let params = AccelParams {
            n_words: 12,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 88);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut pooled = pooled_session(FastBackend::with_threads(3), &model, 3);
        for (round, count) in [40usize, 1, 25, 3, 64, 0, 17].iter().enumerate() {
            let windows = random_windows(&params, 4, *count, 500 + round as u64);
            let expected = golden.classify_batch(&windows).unwrap();
            let got = pooled.classify_batch(&windows).unwrap();
            assert_eq!(got, expected, "round {round} with {count} windows");
        }
    }

    /// Panic isolation on the serving pool: a job that panics inside a
    /// worker (an out-of-range chunk crafted straight at the worker's
    /// job channel) comes back as a typed [`BackendError::WorkerLost`],
    /// the containment counter ticks, and the *same* worker keeps
    /// serving subsequent batches bit-identically to golden.
    #[test]
    fn contained_worker_panic_surfaces_as_worker_lost_and_pool_survives() {
        crate::backend::pool::silence_expected_panics();
        let params = AccelParams {
            n_words: 6,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 21);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut session = pooled_session(FastBackend::with_threads(2), &model, 2);
        let windows = random_windows(&params, 3, 4, 77);
        let (done_tx, done_rx) = channel();
        session.pool.senders[0]
            .send(ClassifyJob {
                windows: RawWindows::of(&windows),
                range: 0..windows.len() + 9,
                chunk: 1,
                done: done_tx,
            })
            .unwrap();
        let (chunk, result) = done_rx.recv().unwrap();
        assert_eq!(chunk, 1);
        match result {
            Err(BackendError::WorkerLost { chunk: 1, panic }) => {
                assert!(panic.contains("out of range"), "{panic}");
            }
            other => panic!("expected WorkerLost, got {other:?}"),
        }
        assert_eq!(session.caught.load(Ordering::Relaxed), 1);
        // Same pool, same worker thread: fanned batches still work.
        let batch = random_windows(&params, 3, 2 * MIN_WINDOWS_PER_WORKER, 78);
        assert_eq!(session.fan_out(batch.len()), 2);
        assert_eq!(
            session.classify_batch(&batch).unwrap(),
            golden.classify_batch(&batch).unwrap()
        );
    }

    /// Panic isolation on the training pool: the worker rebuilds its
    /// arena after a contained panic and later batches still train
    /// bit-identically to golden.
    #[test]
    fn contained_training_panic_surfaces_as_worker_lost_and_session_recovers() {
        crate::backend::pool::silence_expected_panics();
        let params = AccelParams {
            n_words: 6,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 31);
        let mut session = FastBackend::with_threads(2)
            .begin_training_with_participants(&spec, 2)
            .unwrap();
        let windows = random_windows(&params, 3, 4, 91);
        let labels = vec![0usize; windows.len()];
        let (done_tx, done_rx) = channel();
        session.pool.senders[0]
            .send(TrainJob {
                windows: RawWindows::of(&windows),
                labels: RawLabels::of(&labels),
                range: 0..windows.len() + 5,
                chunk: 1,
                classes: spec.classes(),
                done: done_tx,
            })
            .unwrap();
        let (chunk, result) = done_rx.recv().unwrap();
        assert_eq!(chunk, 1);
        assert!(matches!(
            result,
            Err(BackendError::WorkerLost { chunk: 1, .. })
        ));
        assert_eq!(session.caught.load(Ordering::Relaxed), 1);
        // The failed job accumulated nothing; a clean fanned batch now
        // matches sequential golden training exactly.
        let count = 2 * MIN_WINDOWS_PER_WORKER;
        let batch = random_windows(&params, 3, count, 92);
        let labels: Vec<usize> = (0..count).map(|i| i % spec.classes()).collect();
        session.train_batch(&batch, &labels).unwrap();
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        golden.train_batch(&batch, &labels).unwrap();
        assert_eq!(
            session.finalize().unwrap().prototypes(),
            golden.finalize().unwrap().prototypes()
        );
    }

    /// With containment disabled (the bench-only knob) a panicking job
    /// kills its worker for good — and the dispatcher then detects the
    /// closed job channel and runs the orphaned chunk inline, so the
    /// session still serves correct verdicts on a shrunken pool.
    #[test]
    fn without_containment_a_dead_worker_falls_back_inline() {
        crate::backend::pool::silence_expected_panics();
        let params = AccelParams {
            n_words: 6,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 41);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut session = pooled_session(
            FastBackend::with_threads(2).without_containment(),
            &model,
            2,
        );
        let windows = random_windows(&params, 3, 4, 55);
        let (done_tx, done_rx) = channel();
        session.pool.senders[0]
            .send(ClassifyJob {
                windows: RawWindows::of(&windows),
                range: 0..windows.len() + 9,
                chunk: 1,
                done: done_tx,
            })
            .unwrap();
        // The worker unwound without reporting.
        assert!(done_rx.recv().is_err());
        assert_eq!(session.caught.load(Ordering::Relaxed), 0);
        let batch = random_windows(&params, 3, 2 * MIN_WINDOWS_PER_WORKER, 56);
        let expected = golden.classify_batch(&batch).unwrap();
        // The dying worker's job channel closes only once its unwind
        // finishes; until then a dispatched chunk surfaces as the typed
        // WorkerLost (never a hang, never a process panic), after which
        // every batch falls back inline.
        let verdicts = loop {
            match session.classify_batch(&batch) {
                Ok(v) => break v,
                Err(e) => {
                    assert!(matches!(e, BackendError::WorkerLost { .. }), "{e}");
                    std::thread::yield_now();
                }
            }
        };
        assert_eq!(verdicts, expected);
    }

    /// The adaptive cutover: small batches stay inline, large batches
    /// use every participant, and nobody gets less than the minimum
    /// chunk.
    #[test]
    fn fan_out_heuristic_scales_with_batch_size() {
        let params = AccelParams {
            n_words: 4,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 5);
        let session = pooled_session(FastBackend::with_threads(4), &model, 4);
        assert_eq!(session.pool.workers(), 3);
        assert_eq!(session.fan_out(0), 1);
        assert_eq!(session.fan_out(1), 1);
        assert_eq!(session.fan_out(MIN_WINDOWS_PER_WORKER), 1);
        assert_eq!(session.fan_out(2 * MIN_WINDOWS_PER_WORKER), 2);
        assert_eq!(session.fan_out(4 * MIN_WINDOWS_PER_WORKER), 4);
        assert_eq!(session.fan_out(100 * MIN_WINDOWS_PER_WORKER), 4);
        // A single-participant session never fans out.
        let solo = pooled_session(FastBackend::with_threads(1), &model, 1);
        assert_eq!(solo.pool.workers(), 0);
        assert_eq!(solo.fan_out(usize::MAX), 1);
    }

    /// The pruned scan trades distance exactness for speed but must
    /// never change the decision, the query, or the winning distance.
    #[test]
    fn pruned_scan_keeps_class_and_query_identical_to_golden() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x9127_BEEF);
        for case in 0..24 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                levels: 2 + rng.next_below(28) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(6) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            let windows = random_windows(&params, samples, 6, rng.next_u64());
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let mut pruned = FastBackend::with_threads(3)
                .with_scan(ScanPolicy::Pruned)
                .prepare(&model)
                .unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            let got = pruned.classify_batch(&windows).unwrap();
            for (i, (p, g)) in got.iter().zip(&expected).enumerate() {
                let ctx = format!("case {case} window {i} with {params:?}");
                assert_eq!(p.class, g.class, "{ctx}: class");
                assert_eq!(p.query, g.query, "{ctx}: query");
                assert_eq!(
                    p.distances[p.class], g.distances[g.class],
                    "{ctx}: winning distance"
                );
                for (k, (&pd, &gd)) in p.distances.iter().zip(&g.distances).enumerate() {
                    assert!(
                        pd <= gd,
                        "{ctx}: class {k} pruned distance is a lower bound"
                    );
                    if k != p.class {
                        assert!(
                            pd >= g.distances[g.class],
                            "{ctx}: class {k} cannot undercut the winner"
                        );
                    }
                }
            }
        }
    }

    /// Adversarial tie-heavy AM: identical and near-identical prototypes
    /// force exact ties, which must resolve to the first minimum under
    /// both scan policies.
    #[test]
    fn pruned_scan_survives_tie_heavy_prototype_sets() {
        let params = AccelParams {
            n_words: 8,
            channels: 4,
            levels: 8,
            ngram: 2,
            classes: 6,
        };
        let mut base = HdModel::random(&params, 77);
        // Duplicate prototype 0 into slots 1 and 3, and give slot 4 a
        // one-bit variation: distances collide exactly.
        let protos = base.prototypes().to_vec();
        let mut rigged = protos.clone();
        rigged[1] = protos[0].clone();
        rigged[3] = protos[0].clone();
        let mut nearly = protos[0].clone();
        nearly.set_bit(17, !nearly.bit(17));
        rigged[4] = nearly;
        base = HdModel::new(base.cim().clone(), base.im().clone(), rigged, params.ngram).unwrap();
        let windows = random_windows(&params, 4, 24, 3);
        let mut golden = GoldenBackend.prepare(&base).unwrap();
        let mut pruned = FastBackend::with_threads(2)
            .with_scan(ScanPolicy::Pruned)
            .prepare(&base)
            .unwrap();
        let expected = golden.classify_batch(&windows).unwrap();
        let got = pruned.classify_batch(&windows).unwrap();
        for (i, (p, g)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(p.class, g.class, "window {i}: tie-break order diverged");
            assert_eq!(
                p.distances[p.class], g.distances[g.class],
                "window {i}: winning distance"
            );
        }
    }

    #[test]
    fn batch_order_is_preserved_across_participant_counts() {
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 11);
        let windows = random_windows(&params, 1, 37, 5);
        let mut one = FastBackend::with_threads(1).prepare(&model).unwrap();
        let sequential = one.classify_batch(&windows).unwrap();
        for participants in [2usize, 4, 8] {
            let mut many = pooled_session(
                FastBackend::with_threads(participants),
                &model,
                participants,
            );
            assert_eq!(
                many.classify_batch(&windows).unwrap(),
                sequential,
                "{participants} participants"
            );
        }
    }

    /// The session arena must not leak state between windows of
    /// different lengths (growing and shrinking windows reuse slots).
    #[test]
    fn scratch_reuse_across_varying_window_lengths() {
        let params = AccelParams {
            n_words: 12,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 31);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut fast = FastBackend::with_threads(1).prepare(&model).unwrap();
        // One session, windows of wildly varying lengths, interleaved.
        for (i, len) in [7usize, 2, 5, 2, 9, 3, 2, 8].iter().enumerate() {
            let w = random_windows(&params, *len, 1, 1000 + i as u64).remove(0);
            let g = golden.classify(&w).unwrap();
            let f = fast.classify(&w).unwrap();
            assert_eq!(f, g, "window {i} of {len} samples");
        }
    }

    #[test]
    fn batch_surfaces_input_errors_inline_and_pooled() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 2);
        // Inline path (batch below the fan-out cutover).
        let mut session = FastBackend::with_threads(4).prepare(&model).unwrap();
        let mut windows = random_windows(&params, 1, 8, 3);
        windows[5] = vec![vec![0u16; 3]]; // wrong channel count
        assert!(matches!(
            session.classify_batch(&windows),
            Err(BackendError::Input(_))
        ));
        // Pool path: the bad window sits in a worker's chunk.
        let mut pooled = pooled_session(FastBackend::with_threads(4), &model, 4);
        let mut windows = random_windows(&params, 1, 4 * MIN_WINDOWS_PER_WORKER, 3);
        let last = windows.len() - 1;
        windows[last] = vec![vec![0u16; 3]];
        assert!(matches!(
            pooled.classify_batch(&windows),
            Err(BackendError::Input(_))
        ));
        // The pool survives the failed batch and still classifies.
        let windows = random_windows(&params, 1, 4 * MIN_WINDOWS_PER_WORKER, 9);
        assert_eq!(
            pooled.classify_batch(&windows).unwrap().len(),
            windows.len()
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 2);
        let mut session = FastBackend::new().prepare(&model).unwrap();
        assert!(session.classify_batch(&[]).unwrap().is_empty());
    }

    /// The training twin of `empty_batch_is_fine`: an empty training
    /// batch is a no-op on both backends — no panic, no counter change.
    #[test]
    fn empty_train_batch_is_fine_on_both_backends() {
        use crate::backend::TrainableBackend as _;
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 2);
        let sessions: Vec<Box<dyn TrainingSession>> = vec![
            GoldenBackend.begin_training(&spec).unwrap(),
            FastBackend::with_threads(4).begin_training(&spec).unwrap(),
        ];
        for mut session in sessions {
            session.train_batch(&[], &[]).unwrap();
            for class in 0..params.classes {
                assert_eq!(session.examples(class), 0, "class {class}");
            }
            // An empty batch between real batches must not disturb state.
            let windows = random_windows(&params, 1, 4, 3);
            let labels = random_labels(4, params.classes, 4);
            session.train_batch(&windows, &labels).unwrap();
            session.train_batch(&[], &[]).unwrap();
            session.finalize().unwrap();
        }
    }

    /// `update_online` against a completely untrained session (and
    /// against classes that never saw an example) returns cleanly on
    /// both backends, with identical verdicts and identical adapted
    /// prototypes.
    #[test]
    fn update_online_on_untrained_session_is_fine_on_both_backends() {
        use crate::backend::TrainableBackend as _;
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 7);
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        let mut fast = FastBackend::with_threads(2).begin_training(&spec).unwrap();
        let window = &random_windows(&params, 2, 1, 11)[0];
        // First-ever call on a fresh session: all prototypes are still
        // zero, the verdict is well-defined (class 0 wins ties).
        let g = golden.update_online(window, 1).unwrap();
        let f = fast.update_online(window, 1).unwrap();
        assert_eq!(f, g, "untrained verdicts");
        assert_eq!(g.class, 0, "all-zero prototypes tie to class 0");
        // Classes 0 and 2 still have zero examples; finalize keeps their
        // prototypes all-zero, exactly like the golden AM.
        let gm = golden.finalize().unwrap();
        let fm = fast.finalize().unwrap();
        assert_eq!(fm.prototypes(), gm.prototypes(), "adapted prototypes");
        assert_eq!(golden.examples(0), 0);
        assert_eq!(fast.examples(0), 0);
        assert!(
            fm.prototypes()[0].words().iter().all(|&w| w == 0),
            "untrained class keeps an all-zero prototype"
        );
    }

    /// Oversubscription: sessions with far more pool participants than
    /// the batch has windows must stay correct (the adaptive cutover
    /// keeps tiny batches inline; medium batches use only part of the
    /// pool) — for classification and training alike.
    #[test]
    fn oversubscribed_pool_handles_small_batches() {
        use crate::backend::TrainableBackend as _;
        let params = AccelParams {
            n_words: 5, // odd u32 count: the packed tail is a half word
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 21);
        let spec = TrainSpec::random(&params, 21);
        let participants = 8;
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut pooled = pooled_session(
            FastBackend::with_threads(participants),
            &model,
            participants,
        );
        let mut golden_train = GoldenBackend.begin_training(&spec).unwrap();
        let mut pooled_train =
            pooled_training(FastBackend::with_threads(participants), &spec, participants);
        // 0 and 1: degenerate; 3: fewer windows than workers; 2*MIN:
        // fans out to 2 of 8 participants; 2*MIN+1: uneven tail chunk.
        for (round, count) in [
            0usize,
            1,
            3,
            2 * MIN_WINDOWS_PER_WORKER,
            2 * MIN_WINDOWS_PER_WORKER + 1,
        ]
        .iter()
        .enumerate()
        {
            let windows = random_windows(&params, 3, *count, 700 + round as u64);
            let labels = random_labels(*count, params.classes, 800 + round as u64);
            assert!(
                pooled.fan_out(*count) <= participants,
                "round {round}: no more chunks than participants"
            );
            assert_eq!(
                pooled.classify_batch(&windows).unwrap(),
                golden.classify_batch(&windows).unwrap(),
                "round {round}: classification with {count} windows"
            );
            golden_train.train_batch(&windows, &labels).unwrap();
            pooled_train.train_batch(&windows, &labels).unwrap();
            assert_eq!(
                pooled_train.finalize().unwrap().prototypes(),
                golden_train.finalize().unwrap().prototypes(),
                "round {round}: training with {count} windows"
            );
        }
    }

    /// The into-buffer batch entry point appends in order (across
    /// repeated calls on one warm buffer), matches `classify_batch`
    /// exactly, and leaves the buffer untouched on error — on the
    /// inline and the pooled path alike.
    #[test]
    fn classify_batch_into_appends_and_rolls_back_on_error() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 6);
        let mut pooled = pooled_session(FastBackend::with_threads(4), &model, 4);
        let small = random_windows(&params, 1, 3, 1); // inline path
        let large = random_windows(&params, 1, 4 * MIN_WINDOWS_PER_WORKER, 2); // pool path
        let mut out = Vec::new();
        pooled.classify_batch_into(&small, &mut out).unwrap();
        pooled.classify_batch_into(&large, &mut out).unwrap();
        let mut expected = pooled.classify_batch(&small).unwrap();
        expected.extend(pooled.classify_batch(&large).unwrap());
        assert_eq!(out, expected, "appended across calls, in order");
        // Errors roll the buffer back to its pre-call state, from both
        // paths.
        for count in [3usize, 4 * MIN_WINDOWS_PER_WORKER] {
            let mut bad = random_windows(&params, 1, count, 3);
            let last = bad.len() - 1;
            bad[last] = vec![vec![0u16; 3]]; // wrong channel count
            let before = out.clone();
            assert!(matches!(
                pooled.classify_batch_into(&bad, &mut out),
                Err(BackendError::Input(_))
            ));
            assert_eq!(out, before, "{count} windows: buffer unchanged on error");
        }
    }

    /// `try_with_threads` is the fallible twin of `with_threads`: same
    /// backend on valid input, `BackendError::Config` instead of a panic
    /// on zero.
    #[test]
    fn try_with_threads_rejects_zero_without_panicking() {
        assert!(matches!(
            FastBackend::try_with_threads(0),
            Err(BackendError::Config(_))
        ));
        let backend = FastBackend::try_with_threads(3).unwrap();
        assert_eq!(backend.threads(), 3);
        assert_eq!(backend.scan(), ScanPolicy::Full);
    }

    /// Dropping a session joins its workers without hanging, even when
    /// jobs ran beforehand.
    #[test]
    fn dropping_a_session_shuts_the_pool_down() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 7);
        let mut pooled = pooled_session(FastBackend::with_threads(4), &model, 4);
        let windows = random_windows(&params, 1, 4 * MIN_WINDOWS_PER_WORKER, 1);
        pooled.classify_batch(&windows).unwrap();
        drop(pooled); // must not deadlock or leak threads
    }

    /// Random labels for a training batch.
    fn random_labels(count: usize, classes: usize, seed: u64) -> Vec<usize> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|_| rng.next_below(classes as u32) as usize)
            .collect()
    }

    /// A training session with a real worker pool of the given size,
    /// regardless of host CPU count.
    fn pooled_training(
        backend: FastBackend,
        spec: &TrainSpec,
        participants: usize,
    ) -> FastTrainingSession {
        backend
            .begin_training_with_participants(spec, participants)
            .unwrap()
    }

    /// The decisive training property: fast-trained prototypes (inline
    /// and through the real worker pool) are bit-identical to golden
    /// training across random shapes, inputs, and splits.
    #[test]
    fn training_is_bit_identical_to_golden_across_shapes() {
        use crate::backend::TrainableBackend as _;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x7A41_0001);
        for case in 0..10 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(6) as usize,
                levels: 2 + rng.next_below(20) as usize,
                ngram: 1 + rng.next_below(3) as usize,
                classes: 2 + rng.next_below(5) as usize,
            };
            let spec = TrainSpec::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(3) as usize;
            let count = 4 * MIN_WINDOWS_PER_WORKER + rng.next_below(9) as usize;
            let windows = random_windows(&params, samples, count, rng.next_u64());
            let labels = random_labels(count, params.classes, rng.next_u64());

            let mut golden = GoldenBackend.begin_training(&spec).unwrap();
            golden.train_batch(&windows, &labels).unwrap();
            let expected = golden.finalize().unwrap();

            // Inline (single participant) …
            let mut inline = pooled_training(FastBackend::with_threads(1), &spec, 1);
            inline.train_batch(&windows, &labels).unwrap();
            let got_inline = inline.finalize().unwrap();
            assert_eq!(
                got_inline.prototypes(),
                expected.prototypes(),
                "case {case} inline with {params:?}"
            );

            // … and through a genuinely fanned-out pool.
            let mut pooled = pooled_training(FastBackend::with_threads(4), &spec, 4);
            assert_eq!(
                fan_out_for(&pooled.pool, count, MIN_WINDOWS_PER_WORKER),
                4,
                "must exercise pool"
            );
            pooled.train_batch(&windows, &labels).unwrap();
            let got_pooled = pooled.finalize().unwrap();
            assert_eq!(
                got_pooled.prototypes(),
                expected.prototypes(),
                "case {case} pooled with {params:?}"
            );
            for class in 0..params.classes {
                assert_eq!(
                    pooled.examples(class),
                    labels.iter().filter(|&&l| l == class).count() as u32,
                    "case {case} class {class}: example count"
                );
            }
        }
    }

    /// Adversarial tie-rigged training: duplicated and complemented
    /// windows force exact counter ties, which must resolve through the
    /// same seeded tie vectors as the golden associative memory.
    #[test]
    fn training_ties_resolve_identically_to_golden() {
        use crate::backend::TrainableBackend as _;
        let params = AccelParams {
            n_words: 8,
            channels: 4,
            levels: 6,
            ngram: 1,
            classes: 3,
        };
        let spec = TrainSpec::random(&params, 0x7E11);
        // Two distinct windows per class, each added an equal number of
        // times: every component where their encodings differ is an
        // exact tie.
        let a = random_windows(&params, 2, 1, 100).remove(0);
        let b = random_windows(&params, 2, 1, 200).remove(0);
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3 {
            for _ in 0..2 + class {
                windows.push(a.clone());
                labels.push(class);
                windows.push(b.clone());
                labels.push(class);
            }
        }
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        golden.train_batch(&windows, &labels).unwrap();
        let expected = golden.finalize().unwrap();
        let mut fast = pooled_training(FastBackend::with_threads(4), &spec, 4);
        fast.train_batch(&windows, &labels).unwrap();
        let got = fast.finalize().unwrap();
        assert_eq!(got.prototypes(), expected.prototypes());
    }

    /// One training session, many batches and online updates, crossing
    /// the inline/fan-out cutover: state accumulates exactly like the
    /// golden reference, and `reset` starts over cleanly.
    #[test]
    fn training_session_accumulates_and_resets_like_golden() {
        use crate::backend::TrainableBackend as _;
        let params = AccelParams {
            n_words: 12,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 88);
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        let mut fast = pooled_training(FastBackend::with_threads(3), &spec, 3);
        for (round, count) in [40usize, 1, 25, 3, 64, 0, 17].iter().enumerate() {
            let windows = random_windows(&params, 4, *count, 600 + round as u64);
            let labels = random_labels(*count, params.classes, 900 + round as u64);
            golden.train_batch(&windows, &labels).unwrap();
            fast.train_batch(&windows, &labels).unwrap();
            assert_eq!(
                fast.finalize().unwrap().prototypes(),
                golden.finalize().unwrap().prototypes(),
                "round {round} with {count} windows"
            );
        }
        // Online updates after batch training: verdicts and adapted
        // prototypes stay identical.
        let stream = random_windows(&params, 4, 12, 4_321);
        let stream_labels = random_labels(12, params.classes, 1_234);
        for (i, (w, &l)) in stream.iter().zip(&stream_labels).enumerate() {
            let g = golden.update_online(w, l).unwrap();
            let f = fast.update_online(w, l).unwrap();
            assert_eq!(f, g, "update {i}");
        }
        assert_eq!(
            fast.finalize().unwrap().prototypes(),
            golden.finalize().unwrap().prototypes(),
            "after online updates"
        );
        // Reset and retrain from scratch.
        fast.reset();
        golden.reset();
        for class in 0..params.classes {
            assert_eq!(fast.examples(class), 0, "class {class} after reset");
        }
        let windows = random_windows(&params, 4, 20, 77);
        let labels = random_labels(20, params.classes, 78);
        golden.train_batch(&windows, &labels).unwrap();
        fast.train_batch(&windows, &labels).unwrap();
        assert_eq!(
            fast.finalize().unwrap().prototypes(),
            golden.finalize().unwrap().prototypes(),
            "after reset"
        );
    }

    /// `into_serving` classifies exactly like preparing the finalized
    /// model by hand — the one-shot train → deploy path.
    #[test]
    fn training_hands_off_to_bit_identical_serving_session() {
        use crate::backend::TrainableBackend as _;
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 3);
        let windows = random_windows(&params, 3, 40, 5);
        let labels = random_labels(40, params.classes, 6);
        let mut trainer = FastBackend::with_threads(2).begin_training(&spec).unwrap();
        trainer.train_batch(&windows, &labels).unwrap();
        let model = trainer.finalize().unwrap();
        let mut direct = trainer.into_serving().unwrap();
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let probes = random_windows(&params, 3, 10, 9);
        assert_eq!(
            direct.classify_batch(&probes).unwrap(),
            golden.classify_batch(&probes).unwrap()
        );
    }

    /// Training surfaces bad labels and malformed windows from both the
    /// inline and the pooled path, and the pool survives the failure.
    #[test]
    fn training_surfaces_input_errors_inline_and_pooled() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 2);
        let mut session = pooled_training(FastBackend::with_threads(4), &spec, 4);
        // Inline path.
        assert!(matches!(
            session.train(&random_windows(&params, 1, 1, 1)[0], 99),
            Err(BackendError::Input(_))
        ));
        assert!(matches!(
            session.train(&[vec![0u16; 3]], 0),
            Err(BackendError::Input(_))
        ));
        // Length mismatch.
        assert!(matches!(
            session.train_batch(&random_windows(&params, 1, 4, 2), &[0, 1]),
            Err(BackendError::Input(_))
        ));
        // Pool path: the bad window sits in a worker's chunk.
        let mut windows = random_windows(&params, 1, 4 * MIN_WINDOWS_PER_WORKER, 3);
        let labels = random_labels(windows.len(), params.classes, 4);
        let last = windows.len() - 1;
        windows[last] = vec![vec![0u16; 3]];
        assert!(matches!(
            session.train_batch(&windows, &labels),
            Err(BackendError::Input(_))
        ));
        // The pool survives and still trains correctly afterwards.
        session.reset();
        let windows = random_windows(&params, 1, 4 * MIN_WINDOWS_PER_WORKER, 9);
        let labels = random_labels(windows.len(), params.classes, 10);
        session.train_batch(&windows, &labels).unwrap();
        use crate::backend::TrainableBackend as _;
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        golden.train_batch(&windows, &labels).unwrap();
        assert_eq!(
            session.finalize().unwrap().prototypes(),
            golden.finalize().unwrap().prototypes()
        );
    }

    #[test]
    fn backend_names_reflect_scan_policy() {
        assert_eq!(FastBackend::new().name(), "fast");
        assert_eq!(
            FastBackend::new().with_scan(ScanPolicy::Pruned).name(),
            "fast-pruned"
        );
        assert_eq!(FastBackend::new().scan(), ScanPolicy::Full);
        assert_eq!(FastBackend::new().approx(), ApproxPolicy::Exact);
        assert_eq!(
            FastBackend::new()
                .with_approx(ApproxPolicy::Threshold { tau: 0.25 })
                .name(),
            "fast-threshold"
        );
        assert_eq!(
            FastBackend::new()
                .with_approx(ApproxPolicy::Cached { capacity: 8 })
                .name(),
            "fast-cached"
        );
        assert_eq!(
            FastBackend::new()
                .with_scan(ScanPolicy::Pruned)
                .with_approx(ApproxPolicy::CachedThreshold {
                    tau: 0.25,
                    capacity: 8,
                })
                .name(),
            "fast-cached-threshold"
        );
    }

    #[test]
    fn approx_knobs_are_validated_at_prepare_time() {
        let params = AccelParams {
            n_words: 4,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 3);
        for bad in [
            ApproxPolicy::Threshold { tau: 0.0 },
            ApproxPolicy::Threshold { tau: 1.0 },
            ApproxPolicy::Threshold { tau: -0.5 },
            ApproxPolicy::Threshold { tau: f32::NAN },
            ApproxPolicy::Threshold { tau: f32::INFINITY },
            ApproxPolicy::Cached { capacity: 0 },
            ApproxPolicy::CachedThreshold {
                tau: 0.25,
                capacity: 0,
            },
            ApproxPolicy::CachedThreshold {
                tau: 2.0,
                capacity: 4,
            },
        ] {
            assert!(
                matches!(
                    FastBackend::with_threads(1)
                        .with_approx(bad)
                        .prepare(&model),
                    Err(BackendError::Config(_))
                ),
                "{bad:?} must be rejected"
            );
        }
    }

    /// `prepare_tuned` honors both knobs on the fast backend and the
    /// default implementation refuses non-exact requests.
    #[test]
    fn prepare_tuned_honors_knobs_and_default_rejects() {
        let params = AccelParams {
            n_words: 4,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 7);
        let windows = random_windows(&params, 3, 2, 11);
        let mut exact = FastBackend::with_threads(1)
            .prepare_tuned(&model, ScanPolicy::Full, ApproxPolicy::Exact)
            .unwrap();
        let mut tuned = FastBackend::with_threads(1)
            .prepare_tuned(
                &model,
                ScanPolicy::Full,
                ApproxPolicy::Cached { capacity: 4 },
            )
            .unwrap();
        for w in &windows {
            assert_eq!(
                exact.classify(w).unwrap().class,
                tuned.classify(w).unwrap().class
            );
        }
        assert!(tuned.approx_monitor().is_some());
        assert!(exact.approx_monitor().is_none());
        // The provided default (here: golden) only does exact.
        use crate::backend::GoldenBackend;
        assert!(GoldenBackend
            .prepare_tuned(&model, ScanPolicy::Full, ApproxPolicy::Exact)
            .is_ok());
        assert!(matches!(
            GoldenBackend.prepare_tuned(
                &model,
                ScanPolicy::Full,
                ApproxPolicy::Threshold { tau: 0.2 }
            ),
            Err(BackendError::Config(_))
        ));
        assert!(matches!(
            GoldenBackend.prepare_tuned(&model, ScanPolicy::Pruned, ApproxPolicy::Exact),
            Err(BackendError::Config(_))
        ));
    }

    /// A repeated window is answered from the cache (source says so,
    /// counters tick) and the replayed verdict equals the scanned one
    /// apart from provenance.
    #[test]
    fn query_cache_replays_identical_verdicts_and_counts() {
        let params = AccelParams {
            n_words: 9,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 13);
        let mut session = FastBackend::with_threads(1)
            .with_approx(ApproxPolicy::Cached { capacity: 4 })
            .prepare(&model)
            .unwrap();
        let monitor = session.approx_monitor().unwrap();
        let windows = random_windows(&params, 3, 2, 17);
        let first = session.classify(&windows[0]).unwrap();
        assert_eq!(first.source, VerdictSource::Scan);
        let replay = session.classify(&windows[0]).unwrap();
        assert_eq!(replay.source, VerdictSource::CacheHit);
        assert_eq!(replay.class, first.class);
        assert_eq!(replay.distances, first.distances);
        assert_eq!(replay.query, first.query);
        let other = session.classify(&windows[1]).unwrap();
        assert_eq!(other.source, VerdictSource::Scan);
        assert_eq!(monitor.hits(), 1);
        assert_eq!(monitor.misses(), 2);
        assert_eq!(monitor.evictions(), 0);
    }

    /// Filling the cache past capacity evicts the least recently used
    /// entry: the evicted window re-scans, a recently touched one still
    /// replays.
    #[test]
    fn query_cache_evicts_least_recently_used() {
        let params = AccelParams {
            n_words: 5,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 19);
        let mut session = FastBackend::with_threads(1)
            .with_approx(ApproxPolicy::Cached { capacity: 2 })
            .prepare(&model)
            .unwrap();
        let monitor = session.approx_monitor().unwrap();
        let windows = random_windows(&params, 3, 3, 23);
        session.classify(&windows[0]).unwrap(); // miss, cache [0]
        session.classify(&windows[1]).unwrap(); // miss, cache [0, 1]
        session.classify(&windows[0]).unwrap(); // hit, 0 is now newest
        session.classify(&windows[2]).unwrap(); // miss, evicts LRU = 1
        assert_eq!(monitor.evictions(), 1);
        assert_eq!(
            session.classify(&windows[0]).unwrap().source,
            VerdictSource::CacheHit,
            "recently used entry survived the eviction"
        );
        assert_eq!(
            session.classify(&windows[1]).unwrap().source,
            VerdictSource::Scan,
            "least recently used entry was evicted"
        );
    }

    /// Adversarial collision: two different queries engineered onto the
    /// same signature (compensated bit flips in non-sampled words keep
    /// the sampled words and the popcount bucket identical) must never
    /// replay each other's verdicts — the full word compare decides.
    #[test]
    fn query_cache_rejects_signature_collisions() {
        // 8 u64 words → sampled indices 0, 2, 5, 7; words 1 and 3 are
        // free. Flip one bit on in word 1 and one bit off in word 3:
        // same popcount, same sampled words, same signature.
        let a: Vec<u64> = (0..8).map(|i| 0x0123_4567_89ab_cdefu64 ^ i).collect();
        let mut b = a.clone();
        assert_eq!(b[1] & (1 << 4), 0);
        b[1] |= 1 << 4;
        assert_ne!(b[3] & (1 << 5), 0);
        b[3] &= !(1 << 5);
        assert_ne!(a, b);
        assert_eq!(
            query_signature(&a),
            query_signature(&b),
            "the collision must be real for this test to bite"
        );
        let counters = Arc::new(ApproxCounters::default());
        let mut cache = QueryCache::new(4, Arc::clone(&counters));
        let sig = query_signature(&a);
        cache.insert(sig, &a, 3, vec![9, 8, 7, 0]);
        assert!(
            cache.lookup(query_signature(&b), &b).is_none(),
            "a colliding but different query must miss"
        );
        assert_eq!(
            cache.lookup(sig, &a),
            Some((3, vec![9, 8, 7, 0])),
            "the original query still hits"
        );
        assert_eq!(counters.hits.load(Ordering::Relaxed), 1);
        assert_eq!(counters.misses.load(Ordering::Relaxed), 1);
    }

    /// The signature must depend on the final word — where an odd
    /// `n_words32` keeps its 32-bit tail — at every width, including
    /// widths whose sampled indices collide (n = 1, 2, 3).
    #[test]
    fn query_signature_includes_the_tail_word() {
        for n in [1usize, 2, 3, 4, 7, 8, 157] {
            let a: Vec<u64> = (0..n as u64).map(|i| 0x5555_5555_5555_5555 ^ i).collect();
            let mut b = a.clone();
            // Flip a bit that lives in the valid low 32 bits of the
            // tail word (the only populated half when n_words32 is
            // odd).
            b[n - 1] ^= 1 << 7;
            assert_ne!(
                query_signature(&a),
                query_signature(&b),
                "width {n}: tail word must participate in the signature"
            );
        }
    }

    /// A caching session replays *correct* verdicts under both SIMD
    /// levels: identical to an exact session's output apart from the
    /// provenance field, across a stream with repeats.
    #[test]
    fn cached_sessions_stay_correct_under_both_simd_levels() {
        use hdc::simd::Simd;
        let params = AccelParams {
            n_words: 9, // odd: the packed tail word is half-populated
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 37);
        let windows = random_windows(&params, 3, 6, 41);
        // A stream with heavy repetition, crossing the capacity.
        let stream: Vec<usize> = vec![0, 1, 2, 0, 1, 3, 4, 0, 5, 2, 2, 0];
        let detected = Simd::detect();
        let mut levels = vec![Simd::Portable];
        if detected != Simd::Portable {
            levels.push(detected);
        }
        for level in levels {
            Simd::set_active(level);
            let mut exact = FastBackend::with_threads(1).prepare(&model).unwrap();
            let mut cached = FastBackend::with_threads(1)
                .with_approx(ApproxPolicy::Cached { capacity: 3 })
                .prepare(&model)
                .unwrap();
            for &i in &stream {
                let e = exact.classify(&windows[i]).unwrap();
                let c = cached.classify(&windows[i]).unwrap();
                assert_eq!(c.class, e.class, "{level:?} window {i}");
                assert_eq!(c.distances, e.distances, "{level:?} window {i}");
                assert_eq!(c.query, e.query, "{level:?} window {i}");
            }
            let monitor = cached.approx_monitor().unwrap();
            assert!(monitor.hits() > 0, "{level:?}: the stream repeats");
            assert!(monitor.evictions() > 0, "{level:?}: capacity 3 < 6 uniques");
        }
        Simd::set_active(Simd::detect());
    }

    /// One-prototype sessions silently fall back to the full scan: the
    /// degenerate case where pruning (and threshold acceptance) have
    /// nothing to skip — the class-sharded one-class-per-shard regime.
    #[test]
    fn single_prototype_sessions_scan_full_whatever_the_policy() {
        let params = AccelParams {
            n_words: 6,
            classes: 1,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 29);
        let windows = random_windows(&params, 3, 3, 31);
        let mut full = FastBackend::with_threads(1).prepare(&model).unwrap();
        let expected: Vec<Verdict> = windows.iter().map(|w| full.classify(w).unwrap()).collect();
        for backend in [
            FastBackend::with_threads(1).with_scan(ScanPolicy::Pruned),
            FastBackend::with_threads(1).with_approx(ApproxPolicy::Threshold { tau: 0.4 }),
        ] {
            let mut session = backend.prepare(&model).unwrap();
            for (w, e) in windows.iter().zip(&expected) {
                let v = session.classify(w).unwrap();
                assert_eq!(v, *e, "single-prototype scan must be exact and full");
                assert_eq!(v.source, VerdictSource::Scan);
            }
        }
    }
}
