//! The throughput backend: the HD chain on `u64`-packed hypervectors
//! with a zero-allocation encode hot path and multi-threaded batch
//! classification.
//!
//! Four things make it fast while staying bit-identical to the golden
//! model (property tests pin this — see `tests/` here and at the
//! workspace root):
//!
//! * hypervectors are repacked into [`Hv64`] words, halving the word
//!   count of every bind/rotate/majority/popcount;
//! * the `channels × levels` bind table `IM[c] ⊕ CIM[l]` is
//!   precomputed at [`prepare`](super::ExecutionBackend::prepare) time,
//!   removing one XOR per channel per sample from the hot path;
//! * encoding runs entirely inside a reusable per-thread
//!   [`EncodeScratch`] arena: spatial and temporal bundling go through
//!   the word-major, register-resident carry-save majority
//!   ([`BitslicedBundler::bundle_paper_into`], with fixed full-adder
//!   networks for the common vote sizes), N-grams are
//!   built with the fused bind-rotate [`Hv64::xor_rotated`], and after
//!   the arena has warmed up to the window length, classifying a window
//!   performs **no heap allocation in the encode path** (the returned
//!   [`Verdict`] still owns its two output buffers — the distances
//!   vector and the unpacked query — which are the only per-window
//!   allocations left);
//! * [`classify_batch`](super::BackendSession::classify_batch) splits
//!   the batch across OS threads, each worker carrying its own arena
//!   (the shared session state is immutable, so windows are
//!   embarrassingly parallel).
//!
//! The associative-memory search is controlled by [`ScanPolicy`]: the
//! default [`ScanPolicy::Full`] scans every prototype word and returns
//! exact distances (bit-identical `Verdict`s vs. the golden backend);
//! [`ScanPolicy::Pruned`] abandons a prototype as soon as its partial
//! distance exceeds the running minimum — same class, always, with the
//! lower-bound distance semantics documented at
//! [`hdc::hv64::scan_pruned_into`].
//!
//! `crates/bench/benches/throughput.rs` measures all of it and records
//! the numbers in `BENCH_throughput.json`.

use hdc::hv64::{scan_pruned_into, BitslicedBundler, Hv64};
use hdc::item_memory::quantize_code;

use super::{
    argmin, validate_window, BackendError, BackendSession, ExecutionBackend, HdModel, Verdict,
};

/// Associative-memory scan strategy of the [`FastBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Scan every prototype completely: exact Hamming distances for all
    /// classes, `Verdict`s bit-identical to the golden backend.
    #[default]
    Full,
    /// Early-exit scan: abandon a prototype once its partial distance
    /// exceeds the running minimum. The predicted class (and the
    /// winner's distance) are always identical to [`Full`](Self::Full);
    /// non-winning `distances` entries may be the partial distance at
    /// the abandonment point — a lower bound on the true distance that
    /// still exceeds the winning distance (see
    /// [`hdc::hv64::scan_pruned_into`]).
    Pruned,
}

/// The `u64`-packed multi-threaded host backend.
///
/// The thread count applies to
/// [`classify_batch`](super::BackendSession::classify_batch); single
/// windows always run inline on the calling thread.
#[derive(Debug, Clone, Copy)]
pub struct FastBackend {
    threads: usize,
    scan: ScanPolicy,
}

impl FastBackend {
    /// A backend using all available CPU parallelism for batches and the
    /// exact [`ScanPolicy::Full`] AM scan.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            threads,
            scan: ScanPolicy::Full,
        }
    }

    /// A backend with an explicit batch thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "fast backend needs at least one thread");
        Self {
            threads,
            scan: ScanPolicy::Full,
        }
    }

    /// Returns this backend with the given AM scan policy.
    #[must_use]
    pub fn with_scan(mut self, scan: ScanPolicy) -> Self {
        self.scan = scan;
        self
    }

    /// The configured batch thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured AM scan policy.
    #[must_use]
    pub fn scan(&self) -> ScanPolicy {
        self.scan
    }
}

impl Default for FastBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionBackend for FastBackend {
    fn name(&self) -> &'static str {
        match self.scan {
            ScanPolicy::Full => "fast",
            ScanPolicy::Pruned => "fast-pruned",
        }
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        let levels = model.levels();
        let bound: Vec<Vec<Hv64>> = (0..model.channels())
            .map(|c| {
                (0..levels)
                    .map(|l| Hv64::from_binary(&model.im().get(c).bind(model.cim().get(l))))
                    .collect()
            })
            .collect();
        let prototypes: Vec<Hv64> = model.prototypes().iter().map(Hv64::from_binary).collect();
        let n_words32 = model.n_words();
        let core = FastCore {
            bound,
            prototypes,
            levels,
            ngram: model.ngram(),
            n_words32,
            scan: self.scan,
        };
        Ok(Box::new(FastSession {
            scratch: EncodeScratch::new(n_words32),
            core,
            threads: self.threads,
        }))
    }
}

/// Reusable per-thread encode arena: every intermediate buffer of the
/// spatial → temporal → query chain, allocated once and recycled across
/// windows. After it has grown to the longest window seen, the encode
/// path performs zero heap allocations.
#[derive(Debug)]
struct EncodeScratch {
    /// Quantized level index per channel of the sample being encoded.
    levels: Vec<usize>,
    /// Spatial hypervector per sample; grows to the window length and is
    /// then reused in place.
    spatials: Vec<Hv64>,
    /// One buffer per sliding N-gram of the window (unused when
    /// `ngram == 1`; the spatials feed the query majority directly).
    grams: Vec<Hv64>,
    /// The encoded query of the current window.
    query: Hv64,
}

impl EncodeScratch {
    fn new(n_words32: usize) -> Self {
        Self {
            levels: Vec::new(),
            spatials: Vec::new(),
            grams: Vec::new(),
            query: Hv64::zeros(n_words32),
        }
    }
}

/// The immutable, shareable part of a session: model tables and shape.
struct FastCore {
    /// `bound[c][l] = IM[c] ⊕ CIM[l]`, the per-sample bind table.
    bound: Vec<Vec<Hv64>>,
    prototypes: Vec<Hv64>,
    levels: usize,
    ngram: usize,
    n_words32: usize,
    scan: ScanPolicy,
}

impl FastCore {
    fn classify_with(
        &self,
        window: &[Vec<u16>],
        scratch: &mut EncodeScratch,
    ) -> Result<Verdict, BackendError> {
        validate_window(window, self.bound.len(), self.ngram)?;
        let EncodeScratch {
            levels,
            spatials,
            grams,
            query,
        } = scratch;
        while spatials.len() < window.len() {
            spatials.push(Hv64::zeros(self.n_words32));
        }
        // Spatial encode: one word-major carry-save majority per sample
        // over the precomputed bind table rows.
        for (t, sample) in window.iter().enumerate() {
            levels.clear();
            levels.extend(sample.iter().map(|&code| quantize_code(code, self.levels)));
            BitslicedBundler::bundle_paper_into(
                sample.len(),
                |c| &self.bound[c][levels[c]],
                &mut spatials[t],
            );
        }
        // Temporal encode: build each sliding N-gram with fused
        // bind-rotates, then bundle all N-grams into the query with a
        // second word-major majority. Unigrams skip the materialization
        // and vote directly over the spatial hypervectors.
        let n = self.ngram;
        let g_count = window.len() - n + 1;
        if n == 1 {
            BitslicedBundler::bundle_paper_into(g_count, |i| &spatials[i], query);
        } else {
            while grams.len() < g_count {
                grams.push(Hv64::zeros(self.n_words32));
            }
            for s in 0..g_count {
                let gram = &mut grams[s];
                gram.copy_from(&spatials[s]);
                for (k, sp) in spatials[s + 1..s + n].iter().enumerate() {
                    gram.xor_rotated(sp, k + 1);
                }
            }
            BitslicedBundler::bundle_paper_into(g_count, |i| &grams[i], query);
        }
        // AM search.
        let mut distances = Vec::with_capacity(self.prototypes.len());
        let class = match self.scan {
            ScanPolicy::Full => {
                distances.extend(self.prototypes.iter().map(|p| p.hamming(query)));
                argmin(&distances)
            }
            ScanPolicy::Pruned => scan_pruned_into(&self.prototypes, query, &mut distances),
        };
        Ok(Verdict {
            class,
            distances,
            query: query.to_binary(),
            cycles: None,
        })
    }
}

struct FastSession {
    core: FastCore,
    /// Arena for single-window calls and single-threaded batches.
    scratch: EncodeScratch,
    threads: usize,
}

impl BackendSession for FastSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        self.core.classify_with(window, &mut self.scratch)
    }

    fn classify_batch(&mut self, windows: &[Vec<Vec<u16>>]) -> Result<Vec<Verdict>, BackendError> {
        let threads = self.threads.min(windows.len());
        if threads <= 1 {
            return windows
                .iter()
                .map(|w| self.core.classify_with(w, &mut self.scratch))
                .collect();
        }
        let chunk = windows.len().div_ceil(threads);
        let core = &self.core;
        let chunk_results: Vec<Result<Vec<Verdict>, BackendError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = windows
                .chunks(chunk)
                .map(|ws| {
                    scope.spawn(move || {
                        let mut scratch = EncodeScratch::new(core.n_words32);
                        ws.iter()
                            .map(|w| core.classify_with(w, &mut scratch))
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("classification worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(windows.len());
        for chunk in chunk_results {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GoldenBackend;
    use crate::layout::AccelParams;
    use hdc::rng::Xoshiro256PlusPlus;

    fn random_windows(
        params: &AccelParams,
        samples: usize,
        count: usize,
        seed: u64,
    ) -> Vec<Vec<Vec<u16>>> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// The decisive property: fast == golden, bit for bit, across
    /// random shapes and inputs.
    #[test]
    fn bit_identical_to_golden_across_shapes() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xFA57_BACC);
        for case in 0..24 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                levels: 2 + rng.next_below(28) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(5) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            let windows = random_windows(&params, samples, 6, rng.next_u64());
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let mut fast = FastBackend::with_threads(3).prepare(&model).unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            let got = fast.classify_batch(&windows).unwrap();
            assert_eq!(got, expected, "case {case} with {params:?}");
        }
    }

    /// The pruned scan trades distance exactness for speed but must
    /// never change the decision, the query, or the winning distance.
    #[test]
    fn pruned_scan_keeps_class_and_query_identical_to_golden() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x9127_BEEF);
        for case in 0..24 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                levels: 2 + rng.next_below(28) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(6) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            let windows = random_windows(&params, samples, 6, rng.next_u64());
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let mut pruned = FastBackend::with_threads(3)
                .with_scan(ScanPolicy::Pruned)
                .prepare(&model)
                .unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            let got = pruned.classify_batch(&windows).unwrap();
            for (i, (p, g)) in got.iter().zip(&expected).enumerate() {
                let ctx = format!("case {case} window {i} with {params:?}");
                assert_eq!(p.class, g.class, "{ctx}: class");
                assert_eq!(p.query, g.query, "{ctx}: query");
                assert_eq!(
                    p.distances[p.class], g.distances[g.class],
                    "{ctx}: winning distance"
                );
                for (k, (&pd, &gd)) in p.distances.iter().zip(&g.distances).enumerate() {
                    assert!(
                        pd <= gd,
                        "{ctx}: class {k} pruned distance is a lower bound"
                    );
                    if k != p.class {
                        assert!(
                            pd >= g.distances[g.class],
                            "{ctx}: class {k} cannot undercut the winner"
                        );
                    }
                }
            }
        }
    }

    /// Adversarial tie-heavy AM: identical and near-identical prototypes
    /// force exact ties, which must resolve to the first minimum under
    /// both scan policies.
    #[test]
    fn pruned_scan_survives_tie_heavy_prototype_sets() {
        let params = AccelParams {
            n_words: 8,
            channels: 4,
            levels: 8,
            ngram: 2,
            classes: 6,
        };
        let mut base = HdModel::random(&params, 77);
        // Duplicate prototype 0 into slots 1 and 3, and give slot 4 a
        // one-bit variation: distances collide exactly.
        let protos = base.prototypes().to_vec();
        let mut rigged = protos.clone();
        rigged[1] = protos[0].clone();
        rigged[3] = protos[0].clone();
        let mut nearly = protos[0].clone();
        nearly.set_bit(17, !nearly.bit(17));
        rigged[4] = nearly;
        base = HdModel::new(base.cim().clone(), base.im().clone(), rigged, params.ngram).unwrap();
        let windows = random_windows(&params, 4, 24, 3);
        let mut golden = GoldenBackend.prepare(&base).unwrap();
        let mut pruned = FastBackend::with_threads(2)
            .with_scan(ScanPolicy::Pruned)
            .prepare(&base)
            .unwrap();
        let expected = golden.classify_batch(&windows).unwrap();
        let got = pruned.classify_batch(&windows).unwrap();
        for (i, (p, g)) in got.iter().zip(&expected).enumerate() {
            assert_eq!(p.class, g.class, "window {i}: tie-break order diverged");
            assert_eq!(
                p.distances[p.class], g.distances[g.class],
                "window {i}: winning distance"
            );
        }
    }

    #[test]
    fn batch_order_is_preserved_across_thread_counts() {
        let params = AccelParams {
            n_words: 16,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 11);
        let windows = random_windows(&params, 1, 37, 5);
        let mut one = FastBackend::with_threads(1).prepare(&model).unwrap();
        let sequential = one.classify_batch(&windows).unwrap();
        for threads in [2usize, 4, 8] {
            let mut many = FastBackend::with_threads(threads).prepare(&model).unwrap();
            assert_eq!(
                many.classify_batch(&windows).unwrap(),
                sequential,
                "{threads} threads"
            );
        }
    }

    /// The session arena must not leak state between windows of
    /// different lengths (growing and shrinking windows reuse slots).
    #[test]
    fn scratch_reuse_across_varying_window_lengths() {
        let params = AccelParams {
            n_words: 12,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 31);
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut fast = FastBackend::with_threads(1).prepare(&model).unwrap();
        // One session, windows of wildly varying lengths, interleaved.
        for (i, len) in [7usize, 2, 5, 2, 9, 3, 2, 8].iter().enumerate() {
            let w = random_windows(&params, *len, 1, 1000 + i as u64).remove(0);
            let g = golden.classify(&w).unwrap();
            let f = fast.classify(&w).unwrap();
            assert_eq!(f, g, "window {i} of {len} samples");
        }
    }

    #[test]
    fn batch_surfaces_input_errors() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 2);
        let mut session = FastBackend::with_threads(4).prepare(&model).unwrap();
        let mut windows = random_windows(&params, 1, 8, 3);
        windows[5] = vec![vec![0u16; 3]]; // wrong channel count
        assert!(matches!(
            session.classify_batch(&windows),
            Err(BackendError::Input(_))
        ));
    }

    #[test]
    fn empty_batch_is_fine() {
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 2);
        let mut session = FastBackend::new().prepare(&model).unwrap();
        assert!(session.classify_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn backend_names_reflect_scan_policy() {
        assert_eq!(FastBackend::new().name(), "fast");
        assert_eq!(
            FastBackend::new().with_scan(ScanPolicy::Pruned).name(),
            "fast-pruned"
        );
        assert_eq!(FastBackend::new().scan(), ScanPolicy::Full);
    }
}
