//! The unified execution-backend layer.
//!
//! PULP-HD's point is that one HD-computing chain (MAP → spatial /
//! temporal encode → associative-memory search) can be lowered onto very
//! different execution substrates and compared apples-to-apples. This
//! module is that seam: [`ExecutionBackend::prepare`] turns a trained
//! [`HdModel`] into a [`BackendSession`], and every session answers
//! [`classify`](BackendSession::classify) /
//! [`classify_batch`](BackendSession::classify_batch) with a [`Verdict`]
//! carrying the predicted class, the per-class Hamming distances, the
//! query hypervector, and — when the substrate measures time — the cycle
//! breakdown.
//!
//! Three substrates ship today:
//!
//! * [`GoldenBackend`] — the `hdc` scalar golden model; the semantic
//!   reference every other backend must match bit for bit.
//! * [`AccelBackend`] — the simulated PULP cluster
//!   ([`AccelChain`](crate::pipeline::AccelChain)); the only backend
//!   that reports cycles. It is a **cycle-accurate simulator**: its
//!   wall-clock is the cost of *simulating* the hardware
//!   instruction by instruction, not a host-throughput figure, so it is
//!   excluded from throughput comparisons (the `accel_sim` row in
//!   `BENCH_throughput.json` is reported for scale only).
//! * [`FastBackend`] — a throughput-oriented pure-Rust engine on
//!   `u64`-packed hypervectors with runtime-dispatched SIMD kernels
//!   ([`hdc::simd::Simd`]: AVX2/POPCNT when the CPU has them, portable
//!   unrolled fallback otherwise), a zero-allocation encode hot path
//!   (per-thread scratch arena + bit-sliced carry-save bundling), and
//!   batch classification over a persistent session-owned worker pool
//!   with an adaptive single-thread cutover for small batches. Its
//!   associative-memory search is selectable via [`ScanPolicy`]: the
//!   default full scan returns exact distances, the pruned scan
//!   early-exits prototypes that cannot win (same class, lower-bound
//!   distances).
//!
//! All three produce identical classes, distances, and query
//! hypervectors on identical inputs; `tests/determinism.rs` and
//! `crates/core/tests/prop_equivalence.rs` pin that equivalence on
//! random EMG windows and random chain shapes (the pruned scan is
//! additionally pinned to preserve class, query, and winning distance).
//!
//! On top of the three substrates, [`ShardedBackend`] fans one workload
//! out across **N inner sessions** of any backend — batch-sharding for
//! throughput or class-sharding of the associative memory for large-AM
//! latency, both with merged verdicts bit-identical to the unsharded
//! session (see [`sharded`]).
//!
//! ## Training through the same seam
//!
//! The paper's one-shot training runs the *same* encode chain as
//! classification, so the backend layer expresses it too:
//! [`TrainableBackend::begin_training`] turns a [`TrainSpec`] (seed
//! matrices, class count, tie seed — no prototypes yet) into a
//! [`TrainingSession`] with
//! [`train`](TrainingSession::train) /
//! [`train_batch`](TrainingSession::train_batch) /
//! [`update_online`](TrainingSession::update_online), and hands the
//! result off via [`finalize`](TrainingSession::finalize) (an
//! [`HdModel`] for any backend) or
//! [`into_serving`](TrainingSession::into_serving) (directly into a
//! serving [`BackendSession`]). [`GoldenBackend`] trains through the
//! scalar `hdc::AssociativeMemory` (the reference); [`FastBackend`]
//! accumulates `u64`-packed queries into bit-sliced counter planes
//! (`hdc::hv64::CounterBundler`) over its persistent worker pool, with
//! per-class seeded tie vectors precomputed once — bit-identical
//! trained prototypes at an order of magnitude more throughput.
//!
//! ## Example
//!
//! ```
//! use pulp_hd_core::backend::{ExecutionBackend, FastBackend, GoldenBackend, HdModel};
//! use pulp_hd_core::layout::AccelParams;
//!
//! let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
//! let model = HdModel::random(&params, 42);
//! let window = vec![vec![100u16, 60_000, 33_000, 8_000]];
//!
//! let mut golden = GoldenBackend.prepare(&model)?;
//! let mut fast = FastBackend::with_threads(2).prepare(&model)?;
//! let a = golden.classify(&window)?;
//! let b = fast.classify(&window)?;
//! assert_eq!(a.class, b.class);
//! assert_eq!(a.distances, b.distances);
//! assert_eq!(a.query, b.query);
//! # Ok::<(), pulp_hd_core::backend::BackendError>(())
//! ```

pub mod accel;
pub mod fast;
pub mod fault;
pub mod golden;
mod pool;
pub mod sharded;

pub use accel::AccelBackend;
pub use fast::{ApproxMonitor, ApproxPolicy, FastBackend, ScanPolicy};
pub use fault::{FaultBackend, FaultKind, FaultPlan, HangRelease};
pub use golden::GoldenBackend;
/// Re-exported so downstream crates (the serve wire codec in
/// particular) can name the query hypervector type carried by
/// [`Verdict`] without depending on `hdc` directly.
pub use hdc::BinaryHv;
pub use sharded::{ShardMonitor, ShardSpec, ShardedBackend, ShardedSession};

use hdc::rng::derive_seed;
use hdc::{ContinuousItemMemory, HdClassifier, HdConfig, ItemMemory};

use crate::layout::AccelParams;
use crate::pipeline::ChainError;

/// A trained HD model, backend-agnostic: the three seed matrices plus
/// the N-gram size of the temporal encoder.
///
/// Construct one from scratch with [`HdModel::new`], from a trained
/// golden-model classifier with [`HdModel::from_classifier`], or as a
/// seeded random model (for timing runs, whose cycle counts are
/// data-independent) with [`HdModel::random`].
#[derive(Debug, Clone)]
pub struct HdModel {
    cim: ContinuousItemMemory,
    im: ItemMemory,
    prototypes: Vec<BinaryHv>,
    ngram: usize,
}

impl HdModel {
    /// Bundles the seed matrices into a model after validating that all
    /// hypervectors share one width.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Model`] if `prototypes` is empty,
    /// `ngram == 0`, or any hypervector width disagrees.
    pub fn new(
        cim: ContinuousItemMemory,
        im: ItemMemory,
        prototypes: Vec<BinaryHv>,
        ngram: usize,
    ) -> Result<Self, BackendError> {
        if prototypes.is_empty() {
            return Err(BackendError::Model(
                "model needs at least one prototype".into(),
            ));
        }
        if ngram == 0 {
            return Err(BackendError::Model("n-gram size must be at least 1".into()));
        }
        let n_words = cim.get(0).n_words();
        let all = cim.iter().chain(im.iter()).chain(prototypes.iter());
        for hv in all {
            if hv.n_words() != n_words {
                return Err(BackendError::Model(format!(
                    "hypervector width mismatch: {} vs {} words",
                    hv.n_words(),
                    n_words
                )));
            }
        }
        Ok(Self {
            cim,
            im,
            prototypes,
            ngram,
        })
    }

    /// Extracts the model of a trained golden classifier (finalizing any
    /// stale prototypes first).
    #[must_use]
    pub fn from_classifier(clf: &mut HdClassifier) -> Self {
        let ngram = clf.config().ngram;
        let prototypes = clf.am_mut().prototypes().to_vec();
        Self {
            cim: clf.spatial().cim().clone(),
            im: clf.spatial().im().clone(),
            prototypes,
            ngram,
        }
    }

    /// A seeded random model of the given shape — prototypes are i.i.d.
    /// hypervectors, exactly as the cycle-measurement runs use (kernel
    /// timing is data-independent).
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`AccelParams::validate`] (this is a
    /// test/measurement constructor; malformed shapes are programmer
    /// error, not input).
    #[must_use]
    pub fn random(params: &AccelParams, seed: u64) -> Self {
        // INFALLIBLE: documented panicking constructor — the `# Panics`
        // section above declares malformed params programmer error.
        params.validate().expect("valid accelerator parameters");
        let cim = ContinuousItemMemory::new(params.levels, params.n_words, derive_seed(seed, 1));
        let im = ItemMemory::new(params.channels, params.n_words, derive_seed(seed, 2));
        let prototypes: Vec<BinaryHv> = (0..params.classes)
            .map(|k| BinaryHv::random(params.n_words, derive_seed(seed, 100 + k as u64)))
            .collect();
        Self {
            cim,
            im,
            prototypes,
            ngram: params.ngram,
        }
    }

    /// The continuous item memory (quantization-level hypervectors).
    #[must_use]
    pub fn cim(&self) -> &ContinuousItemMemory {
        &self.cim
    }

    /// The channel item memory.
    #[must_use]
    pub fn im(&self) -> &ItemMemory {
        &self.im
    }

    /// The class prototypes, indexed by class.
    #[must_use]
    pub fn prototypes(&self) -> &[BinaryHv] {
        &self.prototypes
    }

    /// N-gram size of the temporal encoder.
    #[must_use]
    pub fn ngram(&self) -> usize {
        self.ngram
    }

    /// Hypervector width in `u32` words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.cim.get(0).n_words()
    }

    /// Number of input channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.im.len()
    }

    /// Number of quantization levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.cim.n_levels()
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.prototypes.len()
    }

    /// The accelerator-parameter view of this model's shape.
    #[must_use]
    pub fn params(&self) -> AccelParams {
        AccelParams {
            n_words: self.n_words(),
            channels: self.channels(),
            levels: self.levels(),
            ngram: self.ngram,
            classes: self.classes(),
        }
    }
}

/// Everything needed to *start* training a model: the seed matrices and
/// shape of the chain, but no prototypes yet — those are what training
/// produces.
///
/// The spec fixes the training semantics completely: the IM/CIM decide
/// the encoding, `tie_seed` decides how exactly-tied majority votes
/// resolve (per class, via [`derive_seed`]), so every
/// [`TrainableBackend`] fed the same spec and the same examples must
/// produce **bit-identical** prototypes. Property tests pin this for
/// the shipped backends.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    cim: ContinuousItemMemory,
    im: ItemMemory,
    ngram: usize,
    classes: usize,
    tie_seed: u64,
}

impl TrainSpec {
    /// Bundles existing seed matrices into a training spec.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Model`] if `classes == 0`, `ngram == 0`,
    /// or the IM and CIM widths disagree.
    pub fn new(
        cim: ContinuousItemMemory,
        im: ItemMemory,
        ngram: usize,
        classes: usize,
        tie_seed: u64,
    ) -> Result<Self, BackendError> {
        if classes == 0 {
            return Err(BackendError::Model(
                "training needs at least one class".into(),
            ));
        }
        if ngram == 0 {
            return Err(BackendError::Model("n-gram size must be at least 1".into()));
        }
        let n_words = cim.get(0).n_words();
        for hv in cim.iter().chain(im.iter()) {
            if hv.n_words() != n_words {
                return Err(BackendError::Model(format!(
                    "hypervector width mismatch: {} vs {} words",
                    hv.n_words(),
                    n_words
                )));
            }
        }
        Ok(Self {
            cim,
            im,
            ngram,
            classes,
            tie_seed,
        })
    }

    /// The spec of a golden-model classifier configuration: item
    /// memories and tie seed are derived from `config.seed` exactly as
    /// [`HdClassifier::new`] derives them, so training through any
    /// backend reproduces the classifier's prototypes bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Model`] if the configuration is invalid
    /// or `n_classes == 0`.
    pub fn from_config(config: &HdConfig, n_classes: usize) -> Result<Self, BackendError> {
        config
            .validate()
            .map_err(|e| BackendError::Model(e.to_string()))?;
        Self::new(
            ContinuousItemMemory::new(config.levels, config.n_words, derive_seed(config.seed, 2)),
            ItemMemory::new(config.channels, config.n_words, derive_seed(config.seed, 1)),
            config.ngram,
            n_classes,
            derive_seed(config.seed, 3),
        )
    }

    /// A seeded random spec of the given shape (test/bench constructor;
    /// shares its seed streams with [`HdModel::random`], so a model
    /// trained from this spec encodes queries identically to that
    /// random model).
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`AccelParams::validate`].
    #[must_use]
    pub fn random(params: &AccelParams, seed: u64) -> Self {
        // INFALLIBLE: documented panicking constructor — the `# Panics`
        // section above declares malformed params programmer error.
        params.validate().expect("valid accelerator parameters");
        Self {
            cim: ContinuousItemMemory::new(params.levels, params.n_words, derive_seed(seed, 1)),
            im: ItemMemory::new(params.channels, params.n_words, derive_seed(seed, 2)),
            ngram: params.ngram,
            classes: params.classes,
            tie_seed: derive_seed(seed, 3),
        }
    }

    /// The continuous item memory (quantization-level hypervectors).
    #[must_use]
    pub fn cim(&self) -> &ContinuousItemMemory {
        &self.cim
    }

    /// The channel item memory.
    #[must_use]
    pub fn im(&self) -> &ItemMemory {
        &self.im
    }

    /// N-gram size of the temporal encoder.
    #[must_use]
    pub fn ngram(&self) -> usize {
        self.ngram
    }

    /// Number of classes the trained model will have.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Master seed of the per-class majority tie-breaks.
    #[must_use]
    pub fn tie_seed(&self) -> u64 {
        self.tie_seed
    }

    /// Hypervector width in `u32` words.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.cim.get(0).n_words()
    }

    /// Number of input channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.im.len()
    }

    /// Number of quantization levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.cim.n_levels()
    }
}

/// Per-kernel cycle counts reported by cycle-measuring backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// End-to-end total.
    pub total: u64,
    /// MAP + spatial + temporal encoders.
    pub map_encode: u64,
    /// Associative-memory search.
    pub am: u64,
}

/// How a [`Verdict`] was produced — exact scan, or one of the
/// approximate shortcuts of [`ApproxPolicy`].
///
/// Every exact configuration reports [`Scan`](Self::Scan), so verdict
/// equality against the golden backend (which only ever scans) is
/// unaffected by this field. The approximate sources exist for
/// telemetry: a serving stack can count how much work the approximate
/// ladder actually skipped, per verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerdictSource {
    /// The associative memory was scanned (fully or with the exact
    /// early-exit pruning) and the class is the true arg-min.
    #[default]
    Scan,
    /// The threshold scan of [`ApproxPolicy::Threshold`] accepted a
    /// prototype within the confidence radius without scanning the
    /// remaining classes; skipped classes hold [`u32::MAX`] in
    /// `distances`.
    EarlyAccept,
    /// The query-similarity cache of [`ApproxPolicy::Cached`] matched
    /// the encoded query exactly; `class` and `distances` are replayed
    /// from the cached scan of the identical query.
    CacheHit,
}

/// Result of one classification, uniform across backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Predicted class (arg-min Hamming distance, first minimum wins).
    pub class: usize,
    /// Hamming distance to every class prototype, indexed by class.
    ///
    /// Exact under every backend configuration except
    /// [`FastBackend`] with [`ScanPolicy::Pruned`], where the winning
    /// entry is always exact but non-winning entries may be the partial
    /// distance at which the early-exit scan abandoned the prototype —
    /// a lower bound on the true distance that still exceeds the
    /// winning distance — and the approximate [`ApproxPolicy`] modes,
    /// whose threshold scan additionally reports [`u32::MAX`] for
    /// classes it never visited (see [`VerdictSource`]).
    pub distances: Vec<u32>,
    /// The query hypervector the window encoded to.
    pub query: BinaryHv,
    /// Cycle counts, when the backend simulates hardware time
    /// (`None` for host-native backends).
    pub cycles: Option<CycleBreakdown>,
    /// Provenance: exact scan, threshold early-accept, or cache replay.
    pub source: VerdictSource,
}

/// Errors raised while preparing a backend session or classifying.
#[derive(Debug)]
#[non_exhaustive]
pub enum BackendError {
    /// The model is malformed or does not fit the backend.
    Model(String),
    /// An input window has the wrong shape.
    Input(String),
    /// The backend descriptor itself is invalid (e.g. a zero thread
    /// count) — rejected before any model is involved.
    Config(String),
    /// The simulated-cluster backend failed.
    Chain(ChainError),
    /// A worker computing chunk `chunk` of a batch panicked. The panic
    /// was contained (`catch_unwind` in the worker), the batch rolled
    /// back, and the session stays serviceable — the affected call gets
    /// this typed error instead of a process-wide unwind.
    WorkerLost {
        /// Index of the batch chunk whose worker was lost.
        chunk: usize,
        /// The panic payload, stringified.
        panic: String,
    },
    /// A class-sharded associative-memory shard died. Its class slice is
    /// unavailable and the session cannot degrade without silently
    /// dropping classes, so every subsequent classification on the
    /// session reports the loss instead (batch-sharded sessions degrade
    /// by rerouting across survivors and never raise this).
    ShardLost {
        /// Index of the lost shard.
        shard: usize,
        /// The panic payload that killed it, stringified.
        panic: String,
    },
    /// A deterministic fault injected by
    /// [`FaultBackend`](fault::FaultBackend) — only ever seen in chaos
    /// testing.
    Injected {
        /// The session-local call index the fault was scheduled at.
        call: u64,
    },
}

impl core::fmt::Display for BackendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Model(what) => write!(f, "model: {what}"),
            Self::Input(what) => write!(f, "input: {what}"),
            Self::Config(what) => write!(f, "config: {what}"),
            Self::Chain(e) => write!(f, "chain: {e}"),
            Self::WorkerLost { chunk, panic } => {
                write!(f, "worker lost on batch chunk {chunk}: {panic}")
            }
            Self::ShardLost { shard, panic } => {
                write!(f, "class shard {shard} lost: {panic}")
            }
            Self::Injected { call } => write!(f, "injected fault at call {call}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<ChainError> for BackendError {
    fn from(e: ChainError) -> Self {
        match e {
            ChainError::ModelMismatch(what) => Self::Model(what),
            ChainError::InputMismatch(what) => Self::Input(what),
            other => Self::Chain(other),
        }
    }
}

impl From<BackendError> for ChainError {
    fn from(e: BackendError) -> Self {
        match e {
            // A bad backend descriptor surfaces as a model-level problem
            // on the chain side: the chain cannot be realized.
            BackendError::Model(what) | BackendError::Config(what) => Self::ModelMismatch(what),
            BackendError::Input(what) => Self::InputMismatch(what),
            BackendError::Chain(chain) => chain,
            // Runtime losses and injected faults have no chain-side
            // analogue; the chain sees them as an unrealizable model.
            other => Self::ModelMismatch(other.to_string()),
        }
    }
}

/// An execution substrate for the HD classification chain.
///
/// Backends are cheap descriptors (platform choice, thread count);
/// [`prepare`](Self::prepare) does the expensive work of loading a model
/// onto the substrate and returns a reusable session.
pub trait ExecutionBackend {
    /// Human-readable backend name (stable; used in benches and reports).
    fn name(&self) -> &'static str;

    /// Loads `model` onto the substrate.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the model cannot be realized on this
    /// backend (shape limits, memory capacity, program generation).
    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError>;

    /// Loads `model` with an explicit scan and approximation
    /// configuration — the seam the serving front-end uses to spawn
    /// servers onto approximate sessions without hand-building them.
    ///
    /// The provided implementation supports only the exact default
    /// (`ScanPolicy::Full` + `ApproxPolicy::Exact`, where it simply
    /// delegates to [`prepare`](Self::prepare)) and rejects every other
    /// combination with [`BackendError::Config`] naming the backend —
    /// an honest failure instead of silently serving exact verdicts
    /// under an approximate label. [`FastBackend`] overrides it to
    /// honor both knobs; [`ShardedBackend`] needs no override because
    /// the knobs belong on the inner backend it wraps.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Config`] if this backend cannot honor
    /// the requested policies, or whatever [`prepare`](Self::prepare)
    /// returns.
    fn prepare_tuned(
        &self,
        model: &HdModel,
        scan: ScanPolicy,
        approx: ApproxPolicy,
    ) -> Result<Box<dyn BackendSession>, BackendError> {
        if scan == ScanPolicy::Full && approx == ApproxPolicy::Exact {
            return self.prepare(model);
        }
        Err(BackendError::Config(format!(
            "backend '{}' supports only ScanPolicy::Full + ApproxPolicy::Exact \
             (requested {scan:?} + {approx:?})",
            self.name()
        )))
    }
}

/// A model loaded onto one substrate, ready to classify windows.
///
/// A window is `samples × channels` ADC codes (`window[t][c]` = code of
/// channel `c` at time `t`). Host backends accept any window of at least
/// `ngram` samples (sliding N-grams are bundled into the query, exactly
/// like the golden classifier); the simulated-cluster backend requires
/// exactly `ngram` samples per call, the unit of work its kernels are
/// generated for.
pub trait BackendSession: Send {
    /// Classifies one window.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Input`] on shape mismatch, or a
    /// backend-specific error.
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError>;

    /// Classifies a batch of windows, in order.
    ///
    /// The default implementation loops [`classify`](Self::classify);
    /// throughput-oriented backends override it (the [`FastBackend`]
    /// fans the batch out across threads).
    ///
    /// # Errors
    ///
    /// Returns the first error encountered.
    fn classify_batch(&mut self, windows: &[Vec<Vec<u16>>]) -> Result<Vec<Verdict>, BackendError> {
        windows.iter().map(|w| self.classify(w)).collect()
    }

    /// Classifies a batch of windows into a caller-owned buffer, in
    /// order, appending one [`Verdict`] per window.
    ///
    /// Long-lived callers that classify batch after batch (the serving
    /// front-end's micro-batcher) clear and reuse one output vector so
    /// its capacity stays warm across batches; the verdicts themselves
    /// are preserved exactly as [`classify_batch`](Self::classify_batch)
    /// returns them — bit-identical to per-window
    /// [`classify`](Self::classify) calls on every backend.
    ///
    /// The provided implementation delegates to
    /// [`classify_batch`](Self::classify_batch) and extends `out` from
    /// the intermediate vector; [`FastBackend`] overrides it to write
    /// verdicts into `out` directly (its `classify_batch` is the thin
    /// wrapper, not the other way around).
    ///
    /// # Errors
    ///
    /// Returns the first error encountered; `out` is unchanged when an
    /// error is returned.
    fn classify_batch_into(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        out.extend(self.classify_batch(windows)?);
        Ok(())
    }

    /// A cloneable handle onto this session's query-cache counters
    /// (hits / misses / evictions), when the session runs a caching
    /// [`ApproxPolicy`]. `None` — the default — means the session has
    /// no cache and the counters would be forever zero.
    ///
    /// The serving front-end grabs this before moving the session onto
    /// its batcher thread and surfaces the counters through
    /// `ServerStats`, mirroring the [`ShardMonitor`] pattern.
    fn approx_monitor(&self) -> Option<ApproxMonitor> {
        None
    }
}

/// A backend that can also *train* models, not just serve them.
///
/// Where [`ExecutionBackend::prepare`] consumes an already-trained
/// [`HdModel`], [`begin_training`](Self::begin_training) starts from a
/// [`TrainSpec`] (seed matrices, no prototypes) and returns a live
/// [`TrainingSession`] that accumulates examples, adapts online, and
/// finally hands the trained model off — either as an [`HdModel`] or
/// directly as a serving [`BackendSession`].
///
/// Every implementation must produce prototypes bit-identical to the
/// golden path (`hdc::AssociativeMemory` fed the same encoded queries
/// under the same seeded tie-breaks); the property suites pin
/// [`GoldenBackend`] and [`FastBackend`] to each other on random and
/// adversarially tie-rigged inputs.
pub trait TrainableBackend: ExecutionBackend {
    /// Starts a training session for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if the spec cannot be realized on this
    /// backend.
    fn begin_training(&self, spec: &TrainSpec) -> Result<Box<dyn TrainingSession>, BackendError>;
}

/// A model being trained on one substrate.
///
/// Windows follow the same shape rules as [`BackendSession`] (at least
/// `ngram` samples, `channels` codes per sample). The session keeps the
/// per-component vote counters of every class, so training, one-shot or
/// batched, can be followed by online updates at any time — the paper's
/// "continuously updated for on-line learning" AM, behind the backend
/// seam.
pub trait TrainingSession: Send {
    /// Accumulates one training window for `label`.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Input`] on shape mismatch or a label out
    /// of range.
    fn train(&mut self, window: &[Vec<u16>], label: usize) -> Result<(), BackendError>;

    /// Accumulates a batch of labelled windows (`labels[i]` is the class
    /// of `windows[i]`).
    ///
    /// The default implementation loops [`train`](Self::train);
    /// throughput-oriented backends override it (the [`FastBackend`]
    /// fans the batch out across its worker pool; counter accumulation
    /// is commutative, so the trained model is independent of the
    /// split).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Input`] if the lengths differ, on shape
    /// mismatch, or on a label out of range. When an error is returned
    /// mid-batch the session's counters are unspecified (some windows
    /// of the batch may have been accumulated); callers that need
    /// all-or-nothing semantics should validate shapes up front.
    fn train_batch(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        labels: &[usize],
    ) -> Result<(), BackendError> {
        if windows.len() != labels.len() {
            return Err(BackendError::Input(format!(
                "batch of {} windows carries {} labels",
                windows.len(),
                labels.len()
            )));
        }
        for (window, &label) in windows.iter().zip(labels) {
            self.train(window, label)?;
        }
        Ok(())
    }

    /// Classifies `window` against the current prototypes, then folds it
    /// into `label`'s counters and re-thresholds **only that class** —
    /// the online-learning step. The returned [`Verdict`] is the
    /// classification *before* the update (the deployed model's answer),
    /// so supervised-feedback loops get prediction and adaptation in one
    /// call.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Input`] on shape mismatch or a label out
    /// of range.
    fn update_online(&mut self, window: &[Vec<u16>], label: usize)
        -> Result<Verdict, BackendError>;

    /// Number of training examples accumulated for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    fn examples(&self, class: usize) -> u32;

    /// Re-thresholds any stale prototypes and returns the trained model
    /// (classes with no examples keep all-zero prototypes, exactly like
    /// the golden associative memory). The session stays usable — more
    /// training or online updates may follow.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::Model`] if the trained parts cannot be
    /// assembled into a model.
    fn finalize(&mut self) -> Result<HdModel, BackendError>;

    /// Discards all accumulated training state (counters, prototypes),
    /// keeping buffers and worker pools warm — start a fresh model on
    /// the same spec without paying session construction again.
    fn reset(&mut self);

    /// Finalizes and hands the trained model straight to this backend's
    /// serving side: `session.into_serving()` is the one-shot-train →
    /// deploy path.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] if finalization or serving-session
    /// preparation fails.
    fn into_serving(self: Box<Self>) -> Result<Box<dyn BackendSession>, BackendError>;
}

/// Shared label validation for training sessions.
pub(crate) fn validate_label(label: usize, classes: usize) -> Result<(), BackendError> {
    if label >= classes {
        return Err(BackendError::Input(format!(
            "label {label} out of range for {classes} classes"
        )));
    }
    Ok(())
}

/// Shared input validation: every sample must have `channels` codes and
/// the window at least `min_samples` samples.
pub(crate) fn validate_window(
    window: &[Vec<u16>],
    channels: usize,
    min_samples: usize,
) -> Result<(), BackendError> {
    if window.len() < min_samples {
        return Err(BackendError::Input(format!(
            "window of {} samples cannot hold a {min_samples}-gram",
            window.len()
        )));
    }
    for (t, sample) in window.iter().enumerate() {
        if sample.len() != channels {
            return Err(BackendError::Input(format!(
                "sample {t} has {} channels, expected {channels}",
                sample.len()
            )));
        }
    }
    Ok(())
}

/// First-minimum arg-min over per-class distances — the kernel's
/// strict-less search, shared by every backend.
pub(crate) fn argmin(distances: &[u32]) -> usize {
    distances
        .iter()
        .enumerate()
        .min_by_key(|&(_, &d)| d)
        .map(|(i, _)| i)
        // INFALLIBLE: every caller passes a model's distance vector,
        // and models are validated to hold >= 1 class.
        .expect("at least one prototype")
}
