//! Shared batch-dispatch machinery: the persistent worker pool, the
//! raw-slice batch smuggling types, and the unwind guard that makes the
//! smuggling sound.
//!
//! Two dispatchers use this module with the same contract:
//!
//! * [`fast`](super::fast) fans chunks of one batch across the threads
//!   of a single session's pool;
//! * [`sharded`](super::sharded) fans whole sub-batches (or whole
//!   batches, under class-sharding) across per-shard sessions.
//!
//! The contract is always the same: the dispatching frame keeps a
//! [`ResultDrain`] guard alive from the first dispatch until every
//! dispatched job has reported back — on the happy path *and* during
//! unwinding — so the borrowed slices behind [`RawWindows`] /
//! [`RawLabels`] strictly outlive all worker accesses.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use super::{BackendError, Verdict};

/// Stringifies a `catch_unwind` payload (the `panic!` message when it
/// was a string, a placeholder otherwise).
pub(super) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
        .to_owned()
}

/// Runs `f` with its panics contained: a panic becomes `Err(message)`
/// instead of unwinding the calling thread. This is the panic-isolation
/// primitive of the dispatch layer — pool workers wrap each job in it so
/// one poisoned window cannot take down the session, and dispatchers
/// turn the `Err` into a typed [`BackendError::WorkerLost`].
///
/// `AssertUnwindSafe` is justified at every call site by construction:
/// on `Err`, the caller either rebuilds the state the closure touched
/// (a worker's scratch arena) or permanently stops routing work to it
/// (a shard session marked lost).
pub(super) fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_text(p.as_ref()))
}

/// Filters the process panic hook so *expected* test panics (injected
/// faults, the out-of-range jobs the containment tests craft) stop
/// spamming stderr from worker threads, while anything else still
/// reaches the previous hook. Installed once per test binary; safe
/// under parallel tests because unexpected panics pass through.
#[cfg(test)]
pub(crate) fn silence_expected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = panic_text(info.payload());
            if !(message.contains("injected fault")
                || message.contains("out of range")
                || message.contains("out of bounds"))
            {
                previous(info);
            }
        }));
    });
}

/// A borrowed batch smuggled across a channel as a raw slice.
///
/// Soundness: the dispatching call keeps a [`ResultDrain`] guard alive
/// from the first dispatch until every dispatched chunk has reported
/// back — on the happy path *and* during unwinding — so the pointee
/// (`&[Vec<Vec<u16>>]` borrowed by the caller) strictly outlives all
/// worker accesses, and workers only read.
pub(super) struct RawWindows {
    pub(super) ptr: *const Vec<Vec<u16>>,
    pub(super) len: usize,
}

impl RawWindows {
    /// Captures a borrowed batch for dispatch (see the soundness
    /// contract above — the caller must hold a [`ResultDrain`]).
    pub(super) fn of(windows: &[Vec<Vec<u16>>]) -> Self {
        Self {
            ptr: windows.as_ptr(),
            len: windows.len(),
        }
    }

    /// Reborrows the smuggled batch inside a worker.
    ///
    /// # Safety
    ///
    /// Callable only from a pool worker serving a job whose dispatcher
    /// still holds the [`ResultDrain`] guard for this job — i.e. the
    /// original slice is still borrowed by the dispatching frame.
    pub(super) unsafe fn slice<'a>(&self) -> &'a [Vec<Vec<u16>>] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

// SAFETY: the pointee is a shared slice only read by the receiving
// worker while the sending batch call keeps the borrow alive (its
// `ResultDrain` guard joins on the result channel before the frame —
// panicking or not — can release the borrow).
unsafe impl Send for RawWindows {}

/// A borrowed label slice, under the same [`ResultDrain`] contract as
/// [`RawWindows`].
pub(super) struct RawLabels {
    pub(super) ptr: *const usize,
    pub(super) len: usize,
}

impl RawLabels {
    /// Captures a borrowed label slice for dispatch.
    pub(super) fn of(labels: &[usize]) -> Self {
        Self {
            ptr: labels.as_ptr(),
            len: labels.len(),
        }
    }

    /// Reborrows the smuggled labels inside a worker.
    ///
    /// # Safety
    ///
    /// As [`RawWindows::slice`].
    pub(super) unsafe fn slice<'a>(&self) -> &'a [usize] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

// SAFETY: as for `RawWindows` — shared read-only slice, outlived by the
// dispatcher's drain guard.
unsafe impl Send for RawLabels {}

/// A chunk's completion message: chunk index + its verdicts.
pub(super) type ChunkResult = (usize, Result<Vec<Verdict>, BackendError>);

/// Unwind guard for a batch in flight: counts dispatched chunks and, if
/// the dispatching frame unwinds before collecting them (a worker died,
/// or chunk 0 panicked), blocks in `drop` until every outstanding chunk
/// has reported or every worker-held sender is gone — whichever comes
/// first. Workers drop their job (and its sender clone) when they
/// finish or unwind, and in both cases they have stopped touching the
/// batch slices by then, so once `drop` returns no worker can still see
/// the caller's borrows.
pub(super) struct ResultDrain<'a, T> {
    pub(super) rx: &'a Receiver<(usize, T)>,
    /// The dispatcher's own sender, dropped before draining so `recv`
    /// can observe channel closure instead of deadlocking.
    pub(super) tx: Option<Sender<(usize, T)>>,
    pub(super) outstanding: usize,
}

impl<T> Drop for ResultDrain<'_, T> {
    fn drop(&mut self) {
        self.tx = None;
        while self.outstanding > 0 {
            if self.rx.recv().is_err() {
                break;
            }
            self.outstanding -= 1;
        }
    }
}

/// A session's persistent worker pool: long-lived threads, one job
/// channel and one private worker state (scratch arena, partial
/// counters, a whole shard session) each, generic over the job type it
/// serves. Spawned once at session construction; dropped (channels
/// closed, threads joined) with the session.
pub(super) struct WorkerPool<J: Send + 'static> {
    pub(super) senders: Vec<Sender<J>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads, each running the job handler built by
    /// one `make_worker(index)` call (the builder runs on the spawning
    /// thread, so it can move per-worker state — a scratch arena, a
    /// shard's session — into the handler it returns).
    pub(super) fn spawn<W, F>(workers: usize, mut make_worker: F) -> Self
    where
        W: FnMut(J) + Send + 'static,
        F: FnMut(usize) -> W,
    {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let mut work = make_worker(idx);
            let (tx, rx): (Sender<J>, Receiver<J>) = channel();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    work(job);
                }
            }));
            senders.push(tx);
        }
        Self { senders, handles }
    }

    pub(super) fn workers(&self) -> usize {
        self.senders.len()
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Adaptive fan-out for a batch of `batch` items over a pool: as many
/// participants as the pool offers, but never fewer than
/// [`min_per_worker`](super::fast::MIN_WINDOWS_PER_WORKER) items each —
/// `1` means "stay inline on the calling thread".
pub(super) fn fan_out_for<J: Send + 'static>(
    pool: &WorkerPool<J>,
    batch: usize,
    min_per_worker: usize,
) -> usize {
    (pool.workers() + 1).min(batch / min_per_worker).max(1)
}
