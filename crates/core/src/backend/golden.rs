//! The golden-model backend: the `hdc` scalar reference implementation
//! behind the uniform [`ExecutionBackend`] interface.
//!
//! This is the semantic anchor of the backend layer — the other backends
//! are correct exactly when they reproduce this one bit for bit. It is
//! not fast (one `u32` word per operation, no threading); use
//! [`FastBackend`](super::FastBackend) for throughput and
//! [`AccelBackend`](super::AccelBackend) for cycle-accurate timing.

use hdc::encoder::{SpatialEncoder, TemporalEncoder};
use hdc::{AssociativeMemory, BinaryHv};

use super::{
    argmin, validate_label, validate_window, BackendError, BackendSession, ExecutionBackend,
    HdModel, TrainSpec, TrainableBackend, TrainingSession, Verdict, VerdictSource,
};

/// The scalar golden-model backend (zero-configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldenBackend;

impl ExecutionBackend for GoldenBackend {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        Ok(Box::new(GoldenSession {
            spatial: SpatialEncoder::from_parts(model.im().clone(), model.cim().clone()),
            prototypes: model.prototypes().to_vec(),
            temporal: TemporalEncoder::new(model.ngram()),
        }))
    }
}

impl TrainableBackend for GoldenBackend {
    fn begin_training(&self, spec: &TrainSpec) -> Result<Box<dyn TrainingSession>, BackendError> {
        Ok(Box::new(GoldenTrainingSession {
            spatial: SpatialEncoder::from_parts(spec.im().clone(), spec.cim().clone()),
            temporal: TemporalEncoder::new(spec.ngram()),
            am: AssociativeMemory::new(spec.classes(), spec.n_words(), spec.tie_seed()),
            spec: spec.clone(),
        }))
    }
}

struct GoldenSession {
    spatial: SpatialEncoder,
    prototypes: Vec<BinaryHv>,
    temporal: TemporalEncoder,
}

/// Encodes one validated window into its query hypervector — the exact
/// chain of the golden classifier, shared by serving and training.
fn encode_window(
    spatial: &SpatialEncoder,
    temporal: &TemporalEncoder,
    window: &[Vec<u16>],
) -> Result<BinaryHv, BackendError> {
    validate_window(window, spatial.channels(), temporal.n())?;
    let spatials: Vec<BinaryHv> = window.iter().map(|s| spatial.encode_codes(s)).collect();
    Ok(temporal.encode(&spatials))
}

impl BackendSession for GoldenSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        let query = encode_window(&self.spatial, &self.temporal, window)?;
        let distances: Vec<u32> = self.prototypes.iter().map(|p| p.hamming(&query)).collect();
        Ok(Verdict {
            class: argmin(&distances),
            distances,
            query,
            cycles: None,
            source: VerdictSource::Scan,
        })
    }
}

/// The reference training session: the scalar encoders feeding the
/// golden [`AssociativeMemory`] — one `u32` counter per component, the
/// seeded tie-breaks of the golden model. Every other trainable backend
/// must reproduce its prototypes bit for bit.
struct GoldenTrainingSession {
    spatial: SpatialEncoder,
    temporal: TemporalEncoder,
    am: AssociativeMemory,
    spec: TrainSpec,
}

impl TrainingSession for GoldenTrainingSession {
    fn train(&mut self, window: &[Vec<u16>], label: usize) -> Result<(), BackendError> {
        validate_label(label, self.am.n_classes())?;
        let query = encode_window(&self.spatial, &self.temporal, window)?;
        self.am.train(label, &query);
        Ok(())
    }

    fn update_online(
        &mut self,
        window: &[Vec<u16>],
        label: usize,
    ) -> Result<Verdict, BackendError> {
        validate_label(label, self.am.n_classes())?;
        let query = encode_window(&self.spatial, &self.temporal, window)?;
        let before = self.am.classify(&query);
        self.am.update_online(label, &query);
        Ok(Verdict {
            class: before.class(),
            distances: before.distances().to_vec(),
            query,
            cycles: None,
            source: VerdictSource::Scan,
        })
    }

    fn examples(&self, class: usize) -> u32 {
        self.am.examples(class)
    }

    fn finalize(&mut self) -> Result<HdModel, BackendError> {
        HdModel::new(
            self.spec.cim().clone(),
            self.spec.im().clone(),
            self.am.prototypes().to_vec(),
            self.spec.ngram(),
        )
    }

    fn reset(&mut self) {
        self.am = AssociativeMemory::new(
            self.spec.classes(),
            self.spec.n_words(),
            self.spec.tie_seed(),
        );
    }

    fn into_serving(mut self: Box<Self>) -> Result<Box<dyn BackendSession>, BackendError> {
        let model = self.finalize()?;
        GoldenBackend.prepare(&model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AccelParams;
    use crate::pipeline::native_reference;

    #[test]
    fn matches_native_reference_on_single_gram_windows() {
        let params = AccelParams {
            n_words: 16,
            ngram: 3,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 7);
        let mut session = GoldenBackend.prepare(&model).unwrap();
        let window: Vec<Vec<u16>> = (0..3)
            .map(|t| {
                (0..4)
                    .map(|c| ((t * 31 + c * 17) * 991 % 65_536) as u16)
                    .collect()
            })
            .collect();
        let verdict = session.classify(&window).unwrap();
        let (query, distances, class) =
            native_reference(model.cim(), model.im(), model.prototypes(), &window);
        assert_eq!(verdict.query, query);
        assert_eq!(verdict.distances, distances);
        assert_eq!(verdict.class, class);
        assert!(verdict.cycles.is_none());
    }

    #[test]
    fn matches_golden_classifier_on_sliding_windows() {
        use hdc::{HdClassifier, HdConfig};
        let config = HdConfig {
            n_words: 32,
            channels: 4,
            levels: 22,
            ngram: 2,
            window: 5,
            seed: 3,
        };
        let mut clf = HdClassifier::new(config, 3).unwrap();
        let windows: Vec<Vec<Vec<u16>>> = (0..3)
            .map(|k: usize| {
                (0..5)
                    .map(|t: usize| {
                        (0..4)
                            .map(|c: usize| ((k * 20_000 + t * 700 + c * 97) % 65_536) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        for (class, w) in windows.iter().enumerate() {
            clf.train_window(class, w).unwrap();
        }
        clf.finalize();
        let model = HdModel::from_classifier(&mut clf);
        let mut session = GoldenBackend.prepare(&model).unwrap();
        for w in &windows {
            let verdict = session.classify(w).unwrap();
            let expected = clf.predict(w).unwrap();
            assert_eq!(verdict.class, expected.class());
            assert_eq!(verdict.distances, expected.distances());
        }
    }

    /// Training through the session API reproduces `HdClassifier`
    /// training bit for bit when the spec is derived from the same
    /// configuration — including online updates after finalization.
    #[test]
    fn training_session_matches_hd_classifier() {
        use hdc::{HdClassifier, HdConfig};
        let config = HdConfig {
            n_words: 24,
            channels: 4,
            levels: 22,
            ngram: 2,
            window: 4,
            seed: 0xBEEF,
        };
        let windows: Vec<Vec<Vec<u16>>> = (0..9)
            .map(|k: usize| {
                (0..4)
                    .map(|t: usize| {
                        (0..4)
                            .map(|c: usize| ((k * 17_000 + t * 801 + c * 131) % 65_536) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..9).map(|k| k % 3).collect();

        let mut clf = HdClassifier::new(config, 3).unwrap();
        for (w, &l) in windows.iter().zip(&labels) {
            clf.train_window(l, w).unwrap();
        }
        clf.finalize();
        let expected = HdModel::from_classifier(&mut clf);

        let spec = TrainSpec::from_config(&config, 3).unwrap();
        let mut session = GoldenBackend.begin_training(&spec).unwrap();
        session.train_batch(&windows, &labels).unwrap();
        assert_eq!(session.examples(0), 3);
        let model = session.finalize().unwrap();
        assert_eq!(model.prototypes(), expected.prototypes());

        // Online updates keep matching the classifier's adaptation.
        let verdict = session.update_online(&windows[0], 1).unwrap();
        let reference = clf.predict_and_adapt(&windows[0], Some(1)).unwrap();
        assert_eq!(verdict.class, reference.class());
        assert_eq!(verdict.distances, reference.distances());
        let adapted = session.finalize().unwrap();
        assert_eq!(
            adapted.prototypes()[1],
            clf.am_mut().prototype(1).clone(),
            "online update diverged from the classifier"
        );

        // reset() starts a fresh model on the same spec.
        session.reset();
        assert_eq!(session.examples(1), 0);

        // Bad labels and shapes are rejected.
        assert!(matches!(
            session.train(&windows[0], 7),
            Err(BackendError::Input(_))
        ));
        assert!(matches!(
            session.train(&vec![vec![0u16; 3]; 4], 0),
            Err(BackendError::Input(_))
        ));
    }

    /// `into_serving` serves the trained model directly.
    #[test]
    fn training_session_hands_off_to_serving() {
        use super::super::TrainSpec;
        let params = AccelParams {
            n_words: 8,
            ..AccelParams::emg_default()
        };
        let spec = TrainSpec::random(&params, 55);
        let mut training = GoldenBackend.begin_training(&spec).unwrap();
        let windows: Vec<Vec<Vec<u16>>> = (0..6)
            .map(|k: usize| {
                vec![(0..4)
                    .map(|c| ((k * 9_000 + c * 313) % 65_536) as u16)
                    .collect()]
            })
            .collect();
        let labels = [0usize, 1, 2, 0, 1, 2];
        training.train_batch(&windows, &labels).unwrap();
        let model = {
            let mut t2 = GoldenBackend.begin_training(&spec).unwrap();
            t2.train_batch(&windows, &labels).unwrap();
            t2.finalize().unwrap()
        };
        let mut direct = training.into_serving().unwrap();
        let mut via_model = GoldenBackend.prepare(&model).unwrap();
        for w in &windows {
            assert_eq!(direct.classify(w).unwrap(), via_model.classify(w).unwrap());
        }
    }

    #[test]
    fn rejects_malformed_windows() {
        let params = AccelParams {
            n_words: 8,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 1);
        let mut session = GoldenBackend.prepare(&model).unwrap();
        // Too short for the n-gram.
        assert!(matches!(
            session.classify(&[vec![0u16; 4]]),
            Err(BackendError::Input(_))
        ));
        // Wrong channel count.
        assert!(matches!(
            session.classify(&[vec![0u16; 4], vec![0u16; 3]]),
            Err(BackendError::Input(_))
        ));
    }
}
