//! The golden-model backend: the `hdc` scalar reference implementation
//! behind the uniform [`ExecutionBackend`] interface.
//!
//! This is the semantic anchor of the backend layer — the other backends
//! are correct exactly when they reproduce this one bit for bit. It is
//! not fast (one `u32` word per operation, no threading); use
//! [`FastBackend`](super::FastBackend) for throughput and
//! [`AccelBackend`](super::AccelBackend) for cycle-accurate timing.

use hdc::encoder::{SpatialEncoder, TemporalEncoder};
use hdc::BinaryHv;

use super::{
    argmin, validate_window, BackendError, BackendSession, ExecutionBackend, HdModel, Verdict,
};

/// The scalar golden-model backend (zero-configuration).
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldenBackend;

impl ExecutionBackend for GoldenBackend {
    fn name(&self) -> &'static str {
        "golden"
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        Ok(Box::new(GoldenSession {
            spatial: SpatialEncoder::from_parts(model.im().clone(), model.cim().clone()),
            prototypes: model.prototypes().to_vec(),
            temporal: TemporalEncoder::new(model.ngram()),
        }))
    }
}

struct GoldenSession {
    spatial: SpatialEncoder,
    prototypes: Vec<BinaryHv>,
    temporal: TemporalEncoder,
}

impl BackendSession for GoldenSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        validate_window(window, self.spatial.channels(), self.temporal.n())?;
        let spatials: Vec<BinaryHv> = window
            .iter()
            .map(|s| self.spatial.encode_codes(s))
            .collect();
        let query = self.temporal.encode(&spatials);
        let distances: Vec<u32> = self.prototypes.iter().map(|p| p.hamming(&query)).collect();
        Ok(Verdict {
            class: argmin(&distances),
            distances,
            query,
            cycles: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AccelParams;
    use crate::pipeline::native_reference;

    #[test]
    fn matches_native_reference_on_single_gram_windows() {
        let params = AccelParams {
            n_words: 16,
            ngram: 3,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 7);
        let mut session = GoldenBackend.prepare(&model).unwrap();
        let window: Vec<Vec<u16>> = (0..3)
            .map(|t| {
                (0..4)
                    .map(|c| ((t * 31 + c * 17) * 991 % 65_536) as u16)
                    .collect()
            })
            .collect();
        let verdict = session.classify(&window).unwrap();
        let (query, distances, class) =
            native_reference(model.cim(), model.im(), model.prototypes(), &window);
        assert_eq!(verdict.query, query);
        assert_eq!(verdict.distances, distances);
        assert_eq!(verdict.class, class);
        assert!(verdict.cycles.is_none());
    }

    #[test]
    fn matches_golden_classifier_on_sliding_windows() {
        use hdc::{HdClassifier, HdConfig};
        let config = HdConfig {
            n_words: 32,
            channels: 4,
            levels: 22,
            ngram: 2,
            window: 5,
            seed: 3,
        };
        let mut clf = HdClassifier::new(config, 3).unwrap();
        let windows: Vec<Vec<Vec<u16>>> = (0..3)
            .map(|k: usize| {
                (0..5)
                    .map(|t: usize| {
                        (0..4)
                            .map(|c: usize| ((k * 20_000 + t * 700 + c * 97) % 65_536) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        for (class, w) in windows.iter().enumerate() {
            clf.train_window(class, w).unwrap();
        }
        clf.finalize();
        let model = HdModel::from_classifier(&mut clf);
        let mut session = GoldenBackend.prepare(&model).unwrap();
        for w in &windows {
            let verdict = session.classify(w).unwrap();
            let expected = clf.predict(w).unwrap();
            assert_eq!(verdict.class, expected.class());
            assert_eq!(verdict.distances, expected.distances());
        }
    }

    #[test]
    fn rejects_malformed_windows() {
        let params = AccelParams {
            n_words: 8,
            ngram: 2,
            ..AccelParams::emg_default()
        };
        let model = HdModel::random(&params, 1);
        let mut session = GoldenBackend.prepare(&model).unwrap();
        // Too short for the n-gram.
        assert!(matches!(
            session.classify(&[vec![0u16; 4]]),
            Err(BackendError::Input(_))
        ));
        // Wrong channel count.
        assert!(matches!(
            session.classify(&[vec![0u16; 4], vec![0u16; 3]]),
            Err(BackendError::Input(_))
        ));
    }
}
