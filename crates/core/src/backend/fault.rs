//! Deterministic fault injection: a chaos wrapper around any backend.
//!
//! Robustness claims are worthless untested, and real worker panics are
//! rare by construction — so [`FaultBackend`] wraps an inner
//! [`ExecutionBackend`] / [`TrainableBackend`] and injects failures on a
//! fixed, seeded-in-advance schedule: a typed error on the nth call, a
//! panic on the nth call (to exercise the containment in
//! [`fast`](super::fast) / [`sharded`](super::sharded) and the serve
//! layer), or an injected latency (to trip serve-side deadlines).
//!
//! The schedule is a [`FaultPlan`]: a list of `(session, call, kind)`
//! entries. Sessions are numbered in [`prepare`](ExecutionBackend::prepare)
//! order across the backend value and its clones — which makes shard
//! targeting deterministic, because [`ShardedBackend`](super::ShardedBackend)
//! prepares its inner sessions in shard order: with
//! `ShardedBackend::new(FaultBackend::new(inner, plan), spec)`, session
//! index `k` *is* shard `k`. Calls are numbered per session, one per
//! `classify` / `classify_batch` / `classify_batch_into` (or `train` /
//! `train_batch` / `update_online` on a training session), starting at 0.
//!
//! Injected panics carry the literal text `"injected fault"` so test
//! panic hooks can silence exactly them and nothing else.
//!
//! ```
//! use pulp_hd_core::backend::{
//!     ExecutionBackend, FastBackend, FaultBackend, FaultKind, FaultPlan, HdModel,
//! };
//! use pulp_hd_core::layout::AccelParams;
//!
//! let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
//! let model = HdModel::random(&params, 42);
//! let chaos = FaultBackend::new(
//!     FastBackend::with_threads(1),
//!     FaultPlan::new().fault_at(1, FaultKind::Error),
//! );
//! let mut session = chaos.prepare(&model)?;
//! let window = vec![vec![100u16, 60_000, 33_000, 8_000]];
//! assert!(session.classify(&window).is_ok()); // call 0
//! assert!(session.classify(&window).is_err()); // call 1: injected
//! assert!(session.classify(&window).is_ok()); // call 2: healthy again
//! # Ok::<(), pulp_hd_core::backend::BackendError>(())
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::{
    BackendError, BackendSession, ExecutionBackend, HdModel, TrainSpec, TrainableBackend,
    TrainingSession, Verdict,
};

/// What an injected fault does when its scheduled call arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return [`BackendError::Injected`] instead of running the call.
    Error,
    /// Panic on the calling thread (the message contains
    /// `"injected fault"`), exercising the containment layer that turns
    /// worker panics into [`BackendError::WorkerLost`].
    Panic,
    /// Sleep for the given duration, then run the call normally —
    /// for deadline and timeout testing.
    Delay(Duration),
    /// Block the calling thread *indefinitely* — a delay with no end,
    /// for exercising deadline and watchdog paths against a backend
    /// that never answers (a wedged device, a livelocked kernel). The
    /// hang spins in short sleeps until the plan's [`HangRelease`]
    /// fires, then runs the call normally, so tests can observe the
    /// hung state (timeouts firing, deadlines shedding) and still tear
    /// down cleanly: keep a [`FaultPlan::hang_release`] handle and
    /// release it before joining server threads.
    Hang,
}

/// Releases every [`FaultKind::Hang`] of the [`FaultPlan`] it came
/// from: hung calls wake up, run normally, and all later `Hang` entries
/// of that plan become no-ops. Cheap to clone; thread-safe.
#[derive(Debug, Clone)]
pub struct HangRelease(Arc<AtomicBool>);

impl HangRelease {
    /// Wakes every call currently hung on this plan and disables its
    /// remaining `Hang` faults. Idempotent.
    pub fn release(&self) {
        // ORDERING: SeqCst — the hung call spins on this flag; pairing
        // with its SeqCst load makes the wake visible promptly and
        // totally ordered with the releasing thread's other writes.
        self.0.store(true, Ordering::SeqCst);
    }
}

/// One scheduled fault: fires on call `call` of session `session`
/// (`None` = every session).
#[derive(Debug, Clone, Copy)]
struct FaultEntry {
    session: Option<usize>,
    call: u64,
    kind: FaultKind,
}

/// A deterministic fault schedule (see the [module docs](self) for the
/// session/call numbering).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
    /// Shared across clones: once set, every `Hang` (pending or future)
    /// of this plan proceeds immediately.
    released: Arc<AtomicBool>,
}

impl FaultPlan {
    /// An empty schedule (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` on call `call` of **every** session.
    #[must_use]
    pub fn fault_at(mut self, call: u64, kind: FaultKind) -> Self {
        self.entries.push(FaultEntry {
            session: None,
            call,
            kind,
        });
        self
    }

    /// Schedules `kind` on call `call` of session `session` only
    /// (sessions are numbered in `prepare` order; under a sharded
    /// wrapper that is the shard index).
    #[must_use]
    pub fn fault_on(mut self, session: usize, call: u64, kind: FaultKind) -> Self {
        self.entries.push(FaultEntry {
            session: Some(session),
            call,
            kind,
        });
        self
    }

    /// A handle that wakes this plan's [`FaultKind::Hang`] faults.
    /// Tests holding hung calls **must** call
    /// [`HangRelease::release`] before joining the threads those calls
    /// run on, or teardown blocks forever.
    #[must_use]
    pub fn hang_release(&self) -> HangRelease {
        HangRelease(Arc::clone(&self.released))
    }

    /// The fault scheduled for `(session, call)`, if any (first match
    /// wins).
    fn fault(&self, session: usize, call: u64) -> Option<FaultKind> {
        self.entries
            .iter()
            .find(|e| e.call == call && e.session.is_none_or(|s| s == session))
            .map(|e| e.kind)
    }
}

/// A chaos wrapper: any inner backend plus a [`FaultPlan`]. Prepared
/// sessions (and training sessions) count their calls and consult the
/// plan before delegating; a scheduled fault fires *instead of* (Error,
/// Panic) or *before* (Delay) the inner call, so the inner session never
/// observes the faulted call and stays healthy for the next one.
#[derive(Debug, Clone)]
pub struct FaultBackend<B> {
    inner: B,
    plan: Arc<FaultPlan>,
    /// Next session index, shared across clones so shard targeting
    /// stays deterministic when the backend descriptor is copied into
    /// worker threads.
    next_session: Arc<AtomicUsize>,
}

impl<B> FaultBackend<B> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan: Arc::new(plan),
            next_session: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// The inner backend descriptor.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn next_session(&self) -> usize {
        // ORDERING: Relaxed — a unique-id counter; fetch_add is atomic
        // on its own, and no other memory hangs off the value.
        self.next_session.fetch_add(1, Ordering::Relaxed)
    }
}

/// Counts calls and fires the plan's faults for one session index.
#[derive(Debug)]
struct Trigger {
    plan: Arc<FaultPlan>,
    session: usize,
    calls: u64,
}

impl Trigger {
    /// Consumes one call number; fires the scheduled fault, if any.
    fn trip(&mut self) -> Result<(), BackendError> {
        let call = self.calls;
        self.calls += 1;
        match self.plan.fault(self.session, call) {
            None => Ok(()),
            Some(FaultKind::Error) => Err(BackendError::Injected { call }),
            Some(FaultKind::Panic) => {
                panic!("injected fault: scheduled panic at call {call}")
            }
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultKind::Hang) => {
                while !self.plan.released.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Ok(())
            }
        }
    }
}

impl<B: ExecutionBackend> ExecutionBackend for FaultBackend<B> {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn prepare(&self, model: &HdModel) -> Result<Box<dyn BackendSession>, BackendError> {
        Ok(Box::new(FaultSession {
            inner: self.inner.prepare(model)?,
            trigger: Trigger {
                plan: Arc::clone(&self.plan),
                session: self.next_session(),
                calls: 0,
            },
        }))
    }
}

struct FaultSession {
    inner: Box<dyn BackendSession>,
    trigger: Trigger,
}

impl BackendSession for FaultSession {
    fn classify(&mut self, window: &[Vec<u16>]) -> Result<Verdict, BackendError> {
        self.trigger.trip()?;
        self.inner.classify(window)
    }

    fn classify_batch(&mut self, windows: &[Vec<Vec<u16>>]) -> Result<Vec<Verdict>, BackendError> {
        self.trigger.trip()?;
        self.inner.classify_batch(windows)
    }

    fn classify_batch_into(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        out: &mut Vec<Verdict>,
    ) -> Result<(), BackendError> {
        self.trigger.trip()?;
        self.inner.classify_batch_into(windows, out)
    }
}

impl<B: TrainableBackend> TrainableBackend for FaultBackend<B> {
    fn begin_training(&self, spec: &TrainSpec) -> Result<Box<dyn TrainingSession>, BackendError> {
        Ok(Box::new(FaultTrainingSession {
            inner: self.inner.begin_training(spec)?,
            trigger: Trigger {
                plan: Arc::clone(&self.plan),
                session: self.next_session(),
                calls: 0,
            },
            next_session: Arc::clone(&self.next_session),
        }))
    }
}

struct FaultTrainingSession {
    inner: Box<dyn TrainingSession>,
    trigger: Trigger,
    /// For numbering the serving session this training session converts
    /// into, consistently with the backend's other sessions.
    next_session: Arc<AtomicUsize>,
}

impl TrainingSession for FaultTrainingSession {
    fn train(&mut self, window: &[Vec<u16>], label: usize) -> Result<(), BackendError> {
        self.trigger.trip()?;
        self.inner.train(window, label)
    }

    fn train_batch(
        &mut self,
        windows: &[Vec<Vec<u16>>],
        labels: &[usize],
    ) -> Result<(), BackendError> {
        self.trigger.trip()?;
        self.inner.train_batch(windows, labels)
    }

    fn update_online(
        &mut self,
        window: &[Vec<u16>],
        label: usize,
    ) -> Result<Verdict, BackendError> {
        self.trigger.trip()?;
        self.inner.update_online(window, label)
    }

    fn examples(&self, class: usize) -> u32 {
        self.inner.examples(class)
    }

    fn finalize(&mut self) -> Result<HdModel, BackendError> {
        self.inner.finalize()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn into_serving(self: Box<Self>) -> Result<Box<dyn BackendSession>, BackendError> {
        // ORDERING: Relaxed — unique-id counter, as in next_session.
        let session = self.next_session.fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(FaultSession {
            inner: self.inner.into_serving()?,
            trigger: Trigger {
                plan: self.trigger.plan,
                session,
                calls: 0,
            },
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{FastBackend, GoldenBackend};
    use super::*;
    use crate::layout::AccelParams;
    use hdc::rng::Xoshiro256PlusPlus;

    fn params() -> AccelParams {
        AccelParams {
            n_words: 8,
            channels: 3,
            ngram: 2,
            classes: 4,
            levels: 11,
        }
    }

    fn windows(params: &AccelParams, seed: u64, count: usize) -> Vec<Vec<Vec<u16>>> {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..params.ngram)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn error_fires_on_scheduled_call_only_and_is_deterministic() {
        let params = params();
        let model = HdModel::random(&params, 3);
        let batch = windows(&params, 5, 4);
        for _ in 0..2 {
            let chaos = FaultBackend::new(
                FastBackend::with_threads(1),
                FaultPlan::new().fault_at(1, FaultKind::Error),
            );
            let mut session = chaos.prepare(&model).unwrap();
            assert!(session.classify_batch(&batch).is_ok());
            assert!(matches!(
                session.classify_batch(&batch),
                Err(BackendError::Injected { call: 1 })
            ));
            // The inner session never saw the faulted call; healthy after.
            assert!(session.classify_batch(&batch).is_ok());
        }
    }

    #[test]
    fn session_targeting_numbers_sessions_in_prepare_order() {
        let params = params();
        let model = HdModel::random(&params, 7);
        let batch = windows(&params, 9, 2);
        let chaos = FaultBackend::new(
            GoldenBackend,
            FaultPlan::new().fault_on(1, 0, FaultKind::Error),
        );
        let mut first = chaos.prepare(&model).unwrap();
        let mut second = chaos.prepare(&model).unwrap();
        assert!(first.classify_batch(&batch).is_ok());
        assert!(matches!(
            second.classify_batch(&batch),
            Err(BackendError::Injected { call: 0 })
        ));
    }

    #[test]
    fn delay_preserves_verdicts_and_panic_message_is_tagged() {
        crate::backend::pool::silence_expected_panics();
        let params = params();
        let model = HdModel::random(&params, 11);
        let batch = windows(&params, 13, 3);
        let mut clean = GoldenBackend.prepare(&model).unwrap();
        let chaos = FaultBackend::new(
            GoldenBackend,
            FaultPlan::new()
                .fault_at(0, FaultKind::Delay(Duration::from_millis(1)))
                .fault_at(1, FaultKind::Panic),
        );
        let mut session = chaos.prepare(&model).unwrap();
        assert_eq!(
            session.classify_batch(&batch).unwrap(),
            clean.classify_batch(&batch).unwrap()
        );
        let panic = crate::backend::pool::contain(|| session.classify_batch(&batch)).unwrap_err();
        assert!(panic.contains("injected fault"), "{panic}");
    }

    #[test]
    fn hang_blocks_until_released_then_serves_bit_identical() {
        let params = params();
        let model = HdModel::random(&params, 23);
        let batch = windows(&params, 29, 3);
        let mut clean = GoldenBackend.prepare(&model).unwrap();
        let expected = clean.classify_batch(&batch).unwrap();
        let plan = FaultPlan::new().fault_at(0, FaultKind::Hang);
        let release = plan.hang_release();
        let chaos = FaultBackend::new(GoldenBackend, plan);
        let mut session = chaos.prepare(&model).unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        let hung = std::thread::spawn(move || {
            let got = session.classify_batch(&batch);
            tx.send(()).unwrap();
            got
        });
        // The call is wedged: nothing arrives while the hang holds.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        release.release();
        let got = hung.join().unwrap().unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn training_faults_fire_on_training_calls() {
        let params = params();
        let spec = TrainSpec::random(&params, 17);
        let batch = windows(&params, 19, 4);
        let labels = vec![0usize; 4];
        let chaos = FaultBackend::new(
            FastBackend::with_threads(1),
            FaultPlan::new().fault_at(1, FaultKind::Error),
        );
        let mut session = chaos.begin_training(&spec).unwrap();
        session.train_batch(&batch, &labels).unwrap();
        assert!(matches!(
            session.train_batch(&batch, &labels),
            Err(BackendError::Injected { call: 1 })
        ));
        session.train_batch(&batch, &labels).unwrap();
        assert_eq!(session.examples(0), 8);
    }
}
