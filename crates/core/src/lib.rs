//! # `pulp-hd-core` — the PULP-HD accelerator
//!
//! The paper's primary contribution, reproduced end to end: the three HD
//! computing kernels (mapping + spatial encoding, temporal N-gram
//! encoding, associative-memory search) lowered onto the simulated PULP
//! cluster with optimized memory accesses — `u32`-packed hypervectors,
//! L1/L2 placement, double-buffered DMA streaming, SPMD word-level
//! parallelization, and the XpulpV2 bit-manipulation lowering of Fig. 2.
//!
//! * [`backend`] — the unified execution-backend layer: one trait, three
//!   substrates (golden model, simulated cluster, packed-`u64` host
//!   engine) with single-window and batched classification.
//! * [`layout`] — buffer placement and tile planning (Fig. 5 footprints).
//! * [`kernels`] — assembly program generation (generic vs builtin).
//! * [`platform`] — PULPv3 / Wolf / Cortex-M4 presets.
//! * [`pipeline`] — host loader, accelerated classification, golden-model
//!   cross-check ([`pipeline::native_reference`]).
//! * [`experiments`] — runners regenerating every table and figure.
//! * [`tune`] — dimension auto-tuning: the smallest hypervector width
//!   that still meets a holdout accuracy floor.
//!
//! ## Example
//!
//! ```
//! use hdc::rng::derive_seed;
//! use hdc::{BinaryHv, ContinuousItemMemory, ItemMemory};
//! use pulp_hd_core::layout::AccelParams;
//! use pulp_hd_core::pipeline::{native_reference, AccelChain};
//! use pulp_hd_core::platform::Platform;
//!
//! let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
//! let cim = ContinuousItemMemory::new(params.levels, params.n_words, 1);
//! let im = ItemMemory::new(params.channels, params.n_words, 2);
//! let protos: Vec<BinaryHv> = (0..params.classes)
//!     .map(|k| BinaryHv::random(params.n_words, derive_seed(9, k as u64)))
//!     .collect();
//!
//! let mut chain = AccelChain::new(&Platform::pulpv3(4), params)?;
//! chain.load_model(&cim, &im, &protos)?;
//! let window = vec![vec![100u16, 60_000, 33_000, 8_000]];
//! let run = chain.classify(&window)?;
//!
//! // The simulated kernels agree with the golden model bit for bit.
//! let (query, distances, class) = native_reference(&cim, &im, &protos, &window);
//! assert_eq!(run.query, query);
//! assert_eq!(run.distances, distances);
//! assert_eq!(run.class, class);
//! println!("{} cycles", run.cycles_total);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod experiments;
pub mod kernels;
pub mod layout;
pub mod pipeline;
pub mod platform;
pub mod svm_kernel;
pub mod tune;

pub use backend::{
    AccelBackend, BackendError, BackendSession, CycleBreakdown, ExecutionBackend, FastBackend,
    GoldenBackend, HdModel, Verdict,
};
pub use kernels::{build_chain, BuildError, IsaVariant};
pub use layout::{AccelParams, Layout, LayoutError, MemPolicy};
pub use pipeline::{native_reference, AccelChain, ChainError, ChainRun};
pub use platform::Platform;
pub use svm_kernel::{SvmChain, SvmRun};
pub use tune::{tune_dimension, TuneOutcome};
