//! Platform presets: the three machines of the paper's evaluation, as
//! (cluster configuration, kernel lowering, memory policy, fmax) tuples.

use pulp_sim::{ClusterConfig, CortexM4Power, PowerModel};

use crate::kernels::IsaVariant;
use crate::layout::MemPolicy;

/// A fully specified execution target.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Display name used by reports.
    pub name: String,
    /// Simulator configuration.
    pub cluster: ClusterConfig,
    /// Kernel lowering.
    pub variant: IsaVariant,
    /// Matrix placement / streaming policy.
    pub policy: MemPolicy,
    /// Maximum sustainable clock in MHz (used for latency-feasibility
    /// checks; operating frequency itself is chosen per Table 2 as
    /// cycles / latency).
    pub fmax_mhz: f64,
}

impl Platform {
    /// PULPv3 silicon prototype with `cores` OpenRISC cores (1–4),
    /// portable kernels, DMA double buffering.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is outside 1–4.
    #[must_use]
    pub fn pulpv3(cores: usize) -> Self {
        Self {
            name: format!("PULPv3 {cores} core{}", if cores == 1 { "" } else { "s" }),
            cluster: ClusterConfig::pulpv3(cores),
            variant: IsaVariant::Generic,
            policy: MemPolicy::DmaDoubleBuffer,
            fmax_mhz: 65.0,
        }
    }

    /// Wolf with `cores` RI5CY cores (1–8) running the plain ANSI-C
    /// kernels (no builtins) — the paper's "Wolf 1 core" column.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is outside 1–8.
    #[must_use]
    pub fn wolf_plain(cores: usize) -> Self {
        Self {
            name: format!("Wolf {cores} core{}", if cores == 1 { "" } else { "s" }),
            cluster: ClusterConfig::wolf_no_ext(cores),
            variant: IsaVariant::Generic,
            policy: MemPolicy::DmaDoubleBuffer,
            fmax_mhz: 350.0,
        }
    }

    /// Wolf with `cores` cores using the XpulpV2 builtins — the paper's
    /// "with built-in" columns.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is outside 1–8.
    #[must_use]
    pub fn wolf_builtin(cores: usize) -> Self {
        Self {
            name: format!(
                "Wolf {cores} core{} built-in",
                if cores == 1 { "" } else { "s" }
            ),
            cluster: ClusterConfig::wolf(cores),
            variant: IsaVariant::Builtin,
            policy: MemPolicy::DmaDoubleBuffer,
            fmax_mhz: 350.0,
        }
    }

    /// The ARM Cortex M4 reference: single core, all matrices resident
    /// in its flat SRAM, portable kernels.
    #[must_use]
    pub fn cortex_m4() -> Self {
        Self {
            name: "ARM Cortex M4".into(),
            cluster: ClusterConfig::cortex_m4(),
            variant: IsaVariant::Generic,
            policy: MemPolicy::AllL1,
            fmax_mhz: CortexM4Power::paper().f_max_mhz,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cluster.n_cores
    }

    /// The fitted PULPv3 power model (applies to the PULPv3 presets).
    #[must_use]
    pub fn pulpv3_power() -> PowerModel {
        PowerModel::pulpv3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_pair_variant_with_capability() {
        let p = Platform::pulpv3(4);
        assert_eq!(p.variant, IsaVariant::Generic);
        assert!(!p.cluster.core.has_bitmanip);

        let w = Platform::wolf_builtin(8);
        assert_eq!(w.variant, IsaVariant::Builtin);
        assert!(w.cluster.core.has_bitmanip);

        let wp = Platform::wolf_plain(1);
        assert_eq!(wp.variant, IsaVariant::Generic);

        let m4 = Platform::cortex_m4();
        assert_eq!(m4.policy, MemPolicy::AllL1);
        assert_eq!(m4.cores(), 1);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(Platform::pulpv3(1).name, "PULPv3 1 core");
        assert_eq!(Platform::pulpv3(4).name, "PULPv3 4 cores");
        assert_eq!(Platform::wolf_builtin(8).name, "Wolf 8 cores built-in");
    }
}
