//! The accelerated HD-computing kernels: program generation for the
//! simulated PULP cluster.
//!
//! [`build_chain`] emits the paper's complete processing chain as one
//! SPMD program (all cores run it; work is split by `coreid`):
//!
//! 1. **MAP** — quantize the `N × channels` ADC codes to CIM level
//!    indices (`(code·(L−1) + 2¹⁵) >> 16`, the same integer arithmetic as
//!    the golden model).
//! 2. **Spatial encoder** — for every sample, bind each channel's IM row
//!    to its level's CIM row (XOR) and take the componentwise majority,
//!    tile by tile; with [`MemPolicy::DmaDoubleBuffer`] the CIM/IM tiles
//!    stream from L2 into alternating L1 buffers while cores compute.
//! 3. **Temporal encoder** — XOR the rotated spatial hypervectors into
//!    the N-gram query (skipped for N = 1, where the spatial hypervector
//!    *is* the query).
//! 4. **Associative memory** — Hamming distance of the query against
//!    every class prototype, word-parallel across cores with per-core
//!    partial distances, reduced and arg-min'ed by core 0.
//!
//! Two lowerings reproduce the paper's ISA comparison:
//!
//! * [`IsaVariant::Generic`] — portable code: the majority extracts bits
//!   with shift/mask in a rolled loop and the AM uses a SWAR popcount,
//!   mirroring what a compiler emits from ANSI C (runs on PULPv3, M4,
//!   and Wolf).
//! * [`IsaVariant::Builtin`] — the hand-optimized XpulpV2 version of the
//!   paper's Fig. 2: `p.extractu`/`p.insert` bit packing, `p.cnt`
//!   popcount, post-increment loads, and hardware loops (Wolf only).
//!
//! Region markers: `0` → start of MAP+ENCODERS, `1` → start of AM,
//! `2` → end. `RunSummary::region(0, 1)` is the paper's "MAP+ENCODERS"
//! row, `region(1, 2)` the "AM" row.
//!
//! Register conventions (documented invariants of the generated code):
//! `s0` = core id, `s1` = core count, `s2` = in-flight DMA id (core 0),
//! `s3`/`s4` = this core's word-chunk start/count for the current tile.
//! Subroutines clobber `t*`/`a*` and `s5`–`s11` but preserve `s0`–`s4`.

use pulp_sim::asm::{AsmError, Assembler, Program};
use pulp_sim::isa::regs::*;
use pulp_sim::isa::Reg;

use crate::layout::{AccelParams, Layout, MemPolicy};

/// Which lowering of the kernels to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaVariant {
    /// Portable RV32IM-style code (compiler-faithful rolled loops).
    Generic,
    /// XpulpV2 bit-manipulation builtins + hardware loops (Wolf).
    Builtin,
}

/// Why a chain program could not be generated.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// The accelerated path supports N-grams up to 10 (register budget of
    /// the temporal kernel); the `hdc` library itself has no such limit.
    NgramTooLarge(usize),
    /// Assembly-level failure (a bug in the generator).
    Asm(AsmError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NgramTooLarge(n) => {
                write!(f, "accelerated path supports n-gram sizes 1..=10, got {n}")
            }
            Self::Asm(e) => write!(f, "assembly error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<AsmError> for BuildError {
    fn from(e: AsmError) -> Self {
        Self::Asm(e)
    }
}

/// Maximum N-gram size of the accelerated temporal kernel.
pub const MAX_ACCEL_NGRAM: usize = 10;

/// Channel count up to which bound words are kept in registers during
/// the majority vote; beyond this the per-core L1 scratch path is used.
const REG_MAJORITY_MAX_CHANNELS: usize = 5;

struct Gen<'a> {
    a: Assembler,
    p: AccelParams,
    lay: &'a Layout,
    variant: IsaVariant,
    n_cores: usize,
    seq: usize,
}

/// Generates the full processing-chain program.
///
/// # Errors
///
/// Returns [`BuildError`] for unsupported parameters or on internal
/// assembly errors.
pub fn build_chain(
    layout: &Layout,
    variant: IsaVariant,
    n_cores: usize,
) -> Result<Program, BuildError> {
    let p = layout.params;
    if p.ngram > MAX_ACCEL_NGRAM {
        return Err(BuildError::NgramTooLarge(p.ngram));
    }
    let mut g = Gen {
        a: Assembler::new(),
        p,
        lay: layout,
        variant,
        n_cores,
        seq: 0,
    };
    g.emit_all()?;
    Ok(g.a.finish()?)
}

impl Gen<'_> {
    fn label(&mut self, stem: &str) -> String {
        self.seq += 1;
        format!("{stem}_{}", self.seq)
    }

    fn builtin(&self) -> bool {
        self.variant == IsaVariant::Builtin
    }

    fn use_dma(&self) -> bool {
        self.lay.policy == MemPolicy::DmaDoubleBuffer
    }

    /// Row pitch (bytes) of matrix rows as the kernels see them: tile
    /// pitch for the DMA policy, full matrix pitch otherwise.
    fn pitch(&self) -> u32 {
        match self.lay.policy {
            MemPolicy::DmaDoubleBuffer => self.lay.tile_words as u32 * 4,
            _ => self.p.n_words as u32 * 4,
        }
    }

    /// Number of majority inputs (bound hypervectors, plus the tie-break
    /// vector when the channel count is even).
    fn majority_inputs(&self) -> usize {
        if self.p.channels % 2 == 0 {
            self.p.channels + 1
        } else {
            self.p.channels
        }
    }

    /// Majority threshold: a component is 1 iff at least `TH` inputs are.
    fn majority_threshold(&self) -> i32 {
        (self.majority_inputs() / 2 + 1) as i32
    }

    fn emit_all(&mut self) -> Result<(), BuildError> {
        let end = self.label("chain_end");

        self.a
            .comment("chain entry: identify core, pay parallel-region cost");
        self.a.coreid(S0);
        self.a.numcores(S1);
        self.a.fork();
        self.a.marker(0);

        self.emit_map();
        self.a.barrier();

        self.emit_spatial_phase();

        if self.p.ngram > 1 {
            self.emit_temporal_phase();
        }
        self.a.barrier();
        self.a.marker(1);

        self.emit_am_phase();
        self.a.marker(2);
        self.a.j(&end);

        // Subroutines live past the end of the main flow.
        self.emit_spatial_words_sub();
        self.emit_am_words_sub();
        if self.p.ngram > 1 {
            self.emit_temporal_words_sub();
        }

        self.a.label(&end);
        self.a.halt();
        Ok(())
    }

    // ------------------------------------------------------------------
    // MAP: quantize samples to level indices, strided across cores.
    // ------------------------------------------------------------------
    fn emit_map(&mut self) {
        let items = (self.p.ngram * self.p.channels) as u32;
        let loop_top = self.label("map_loop");
        let done = self.label("map_done");
        self.a
            .comment("MAP: level[i] = (code[i]*(L-1) + 0x8000) >> 16");
        self.a.mv(T0, S0); // idx = core id, strided by n_cores
        self.a.li(T1, items);
        self.a.li(T2, self.p.levels as u32 - 1);
        self.a.li(T3, 0x8000);
        self.a.li(A0, self.lay.samples);
        self.a.li(A1, self.lay.levels);
        self.a.label(&loop_top);
        self.a.bge(T0, T1, &done);
        self.a.slli(T4, T0, 1);
        self.a.add(T4, T4, A0);
        self.a.lhu(T5, T4, 0);
        self.a.mul(T5, T5, T2);
        self.a.add(T5, T5, T3);
        self.a.srli(T5, T5, 16);
        self.a.slli(T4, T0, 2);
        self.a.add(T4, T4, A1);
        self.a.sw(T5, T4, 0);
        self.a.addi(T0, T0, self.n_cores as i32);
        self.a.j(&loop_top);
        self.a.label(&done);
    }

    // ------------------------------------------------------------------
    // DMA helpers (core 0 only; caller brackets with coreid checks).
    // ------------------------------------------------------------------

    /// Writes a 2-D descriptor and starts it; transfer id lands in `id`.
    /// Streams `rows` rows of `width_bytes` from `src` (pitch
    /// `src_pitch`) to `dst` (pitch = tile pitch).
    fn emit_dma_desc(
        &mut self,
        src: u32,
        dst: u32,
        width_bytes: u32,
        src_pitch: u32,
        rows: u32,
        id: Reg,
    ) {
        let d = self.lay.desc;
        self.a.li(A0, d);
        self.a.li(A1, src);
        self.a.sw(A1, A0, 0);
        self.a.li(A1, dst);
        self.a.sw(A1, A0, 4);
        self.a.li(A1, width_bytes);
        self.a.sw(A1, A0, 8);
        self.a.li(A1, src_pitch);
        self.a.sw(A1, A0, 12);
        self.a.li(A1, self.pitch());
        self.a.sw(A1, A0, 16);
        self.a.li(A1, rows);
        self.a.sw(A1, A0, 20);
        self.a.dma_start(id, A0);
    }

    /// Starts the CIM+IM transfers of tile `k` into buffer `sel`;
    /// the id of the *last* transfer (the engine is in-order, so its
    /// completion implies the first's) lands in `S2`.
    fn emit_dma_cim_im_tile(&mut self, k: usize, sel: usize) {
        let (w0, width) = self.lay.tile_extent(k);
        let wb = width as u32 * 4;
        let off = w0 as u32 * 4;
        let full_pitch = self.p.n_words as u32 * 4;
        self.emit_dma_desc(
            self.lay.cim + off,
            self.lay.buf_cim[sel],
            wb,
            full_pitch,
            self.p.levels as u32,
            T6,
        );
        self.emit_dma_desc(
            self.lay.im + off,
            self.lay.buf_im[sel],
            wb,
            full_pitch,
            self.p.channels as u32,
            S2,
        );
    }

    /// Starts the AM transfer of tile `k` into buffer `sel`; id in `S2`.
    fn emit_dma_am_tile(&mut self, k: usize, sel: usize) {
        let (w0, width) = self.lay.tile_extent(k);
        self.emit_dma_desc(
            self.lay.am + w0 as u32 * 4,
            self.lay.buf_am[sel],
            width as u32 * 4,
            self.p.n_words as u32 * 4,
            self.p.classes as u32,
            S2,
        );
    }

    /// Emits `if (core_id != 0) goto skip; …body…; skip:`.
    fn core0_only(&mut self, body: impl FnOnce(&mut Self)) {
        let skip = self.label("not_core0");
        self.a.bnez(S0, &skip);
        body(self);
        self.a.label(&skip);
    }

    // ------------------------------------------------------------------
    // Per-tile word chunking: S3 = my start word, S4 = my word count.
    // ------------------------------------------------------------------
    fn emit_chunk(&mut self, width: usize) {
        let chunk = width.div_ceil(self.n_cores) as u32;
        let ok = self.label("chunk_ok");
        self.a.comment("split tile words across cores");
        self.a.li(T0, chunk);
        self.a.mul(S3, S0, T0); // my start
        self.a.li(T1, width as u32);
        self.a.sub(T2, T1, S3); // remaining (may be ≤ 0)
        self.a.mv(S4, T0);
        self.a.bge(T2, T0, &ok);
        self.a.mv(S4, T2); // count = remaining when short (or ≤ 0)
        self.a.label(&ok);
    }

    // ------------------------------------------------------------------
    // Spatial phase: tiles × samples.
    // ------------------------------------------------------------------
    fn emit_spatial_phase(&mut self) {
        let n_tiles = self.lay.n_tiles;
        if self.use_dma() {
            self.core0_only(|g| {
                g.a.comment("prefetch tile 0 (CIM+IM), wait for it");
                g.emit_dma_cim_im_tile(0, 0);
                g.a.dma_wait(S2);
            });
        }
        self.a.barrier();

        for k in 0..n_tiles {
            let (w0, width) = self.lay.tile_extent(k);
            if self.use_dma() && k + 1 < n_tiles {
                self.core0_only(|g| {
                    g.a.comment("start streaming the next tile while computing");
                    g.emit_dma_cim_im_tile(k + 1, (k + 1) % 2);
                });
            }
            self.emit_chunk(width);
            for t in 0..self.p.ngram {
                // A0 = &spatial[t][w0 + my_start]
                self.a.li(
                    A0,
                    self.lay.spatials + (t * self.p.n_words) as u32 * 4 + w0 as u32 * 4,
                );
                self.a.slli(T0, S3, 2);
                self.a.add(A0, A0, T0);
                self.a.mv(A1, S4);
                // A2/A3 = IM/CIM rows for this tile (+ my word offset).
                let (im_base, cim_base) = match self.lay.policy {
                    MemPolicy::DmaDoubleBuffer => (self.lay.buf_im[k % 2], self.lay.buf_cim[k % 2]),
                    // Direct policies address the matrices themselves.
                    _ => (self.lay.im + w0 as u32 * 4, self.lay.cim + w0 as u32 * 4),
                };
                self.a.li(A2, im_base);
                self.a.add(A2, A2, T0);
                self.a.li(A3, cim_base);
                self.a.add(A3, A3, T0);
                // A4 = &levels[t][0]
                self.a
                    .li(A4, self.lay.levels + (t * self.p.channels) as u32 * 4);
                self.a.call("spatial_words");
            }
            if self.use_dma() && k + 1 < n_tiles {
                self.core0_only(|g| g.a.dma_wait(S2));
            }
            self.a.barrier();
        }
    }

    // ------------------------------------------------------------------
    // Spatial word-loop subroutine.
    //
    // In:  A0 out ptr, A1 word count (≤0 ⇒ nothing), A2 IM base+offset,
    //      A3 CIM base+offset, A4 levels row. Preserves S0–S4.
    // ------------------------------------------------------------------
    fn emit_spatial_words_sub(&mut self) {
        self.a.label("spatial_words");
        let done = self.label("spat_done");
        self.a.bge(ZERO, A1, &done);
        if self.p.channels <= REG_MAJORITY_MAX_CHANNELS {
            self.emit_spatial_words_reg(&done);
        } else {
            self.emit_spatial_words_scratch(&done);
        }
        self.a.label(&done);
        self.a.ret();
    }

    /// Register-resident majority for small channel counts (the paper's
    /// 4-channel EMG case).
    fn emit_spatial_words_reg(&mut self, _done: &str) {
        let c = self.p.channels;
        let n_b = self.majority_inputs();
        let pitch = self.pitch();
        let bounds = [T0, T1, T2, T3, T4];
        let cim_ptrs = [S5, S6, S7, S8, S9];
        let im_ptrs = [S10, S11, A6, A7, T6];
        assert!(c <= 5, "register path handles up to 5 channels");

        self.a.comment("select CIM rows from quantized levels");
        for (ch, &ptr) in cim_ptrs.iter().take(c).enumerate() {
            self.a.lw(T5, A4, ch as i32 * 4);
            self.a.li(A5, pitch);
            self.a.mul(T5, T5, A5);
            self.a.add(ptr, A3, T5);
        }
        self.a.comment("IM row pointers");
        for (ch, &ptr) in im_ptrs.iter().take(c).enumerate() {
            self.a.li(T5, ch as u32 * pitch);
            self.a.add(ptr, A2, T5);
        }
        if !self.builtin() {
            self.a
                .comment("per-core bound[] array (the C code keeps one)");
            self.a.li(T5, self.lay.scratch);
            self.a.li(A5, (self.p.channels as u32 + 1) * 4);
            self.a.mul(A5, S0, A5);
            self.a.add(A4, T5, A5); // A4 = my bound[] base (levels done)
        }

        let word_top = self.label("spat_word");
        if self.builtin() {
            let body_end = self.label("spat_hw_end");
            // The pack register keeps bits ≥ n_b at zero across the whole
            // loop (only slots 0..n_b are ever inserted).
            self.a.li(A2, 0);
            self.a.lp_setup(A1, &word_top, &body_end);
            self.a.label(&word_top);
            self.a.comment("bind: bound[c] = IM[c] ^ CIM[level[c]]");
            for ch in 0..c {
                self.a.lw_post(bounds[ch], cim_ptrs[ch], 4);
                self.a.lw_post(T5, im_ptrs[ch], 4);
                self.a.xor(bounds[ch], bounds[ch], T5);
            }
            if n_b > c {
                self.a.comment("tie-break vector = bound[0] ^ bound[1]");
                self.a.xor(bounds[c], bounds[0], bounds[1]);
            }
            self.a
                .comment("majority via p.extractu / p.insert / p.cnt (Fig. 2)");
            let th = self.majority_threshold();
            for bit in 0..32u8 {
                for (slot, b) in bounds.iter().take(n_b).enumerate() {
                    self.a.p_extractu(A3, *b, 1, bit);
                    self.a.p_insert(A2, A3, 1, slot as u8);
                }
                self.a.p_cnt(A3, A2);
                self.a.sltiu(A3, A3, th);
                self.a.xori(A3, A3, 1);
                self.a.p_insert(A5, A3, 1, bit);
            }
            self.a.sw_post(A5, A0, 4);
            self.a.label(&body_end);
        } else {
            let bit_top = self.label("spat_bit");
            let end = self.label("spat_word_end");
            self.a.label(&word_top);
            self.a.comment("bind: bound[c] = IM[c] ^ CIM[level[c]]");
            for ch in 0..c {
                self.a.lw(bounds[ch], cim_ptrs[ch], 0);
                self.a.lw(T5, im_ptrs[ch], 0);
                self.a.xor(bounds[ch], bounds[ch], T5);
                self.a.addi(cim_ptrs[ch], cim_ptrs[ch], 4);
                self.a.addi(im_ptrs[ch], im_ptrs[ch], 4);
            }
            if n_b > c {
                self.a.xor(bounds[c], bounds[0], bounds[1]);
            }
            self.a.comment("spill bound[] as the compiled C does");
            for (slot, b) in bounds.iter().take(n_b).enumerate() {
                self.a.sw(*b, A4, slot as i32 * 4);
            }
            self.a
                .comment("rolled shift/mask majority over the in-memory array");
            let th = self.majority_threshold();
            self.a.li(A2, 31); // bit index, counting down
            self.a.li(A5, 0); // out word
            self.a.label(&bit_top);
            self.a.li(A3, 0); // vote count
            for slot in 0..n_b {
                self.a.lw(T5, A4, slot as i32 * 4);
                self.a.srl(T5, T5, A2);
                self.a.andi(T5, T5, 1);
                self.a.add(A3, A3, T5);
            }
            self.a.slti(T5, A3, th);
            self.a.xori(T5, T5, 1);
            self.a.sll(T5, T5, A2);
            self.a.or(A5, A5, T5);
            self.a.addi(A2, A2, -1);
            self.a.bge(A2, ZERO, &bit_top);
            self.a.sw(A5, A0, 0);
            self.a.addi(A0, A0, 4);
            self.a.addi(A1, A1, -1);
            self.a.bnez(A1, &word_top);
            self.a.label(&end);
        }
    }

    /// Scratch-array majority for large channel counts (Fig. 5 sweep):
    /// bound words live in per-core L1 scratch, votes are accumulated by
    /// looping over channels per bit.
    fn emit_spatial_words_scratch(&mut self, _done: &str) {
        let c = self.p.channels as u32;
        let n_b = self.majority_inputs() as u32;
        let pitch = self.pitch();
        let th = self.majority_threshold();

        self.a.comment("per-core bound-word scratch");
        self.a.li(T0, self.lay.scratch);
        self.a.li(T1, (self.p.channels as u32 + 1) * 4);
        self.a.mul(T1, S0, T1);
        self.a.add(T6, T0, T1); // T6 = scratch row base (preserved)

        let word_top = self.label("spat_word");
        let bind_top = self.label("spat_bind");
        let word_end = self.label("spat_word_end");

        self.a.label(&word_top);
        // --- bind loop over channels ---
        self.a.mv(A6, A2); // IM walker (row-major: += pitch per channel)
        self.a.mv(A7, A4); // levels walker
        self.a.mv(S5, T6); // scratch walker
        self.a.li(S6, 0); // channel counter
        self.a.li(S7, c);
        self.a.label(&bind_top);
        self.a.lw(T5, A7, 0); // level
        self.a.li(A5, pitch);
        self.a.mul(T5, T5, A5);
        self.a.add(T5, T5, A3); // CIM row + word offset
        self.a.lw(T0, T5, 0);
        self.a.lw(T1, A6, 0);
        self.a.xor(T0, T0, T1);
        self.a.sw(T0, S5, 0);
        self.a.addi(S5, S5, 4);
        self.a.addi(A6, A6, pitch as i32);
        self.a.addi(A7, A7, 4);
        self.a.addi(S6, S6, 1);
        self.a.blt(S6, S7, &bind_top);
        if n_b > c {
            self.a.comment("tie-break = bound[0] ^ bound[1]");
            self.a.lw(T0, T6, 0);
            self.a.lw(T1, T6, 4);
            self.a.xor(T0, T0, T1);
            self.a.sw(T0, S5, 0);
        }
        // --- majority: bits and inputs unrolled, constant offsets into
        // the scratch array (what the compiler does for the fixed-size
        // inner loops of the C code; the builtin variant uses the
        // constant-position p.extractu of Fig. 2) ---
        self.a.li(A5, 0); // out word
        for bit in 0..32u8 {
            self.a.li(S9, 0); // vote count
            for slot in 0..n_b as i32 {
                self.a.lw(T5, T6, slot * 4);
                if self.builtin() {
                    self.a.p_extractu(T5, T5, 1, bit);
                } else {
                    self.a.srli(T5, T5, bit);
                    self.a.andi(T5, T5, 1);
                }
                self.a.add(S9, S9, T5);
            }
            self.a.slti(T5, S9, th);
            self.a.xori(T5, T5, 1);
            if self.builtin() {
                self.a.p_insert(A5, T5, 1, bit);
            } else {
                self.a.slli(T5, T5, bit);
                self.a.or(A5, A5, T5);
            }
        }
        // --- store and advance to the next word ---
        self.a.sw(A5, A0, 0);
        self.a.addi(A0, A0, 4);
        self.a.addi(A2, A2, 4);
        self.a.addi(A3, A3, 4);
        self.a.addi(A1, A1, -1);
        self.a.bnez(A1, &word_top);
        self.a.label(&word_end);
    }

    // ------------------------------------------------------------------
    // Temporal phase (N > 1): query = S₀ ⊕ ρ¹S₁ ⊕ … ⊕ ρᴺ⁻¹Sₙ₋₁,
    // word-parallel across cores, everything resident in L1.
    // ------------------------------------------------------------------
    fn emit_temporal_phase(&mut self) {
        self.a.barrier();
        self.emit_chunk(self.p.n_words);
        self.a
            .comment("temporal encoder: XOR of rotated spatial HVs");
        // A0 = &query[my_start], A1 = count.
        self.a.li(A0, self.lay.query);
        self.a.slli(T0, S3, 2);
        self.a.add(A0, A0, T0);
        self.a.mv(A1, S4);
        self.a.call("temporal_words");
    }

    /// Temporal word-loop subroutine. In: A0 out ptr, A1 count,
    /// S3 = my start word. Preserves S0–S2.
    fn emit_temporal_words_sub(&mut self) {
        let n = self.p.ngram;
        let w = self.p.n_words as u32;
        let sp = self.lay.spatials;
        let row = self.p.n_words as u32 * 4;
        // Pointer registers for spatial rows 1..N−1 and their previous
        // words (rotation carry). T5 stays free as the shared scratch;
        // S2 (the DMA-id register) is dead between the spatial and AM
        // phases and is safely recycled here.
        let ptrs = [S5, S6, S7, S8, S9, S10, S11, A6, A7];
        let prevs = [T0, T1, T2, T3, T4, T6, S3, S4, S2];
        assert!(n - 1 <= ptrs.len(), "checked by MAX_ACCEL_NGRAM");

        self.a.label("temporal_words");
        let done = self.label("tw_done");
        self.a.bge(ZERO, A1, &done);

        // A4 = &spatial[0][my_start]; A2 = wrapped index of my_start−1.
        self.a.slli(A3, S3, 2);
        self.a.li(A4, sp);
        self.a.add(A4, A4, A3);
        let no_wrap = self.label("tw_nowrap");
        self.a.li(A2, (w - 1) * 4);
        self.a.beqz(S3, &no_wrap);
        self.a.addi(A2, A3, -4);
        self.a.label(&no_wrap);

        for k in 1..n {
            // ptr_k = &spatial[k][my_start]; prev_k = spatial[k][start−1].
            self.a.li(T5, sp + k as u32 * row);
            self.a.add(ptrs[k - 1], T5, A3);
            self.a.add(T5, T5, A2);
            self.a.lw(prevs[k - 1], T5, 0);
        }

        let top = self.label("tw_word");
        self.a.label(&top);
        self.a.lw(A5, A4, 0); // acc = spatial[0][w]
        self.a.addi(A4, A4, 4);
        for k in 1..n {
            let sh = k as u8;
            self.a.lw(A3, ptrs[k - 1], 0); // lo = s_k[w]
            self.a.addi(ptrs[k - 1], ptrs[k - 1], 4);
            self.a.slli(A2, A3, sh);
            self.a.srli(T5, prevs[k - 1], 32 - sh);
            self.a.or(A2, A2, T5);
            self.a.xor(A5, A5, A2);
            self.a.mv(prevs[k - 1], A3);
        }
        self.a.sw(A5, A0, 0);
        self.a.addi(A0, A0, 4);
        self.a.addi(A1, A1, -1);
        self.a.bnez(A1, &top);
        self.a.label(&done);
        self.a.ret();
    }

    // ------------------------------------------------------------------
    // AM phase: tiled Hamming search + core-0 reduction.
    // ------------------------------------------------------------------
    fn emit_am_phase(&mut self) {
        let k_classes = self.p.classes;
        self.a.comment("zero my row of the partial-distance array");
        self.a.li(T0, self.lay.partials);
        self.a.li(T1, k_classes as u32 * 4);
        self.a.mul(T1, S0, T1);
        self.a.add(T0, T0, T1);
        for k in 0..k_classes {
            self.a.sw(ZERO, T0, k as i32 * 4);
        }

        if self.use_dma() {
            self.core0_only(|g| {
                g.emit_dma_am_tile(0, 0);
                g.a.dma_wait(S2);
            });
        }
        self.a.barrier();

        if !self.builtin() {
            self.a.comment("SWAR popcount masks");
            self.a.li(S5, 0x5555_5555);
            self.a.li(S6, 0x3333_3333);
            self.a.li(S7, 0x0f0f_0f0f);
            self.a.li(S8, 0x0101_0101);
        }

        for tile in 0..self.lay.n_tiles {
            let (w0, width) = self.lay.tile_extent(tile);
            if self.use_dma() && tile + 1 < self.lay.n_tiles {
                self.core0_only(|g| g.emit_dma_am_tile(tile + 1, (tile + 1) % 2));
            }
            self.emit_chunk(width);
            let am_base = match self.lay.policy {
                MemPolicy::DmaDoubleBuffer => self.lay.buf_am[tile % 2],
                _ => self.lay.am + w0 as u32 * 4,
            };
            // A0 = &query[w0 + my_start], A2 = AM rows + my offset,
            // A3 = &partials[my row].
            self.a.li(A0, self.lay.query + w0 as u32 * 4);
            self.a.slli(T0, S3, 2);
            self.a.add(A0, A0, T0);
            self.a.mv(A1, S4);
            self.a.li(A2, am_base);
            self.a.add(A2, A2, T0);
            self.a.li(A3, self.lay.partials);
            self.a.li(T1, k_classes as u32 * 4);
            self.a.mul(T1, S0, T1);
            self.a.add(A3, A3, T1);
            self.a.call("am_words");
            if self.use_dma() && tile + 1 < self.lay.n_tiles {
                self.core0_only(|g| g.a.dma_wait(S2));
            }
            self.a.barrier();
        }

        self.emit_am_reduce();
        self.a.barrier();
    }

    /// AM word-loop subroutine. In: A0 query ptr, A1 count, A2 AM tile
    /// base + offset, A3 partials row. Preserves S0–S4 (and the SWAR
    /// masks in S5–S8 for the generic variant).
    fn emit_am_words_sub(&mut self) {
        let pitch = self.pitch();
        self.a.label("am_words");
        let done = self.label("amw_done");
        self.a.bge(ZERO, A1, &done);
        for class in 0..self.p.classes {
            let cls_done = self.label("amw_cls_done");
            self.a
                .comment("Hamming distance of my words against one prototype");
            self.a.mv(T0, A0); // query walker
            self.a.li(T1, class as u32 * pitch);
            self.a.add(T1, T1, A2); // prototype walker
            self.a.li(T2, 0); // distance accumulator
            self.a.mv(T3, A1); // word counter
            let top = self.label("amw_word");
            if self.builtin() {
                let end = self.label("amw_hw_end");
                self.a.lp_setup(T3, &top, &end);
                self.a.label(&top);
                self.a.lw_post(T4, T0, 4);
                self.a.lw_post(T5, T1, 4);
                self.a.xor(T4, T4, T5);
                self.a.p_cnt(T4, T4);
                self.a.add(T2, T2, T4);
                self.a.label(&end);
            } else {
                self.a.label(&top);
                self.a.lw(T4, T0, 0);
                self.a.lw(T5, T1, 0);
                self.a.xor(T4, T4, T5);
                self.a.comment("SWAR popcount");
                self.a.srli(T5, T4, 1);
                self.a.and(T5, T5, S5);
                self.a.sub(T4, T4, T5);
                self.a.srli(T5, T4, 2);
                self.a.and(T5, T5, S6);
                self.a.and(T4, T4, S6);
                self.a.add(T4, T4, T5);
                self.a.srli(T5, T4, 4);
                self.a.add(T4, T4, T5);
                self.a.and(T4, T4, S7);
                self.a.mul(T4, T4, S8);
                self.a.srli(T4, T4, 24);
                self.a.add(T2, T2, T4);
                self.a.addi(T0, T0, 4);
                self.a.addi(T1, T1, 4);
                self.a.addi(T3, T3, -1);
                self.a.bnez(T3, &top);
            }
            self.a.comment("accumulate into my partial for this class");
            self.a.lw(T4, A3, class as i32 * 4);
            self.a.add(T4, T4, T2);
            self.a.sw(T4, A3, class as i32 * 4);
            self.a.label(&cls_done);
        }
        self.a.label(&done);
        self.a.ret();
    }

    /// Core-0 reduction: sum per-core partials, arg-min, store the
    /// result block `[best_class, dist_0, …]`.
    fn emit_am_reduce(&mut self) {
        self.core0_only(|g| {
            let kc = g.p.classes;
            g.a.comment("reduce partial distances and pick the nearest class");
            g.a.li(A0, g.lay.partials);
            g.a.li(A1, g.lay.result);
            g.a.li(T0, u32::MAX); // best distance
            g.a.li(T1, 0); // best class
            for k in 0..kc {
                g.a.li(T2, 0);
                for core in 0..g.n_cores {
                    g.a.lw(T3, A0, ((core * kc + k) * 4) as i32);
                    g.a.add(T2, T2, T3);
                }
                g.a.sw(T2, A1, (4 + 4 * k) as i32);
                let skip = g.label("red_skip");
                g.a.bgeu(T2, T0, &skip);
                g.a.mv(T0, T2);
                g.a.li(T1, k as u32);
                g.a.label(&skip);
            }
            g.a.sw(T1, A1, 0);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AccelParams, Layout, MemPolicy};

    fn plan(params: AccelParams, policy: MemPolicy, cores: usize) -> Layout {
        let (l1, l2) = match policy {
            MemPolicy::AllL1 => (192 * 1024, 512 * 1024),
            _ => (64 * 1024, 4 * 1024 * 1024),
        };
        Layout::plan(params, policy, cores, l1, l2).unwrap()
    }

    #[test]
    fn builds_for_all_policies_and_variants() {
        let p = AccelParams::emg_default();
        for policy in [MemPolicy::DmaDoubleBuffer, MemPolicy::L2Direct] {
            for variant in [IsaVariant::Generic, IsaVariant::Builtin] {
                for cores in [1, 4, 8] {
                    let lay = plan(p, policy, cores);
                    let prog = build_chain(&lay, variant, cores).unwrap();
                    assert!(prog.len() > 100, "suspiciously small program");
                }
            }
        }
        let lay = plan(p, MemPolicy::AllL1, 1);
        build_chain(&lay, IsaVariant::Generic, 1).unwrap();
    }

    #[test]
    fn builds_for_large_channel_counts_and_ngrams() {
        for channels in [6, 32, 256] {
            for ngram in [1, 3, 10] {
                let p = AccelParams {
                    channels,
                    ngram,
                    ..AccelParams::emg_default()
                };
                let lay = plan(p, MemPolicy::DmaDoubleBuffer, 8);
                build_chain(&lay, IsaVariant::Builtin, 8).unwrap();
                build_chain(&lay, IsaVariant::Generic, 8).unwrap();
            }
        }
    }

    #[test]
    fn oversized_ngram_rejected() {
        let p = AccelParams {
            ngram: 11,
            ..AccelParams::emg_default()
        };
        // Layout itself allows it; the accelerated builder refuses.
        let lay = plan(p, MemPolicy::DmaDoubleBuffer, 4);
        assert!(matches!(
            build_chain(&lay, IsaVariant::Generic, 4),
            Err(BuildError::NgramTooLarge(11))
        ));
    }

    #[test]
    fn generic_variant_avoids_extension_instructions() {
        let p = AccelParams::emg_default();
        let lay = plan(p, MemPolicy::DmaDoubleBuffer, 4);
        let prog = build_chain(&lay, IsaVariant::Generic, 4).unwrap();
        for inst in prog.insts() {
            assert!(
                !inst.needs_bitmanip() && !inst.needs_post_increment() && !inst.needs_hw_loops(),
                "generic program contains extension instruction {inst}"
            );
        }
    }

    #[test]
    fn builtin_variant_uses_the_extensions() {
        let p = AccelParams::emg_default();
        let lay = plan(p, MemPolicy::DmaDoubleBuffer, 8);
        let prog = build_chain(&lay, IsaVariant::Builtin, 8).unwrap();
        assert!(prog.insts().iter().any(|i| i.needs_bitmanip()));
        assert!(prog.insts().iter().any(|i| i.needs_post_increment()));
        assert!(prog.insts().iter().any(|i| i.needs_hw_loops()));
    }

    #[test]
    fn listing_mentions_all_kernels() {
        let p = AccelParams {
            ngram: 3,
            ..AccelParams::emg_default()
        };
        let lay = plan(p, MemPolicy::DmaDoubleBuffer, 4);
        let prog = build_chain(&lay, IsaVariant::Generic, 4).unwrap();
        let listing = prog.listing();
        for name in ["spatial_words", "am_words", "temporal_words", "MAP"] {
            assert!(listing.contains(name), "listing missing {name}");
        }
    }
}
