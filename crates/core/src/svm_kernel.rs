//! The SVM baseline *executed* on the simulated ARM Cortex M4.
//!
//! The paper's Table 1 compares HD computing against a fixed-point SVM
//! running on the M4. This module lowers the quantized one-vs-one RBF
//! inference of [`svm::FixedSvm`] to the simulated core — per support
//! vector: 12-bit feature differences, squared-distance accumulation,
//! bucketed `exp` lookup, Q15 multiply-accumulate; then pairwise voting
//! with magnitude tie-breaking — so the SVM's cycle count is *measured*
//! on the same timing model as the HD chain, and its arithmetic is
//! cross-checked bit-exactly against the host reference.

use pulp_sim::asm::Assembler;
use pulp_sim::isa::regs::*;
use pulp_sim::{Cluster, SimError, L1_BASE};
use svm::{FixedSvm, LUT_SIZE};

use crate::pipeline::ChainError;
use crate::platform::Platform;

/// Maximum feature count the kernel keeps in registers.
pub const MAX_SVM_FEATURES: usize = 6;

/// Result of one simulated SVM classification.
#[derive(Debug, Clone)]
pub struct SvmRun {
    /// Predicted class.
    pub class: usize,
    /// Per-machine integer decision values, in machine order.
    pub decisions: Vec<i32>,
    /// Total cycles of the inference.
    pub cycles: u64,
}

/// A quantized SVM loaded onto the simulated M4.
#[derive(Debug)]
pub struct SvmChain {
    cluster: Cluster,
    n_features: usize,
    n_machines: usize,
    addr_features: u32,
    addr_result: u32,
}

impl SvmChain {
    /// Builds the inference program for `model` and loads its tables
    /// into the simulated M4 SRAM.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] if the model shape is unsupported or the
    /// program fails to assemble.
    ///
    /// # Panics
    ///
    /// Panics if the model has more than [`MAX_SVM_FEATURES`] features
    /// (the EMG task has 4).
    pub fn new(model: &FixedSvm) -> Result<Self, ChainError> {
        let c = model.n_features();
        assert!(
            c <= MAX_SVM_FEATURES,
            "SVM kernel keeps features in registers (≤ {MAX_SVM_FEATURES})"
        );
        let k = model.n_classes();
        let m_count = model.machines().len();

        // --- static layout in M4 SRAM -------------------------------
        let addr_features = L1_BASE;
        let addr_lut = L1_BASE + 0x40;
        let addr_votes = addr_lut + (LUT_SIZE as u32) * 2;
        let addr_mags = addr_votes + k as u32 * 4;
        let addr_result = addr_mags + k as u32 * 4;
        let n_sv = model.support_vectors().len();
        let mut cursor = addr_result + (1 + m_count as u32) * 4;
        cursor = (cursor + 7) & !7;
        // Shared SV matrix once; dense coefficient rows per machine.
        let addr_svs = cursor;
        cursor += (n_sv * c * 2) as u32;
        cursor = (cursor + 3) & !3;
        let mut addr_coeffs = Vec::with_capacity(m_count);
        for _ in model.machines() {
            addr_coeffs.push(cursor);
            cursor += (n_sv * 4) as u32;
        }

        // --- program --------------------------------------------------
        let mut a = Assembler::new();
        let feat_regs = [S5, S6, S7, S8, S9, S10];
        a.marker(0);
        a.comment("features, pre-shifted to 12-bit, stay in registers");
        a.li(A5, addr_features);
        for (ci, reg) in feat_regs.iter().take(c).enumerate() {
            a.lhu(*reg, A5, (ci * 2) as i32);
            a.srli(*reg, *reg, 4);
        }
        a.comment("clear votes and magnitudes");
        a.li(A5, addr_votes);
        for i in 0..2 * k {
            a.sw(ZERO, A5, (i * 4) as i32);
        }

        for (mi, machine) in model.machines().iter().enumerate() {
            let sv_loop = format!("svm_m{mi}_loop");
            let no_clamp = format!("svm_m{mi}_noclamp");
            let neg = format!("svm_m{mi}_neg");
            let done = format!("svm_m{mi}_done");
            a.comment("one-vs-one machine: Σ (coeff·k(d²)) >> 15 + bias");
            a.li(A0, addr_svs);
            a.li(A1, addr_coeffs[mi]);
            a.li(T2, machine.bias_q as u32); // accumulator
            a.li(T3, n_sv as u32);
            a.beqz(T3, &done);
            a.label(&sv_loop);
            a.li(T4, 0); // d²
            for (ci, reg) in feat_regs.iter().take(c).enumerate() {
                a.lhu(T5, A0, (ci * 2) as i32);
                a.srli(T5, T5, 4);
                a.sub(T5, *reg, T5);
                a.mul(T5, T5, T5);
                a.add(T4, T4, T5);
            }
            a.addi(A0, A0, (c * 2) as i32);
            a.comment("bucketed exp lookup");
            a.srli(T5, T4, model.lut_shift() as u8);
            a.sltiu(T6, T5, LUT_SIZE as i32);
            a.bnez(T6, &no_clamp);
            a.li(T5, (LUT_SIZE - 1) as u32);
            a.label(&no_clamp);
            a.slli(T5, T5, 1);
            a.li(T6, addr_lut);
            a.add(T5, T5, T6);
            a.lhu(T5, T5, 0);
            a.lw(T6, A1, 0);
            a.addi(A1, A1, 4);
            a.mul(T6, T6, T5);
            a.srai(T6, T6, 15);
            a.add(T2, T2, T6);
            a.addi(T3, T3, -1);
            a.bnez(T3, &sv_loop);
            a.label(&done);
            a.comment("record decision, vote with |decision| magnitude");
            a.li(A2, addr_result);
            a.sw(T2, A2, (4 + mi * 4) as i32);
            a.srai(T5, T2, 31);
            a.xor(T6, T2, T5);
            a.sub(T6, T6, T5); // |acc|
            let vote = |a: &mut Assembler, class: usize| {
                a.li(A3, addr_votes + class as u32 * 4);
                a.lw(T4, A3, 0);
                a.addi(T4, T4, 1);
                a.sw(T4, A3, 0);
                a.li(A3, addr_mags + class as u32 * 4);
                a.lw(T4, A3, 0);
                a.add(T4, T4, T6);
                a.sw(T4, A3, 0);
            };
            let after = format!("svm_m{mi}_voted");
            a.blt(T2, ZERO, &neg);
            vote(&mut a, machine.class_pos);
            a.j(&after);
            a.label(&neg);
            vote(&mut a, machine.class_neg);
            a.label(&after);
        }

        a.comment("arg-max votes, magnitude tie-break, lowest index wins");
        a.li(A0, addr_votes);
        a.li(A1, addr_mags);
        a.lw(T0, A0, 0); // best votes
        a.lw(T1, A1, 0); // best magnitude
        a.li(T2, 0); // best class
        for class in 1..k {
            let take = format!("svm_take_{class}");
            let skip = format!("svm_skip_{class}");
            a.lw(T3, A0, (class * 4) as i32);
            a.lw(T4, A1, (class * 4) as i32);
            a.bltu(T0, T3, &take); // strictly more votes
            a.bne(T0, T3, &skip);
            a.bgeu(T1, T4, &skip); // equal votes: strictly larger magnitude
            a.label(&take);
            a.mv(T0, T3);
            a.mv(T1, T4);
            a.li(T2, class as u32);
            a.label(&skip);
        }
        a.li(A2, addr_result);
        a.sw(T2, A2, 0);
        a.marker(1);
        a.halt();

        let program = a.finish().map_err(crate::kernels::BuildError::from)?;
        let platform = Platform::cortex_m4();
        let mut cluster = Cluster::new(platform.cluster, program);

        // --- load tables ----------------------------------------------
        let mem = cluster.mem_mut();
        let lut: Vec<u16> = model.lut().to_vec();
        mem.write_halves(addr_lut, &lut)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        let flat_svs: Vec<u16> = model.support_vectors().iter().flatten().copied().collect();
        mem.write_halves(addr_svs, &flat_svs)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        for (mi, machine) in model.machines().iter().enumerate() {
            let coeffs: Vec<u32> = machine.coeff_q.iter().map(|&x| x as u32).collect();
            mem.write_words(addr_coeffs[mi], &coeffs)
                .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        }

        Ok(Self {
            cluster,
            n_features: c,
            n_machines: m_count,
            addr_features,
            addr_result,
        })
    }

    /// Classifies one feature vector (raw ADC codes) on the simulated
    /// M4.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] on shape mismatch or simulator fault.
    pub fn classify(&mut self, codes: &[u16]) -> Result<SvmRun, ChainError> {
        if codes.len() != self.n_features {
            return Err(ChainError::InputMismatch(format!(
                "{} features, model expects {}",
                codes.len(),
                self.n_features
            )));
        }
        self.cluster
            .mem_mut()
            .write_halves(self.addr_features, codes)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        let summary = self.cluster.run(50_000_000)?;
        let words = self
            .cluster
            .mem()
            .read_words(self.addr_result, 1 + self.n_machines)
            .map_err(|f| ChainError::Sim(SimError::MemAccess { core: 0, fault: f }))?;
        Ok(SvmRun {
            class: words[0] as usize,
            decisions: words[1..].iter().map(|&w| w as i32).collect(),
            cycles: summary.region(0, 1).unwrap_or(summary.cycles),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::{Kernel, SmoParams, SvmClassifier};

    fn trained_model() -> FixedSvm {
        // Four blobs in the unit square, 4 features (pad 2-D to 4-D).
        let centers = [
            [0.2, 0.2, 0.7, 0.3],
            [0.8, 0.2, 0.2, 0.6],
            [0.2, 0.8, 0.5, 0.9],
            [0.8, 0.8, 0.9, 0.1],
        ];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (label, cc) in centers.iter().enumerate() {
            for i in 0..12 {
                let j1 = ((i * 7 + label * 13) % 11) as f64 / 11.0 - 0.5;
                let j2 = ((i * 5 + label * 3) % 13) as f64 / 13.0 - 0.5;
                x.push(vec![
                    cc[0] + 0.15 * j1,
                    cc[1] + 0.15 * j2,
                    cc[2] + 0.1 * j1,
                    cc[3] + 0.1 * j2,
                ]);
                y.push(label);
            }
        }
        let clf =
            SvmClassifier::train(&x, &y, 4, Kernel::Rbf { gamma: 10.0 }, SmoParams::default());
        FixedSvm::quantize(&clf, 4)
    }

    #[test]
    fn simulated_svm_matches_host_reference_bit_exactly() {
        let model = trained_model();
        let mut chain = SvmChain::new(&model).unwrap();
        for probe in [
            [10_000u16, 12_000, 45_000, 20_000],
            [52_000, 14_000, 15_000, 40_000],
            [13_000, 50_000, 33_000, 60_000],
            [51_000, 55_000, 60_000, 8_000],
            [32_768, 32_768, 32_768, 32_768],
        ] {
            let run = chain.classify(&probe).unwrap();
            let expect_class = model.predict_codes(&probe);
            for (m, &d) in run.decisions.iter().enumerate() {
                assert_eq!(
                    i64::from(d),
                    model.decision_q(m, &probe),
                    "machine {m} decision diverged on {probe:?}"
                );
            }
            assert_eq!(run.class, expect_class, "decision diverged on {probe:?}");
        }
    }

    #[test]
    fn cycles_scale_with_kernel_evaluations() {
        let model = trained_model();
        let mut chain = SvmChain::new(&model).unwrap();
        let run = chain.classify(&[30_000, 30_000, 30_000, 30_000]).unwrap();
        let evals = model.total_kernel_evaluations() as u64;
        let per_eval = run.cycles as f64 / evals as f64;
        // Inner loop ≈ 4 features × ~9 cycles + lookup/MAC tail on the M4.
        assert!(
            (30.0..90.0).contains(&per_eval),
            "{} cycles / {evals} evals = {per_eval}",
            run.cycles
        );
    }

    #[test]
    fn rejects_wrong_feature_count() {
        let model = trained_model();
        let mut chain = SvmChain::new(&model).unwrap();
        assert!(matches!(
            chain.classify(&[1, 2, 3]),
            Err(ChainError::InputMismatch(_))
        ));
    }
}
