//! Memory-layout planning for the accelerated processing chain.
//!
//! The paper's layout: the CIM (22×313 words, ≈27 kB), IM (channels×313)
//! and AM (classes×313) matrices live in L2 and are streamed into
//! double-buffered L1 tiles by the DMA; the spatial/N-gram hypervectors,
//! quantized levels, and per-core partial distances live permanently in
//! the 48 kB L1 TCDM. [`Layout::plan`] places every buffer, picks the
//! tile width that fits the L1 budget, and reports the memory-footprint
//! numbers that Fig. 5 plots.

use core::fmt;

use pulp_sim::{L1_BASE, L2_BASE};

/// Hyper-parameters of one accelerated classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelParams {
    /// Hypervector width in 32-bit words (313 ≙ "10,000-D").
    pub n_words: usize,
    /// Input channels.
    pub channels: usize,
    /// CIM quantization levels.
    pub levels: usize,
    /// N-gram size; one classification consumes `ngram` consecutive
    /// samples and produces one query hypervector (N = 1 ⇒ purely
    /// spatial).
    pub ngram: usize,
    /// Number of classes in the associative memory.
    pub classes: usize,
}

impl AccelParams {
    /// The paper's EMG task: 10,016-bit hypervectors, 4 channels,
    /// 22 levels, N = 1, 5 classes.
    #[must_use]
    pub fn emg_default() -> Self {
        Self {
            n_words: 313,
            channels: 4,
            levels: 22,
            ngram: 1,
            classes: 5,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), LayoutError> {
        if self.n_words == 0 {
            return Err(LayoutError::BadParams("n_words must be positive"));
        }
        if self.channels == 0 {
            return Err(LayoutError::BadParams("channels must be positive"));
        }
        if self.levels < 2 {
            return Err(LayoutError::BadParams("need at least 2 levels"));
        }
        if self.ngram == 0 || self.ngram > 32 {
            return Err(LayoutError::BadParams("ngram must be in 1..=32"));
        }
        if self.classes == 0 {
            return Err(LayoutError::BadParams("classes must be positive"));
        }
        Ok(())
    }
}

/// Where the seed matrices live and how the kernels reach them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemPolicy {
    /// Matrices in L2, streamed to double-buffered L1 tiles by DMA while
    /// cores compute — the paper's scheme.
    DmaDoubleBuffer,
    /// Matrices in L2, accessed directly by the cores (no DMA) — the
    /// ablation showing why double buffering matters.
    L2Direct,
    /// Matrices resident in L1 (only valid when they fit) — the M4 path,
    /// and an upper-bound ablation for the cluster.
    AllL1,
}

/// Why a layout could not be planned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// Parameter validation failed.
    BadParams(&'static str),
    /// The fixed L1 residents (hypervectors, levels, partials, scratch)
    /// exceed L1 even before tiles.
    L1Overflow {
        /// Bytes needed.
        needed: u32,
        /// Bytes available.
        available: u32,
    },
    /// The matrices exceed L2.
    L2Overflow {
        /// Bytes needed.
        needed: u32,
        /// Bytes available.
        available: u32,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadParams(what) => write!(f, "bad parameters: {what}"),
            Self::L1Overflow { needed, available } => {
                write!(f, "L1 overflow: need {needed} B, have {available} B")
            }
            Self::L2Overflow { needed, available } => {
                write!(f, "L2 overflow: need {needed} B, have {available} B")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A fully planned memory layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// The parameters this layout was planned for.
    pub params: AccelParams,
    /// Memory policy.
    pub policy: MemPolicy,
    /// Number of cores the per-core regions were sized for.
    pub n_cores: usize,

    // --- L2 residents (matrix storage when not AllL1) ---
    /// CIM matrix base (levels × n_words), row-major by level.
    pub cim: u32,
    /// IM matrix base (channels × n_words), row-major by channel.
    pub im: u32,
    /// AM matrix base (classes × n_words), row-major by class.
    pub am: u32,

    // --- L1 residents ---
    /// Input samples (`ngram × channels` u16 ADC codes).
    pub samples: u32,
    /// Quantized level indices (`ngram × channels` u32).
    pub levels: u32,
    /// Spatial hypervectors (`ngram × n_words` u32).
    pub spatials: u32,
    /// Query hypervector (`n_words` u32). Aliases `spatials` when N = 1.
    pub query: u32,
    /// Per-core partial distances (`n_cores × classes` u32).
    pub partials: u32,
    /// Result block: `[best_class, dist_0, …, dist_{K-1}]` u32.
    pub result: u32,
    /// DMA descriptor scratch (6 words).
    pub desc: u32,
    /// Per-core bound-word scratch (`n_cores × channels` u32), used by
    /// the large-channel-count majority path.
    pub scratch: u32,
    /// Double-buffered tile bases: `[CIM_a, CIM_b]`, `[IM_a, IM_b]`,
    /// `[AM_a, AM_b]`. Unused (pointing at the matrices) for `AllL1`.
    pub buf_cim: [u32; 2],
    /// IM tile buffers.
    pub buf_im: [u32; 2],
    /// AM tile buffers.
    pub buf_am: [u32; 2],

    /// Tile width in words (equals `n_words` for non-DMA policies).
    pub tile_words: usize,
    /// Number of tiles covering `n_words`.
    pub n_tiles: usize,

    /// Total L1 bytes used.
    pub l1_bytes: u32,
    /// Total L2 bytes used.
    pub l2_bytes: u32,
}

const fn round_up(x: u32, align: u32) -> u32 {
    x.div_ceil(align) * align
}

impl Layout {
    /// Plans the layout for the given cluster dimensions.
    ///
    /// For [`MemPolicy::DmaDoubleBuffer`] the tile width is chosen as the
    /// largest of {64, 32, 16, 8, 4, 2, 1} words whose double-buffered
    /// tiles fit the remaining L1; for the other policies a single
    /// "tile" spans the whole hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if parameters are invalid or the buffers
    /// cannot fit the given memories.
    pub fn plan(
        params: AccelParams,
        policy: MemPolicy,
        n_cores: usize,
        l1_size: u32,
        l2_size: u32,
    ) -> Result<Self, LayoutError> {
        params.validate()?;
        let w = params.n_words as u32;
        let c = params.channels as u32;
        let l = params.levels as u32;
        let k = params.classes as u32;
        let n = params.ngram as u32;
        let cores = n_cores as u32;

        let cim_bytes = l * w * 4;
        let im_bytes = c * w * 4;
        let am_bytes = k * w * 4;

        // --- L1 residents (always present) ---
        fn alloc(cursor: &mut u32, bytes: u32) -> u32 {
            let at = *cursor;
            *cursor = round_up(*cursor + bytes, 8);
            at
        }
        let mut l1 = L1_BASE;
        let samples = alloc(&mut l1, n * c * 2);
        let levels = alloc(&mut l1, n * c * 4);
        let spatials = alloc(&mut l1, n * w * 4);
        let query = if params.ngram == 1 {
            spatials // N = 1: the single spatial hypervector is the query.
        } else {
            alloc(&mut l1, w * 4)
        };
        let partials = alloc(&mut l1, cores * k * 4);
        let result = alloc(&mut l1, (1 + k) * 4);
        let desc = alloc(&mut l1, 6 * 4);
        // One extra slot per core holds the tie-break vector word when the
        // channel count is even (scratch majority path).
        let scratch = alloc(&mut l1, cores * (c + 1) * 4);

        // --- matrices ---
        let (cim, im, am, buf_cim, buf_im, buf_am, tile_words, l2_used) = match policy {
            MemPolicy::AllL1 => {
                let cim = alloc(&mut l1, cim_bytes);
                let im = alloc(&mut l1, im_bytes);
                let am = alloc(&mut l1, am_bytes);
                (
                    cim,
                    im,
                    am,
                    [cim, cim],
                    [im, im],
                    [am, am],
                    params.n_words,
                    0u32,
                )
            }
            MemPolicy::L2Direct => {
                let cim = L2_BASE;
                let im = round_up(cim + cim_bytes, 8);
                let am = round_up(im + im_bytes, 8);
                let l2_used = am + am_bytes - L2_BASE;
                (
                    cim,
                    im,
                    am,
                    [cim, cim],
                    [im, im],
                    [am, am],
                    params.n_words,
                    l2_used,
                )
            }
            MemPolicy::DmaDoubleBuffer => {
                let cim = L2_BASE;
                let im = round_up(cim + cim_bytes, 8);
                let am = round_up(im + im_bytes, 8);
                let l2_used = am + am_bytes - L2_BASE;

                // Pick the widest tile whose double buffers fit.
                let fixed_used = l1 - L1_BASE;
                let budget = l1_size.saturating_sub(fixed_used);
                let mut tile_words = 0usize;
                for cand in [64usize, 32, 16, 8, 4, 2, 1] {
                    let cand = cand.min(params.n_words);
                    let rows = l + c + k; // worst case: all three matrices buffered
                    let need = 2 * rows * cand as u32 * 4;
                    if need <= budget {
                        tile_words = cand;
                        break;
                    }
                }
                if tile_words == 0 {
                    return Err(LayoutError::L1Overflow {
                        needed: fixed_used + 2 * (l + c + k) * 4,
                        available: l1_size,
                    });
                }
                let tb = tile_words as u32 * 4;
                let buf_cim = [alloc(&mut l1, l * tb), alloc(&mut l1, l * tb)];
                let buf_im = [alloc(&mut l1, c * tb), alloc(&mut l1, c * tb)];
                let buf_am = [alloc(&mut l1, k * tb), alloc(&mut l1, k * tb)];
                (cim, im, am, buf_cim, buf_im, buf_am, tile_words, l2_used)
            }
        };

        let l1_bytes = l1 - L1_BASE;
        if l1_bytes > l1_size {
            return Err(LayoutError::L1Overflow {
                needed: l1_bytes,
                available: l1_size,
            });
        }
        if l2_used > l2_size {
            return Err(LayoutError::L2Overflow {
                needed: l2_used,
                available: l2_size,
            });
        }

        Ok(Self {
            params,
            policy,
            n_cores,
            cim,
            im,
            am,
            samples,
            levels,
            spatials,
            query,
            partials,
            result,
            desc,
            scratch,
            buf_cim,
            buf_im,
            buf_am,
            tile_words,
            n_tiles: params.n_words.div_ceil(tile_words),
            l1_bytes,
            l2_bytes: l2_used,
        })
    }

    /// Total model memory footprint in bytes (matrices + working
    /// buffers) — the red line of Fig. 5.
    #[must_use]
    pub fn total_footprint_bytes(&self) -> u32 {
        self.l1_bytes + self.l2_bytes
    }

    /// Width of the last (possibly partial) tile in words.
    #[must_use]
    pub fn last_tile_words(&self) -> usize {
        let rem = self.params.n_words % self.tile_words;
        if rem == 0 {
            self.tile_words
        } else {
            rem
        }
    }

    /// Words covered by tile `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.n_tiles`.
    #[must_use]
    pub fn tile_extent(&self, k: usize) -> (usize, usize) {
        assert!(k < self.n_tiles, "tile {k} out of range");
        let start = k * self.tile_words;
        let width = if k == self.n_tiles - 1 {
            self.last_tile_words()
        } else {
            self.tile_words
        };
        (start, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emg() -> AccelParams {
        AccelParams::emg_default()
    }

    #[test]
    fn paper_footprint_is_about_50_kb() {
        // "The total memory requirements for the EMG application,
        // considering 10,000-D hypervectors is around 50 kB."
        let layout =
            Layout::plan(emg(), MemPolicy::DmaDoubleBuffer, 4, 48 * 1024, 64 * 1024).unwrap();
        let total = layout.total_footprint_bytes();
        assert!(
            (40_000..60_000).contains(&total),
            "footprint {total} B should be ≈50 kB"
        );
        // CIM 27 kB, IM 5 kB, AM 7 kB as in the paper.
        assert_eq!(layout.im - layout.cim, 22 * 313 * 4); // ≈27.5 kB
        assert!(layout.l2_bytes > 30_000);
    }

    #[test]
    fn buffers_do_not_overlap() {
        let layout =
            Layout::plan(emg(), MemPolicy::DmaDoubleBuffer, 8, 64 * 1024, 512 * 1024).unwrap();
        // Collect (base, bytes) of every distinct L1 region and check
        // pairwise disjointness.
        let p = layout.params;
        let mut regions = vec![
            (layout.samples, (p.ngram * p.channels * 2) as u32),
            (layout.levels, (p.ngram * p.channels * 4) as u32),
            (layout.spatials, (p.ngram * p.n_words * 4) as u32),
            (layout.partials, (layout.n_cores * p.classes * 4) as u32),
            (layout.result, ((1 + p.classes) * 4) as u32),
            (layout.desc, 24),
            (
                layout.scratch,
                (layout.n_cores * (p.channels + 1) * 4) as u32,
            ),
        ];
        let tb = (layout.tile_words * 4) as u32;
        for b in layout.buf_cim {
            regions.push((b, p.levels as u32 * tb));
        }
        for b in layout.buf_im {
            regions.push((b, p.channels as u32 * tb));
        }
        for b in layout.buf_am {
            regions.push((b, p.classes as u32 * tb));
        }
        for (i, &(a, al)) in regions.iter().enumerate() {
            for &(b, bl) in regions.iter().skip(i + 1) {
                assert!(
                    a + al <= b || b + bl <= a,
                    "regions {a:#x}+{al} and {b:#x}+{bl} overlap"
                );
            }
        }
    }

    #[test]
    fn query_aliases_spatial_for_unigram() {
        let layout =
            Layout::plan(emg(), MemPolicy::DmaDoubleBuffer, 4, 48 * 1024, 64 * 1024).unwrap();
        assert_eq!(layout.query, layout.spatials);
        let p = AccelParams { ngram: 5, ..emg() };
        let layout = Layout::plan(p, MemPolicy::DmaDoubleBuffer, 4, 48 * 1024, 64 * 1024).unwrap();
        assert_ne!(layout.query, layout.spatials);
    }

    #[test]
    fn tile_width_shrinks_with_many_channels() {
        let small =
            Layout::plan(emg(), MemPolicy::DmaDoubleBuffer, 8, 64 * 1024, 512 * 1024).unwrap();
        let big = Layout::plan(
            AccelParams {
                channels: 256,
                ..emg()
            },
            MemPolicy::DmaDoubleBuffer,
            8,
            64 * 1024,
            512 * 1024,
        )
        .unwrap();
        assert!(big.tile_words < small.tile_words);
        assert!(big.tile_words >= 1);
        assert_eq!(big.n_tiles, 313usize.div_ceil(big.tile_words));
    }

    #[test]
    fn tile_extents_cover_exactly_n_words() {
        for channels in [4usize, 64, 256] {
            let layout = Layout::plan(
                AccelParams { channels, ..emg() },
                MemPolicy::DmaDoubleBuffer,
                8,
                64 * 1024,
                512 * 1024,
            )
            .unwrap();
            let mut covered = 0;
            for k in 0..layout.n_tiles {
                let (start, width) = layout.tile_extent(k);
                assert_eq!(start, covered);
                covered += width;
            }
            assert_eq!(covered, 313);
        }
    }

    #[test]
    fn all_l1_places_matrices_in_l1() {
        let layout = Layout::plan(emg(), MemPolicy::AllL1, 1, 192 * 1024, 512 * 1024).unwrap();
        assert!(layout.cim >= L1_BASE && layout.cim < L1_BASE + 192 * 1024);
        assert_eq!(layout.l2_bytes, 0);
        assert_eq!(layout.n_tiles, 1);
        assert_eq!(layout.tile_words, 313);
    }

    #[test]
    fn all_l1_rejects_what_does_not_fit() {
        // The 4-channel EMG matrices squeeze into 48 kB (40.3 kB — the
        // paper still streams from L2 because the real L1 also holds
        // code, stacks and the runtime)…
        assert!(Layout::plan(emg(), MemPolicy::AllL1, 4, 48 * 1024, 64 * 1024).is_ok());
        // …but a 64-channel IM (80 kB) cannot.
        let p = AccelParams {
            channels: 64,
            ..emg()
        };
        let err = Layout::plan(p, MemPolicy::AllL1, 4, 48 * 1024, 64 * 1024).unwrap_err();
        assert!(matches!(err, LayoutError::L1Overflow { .. }));
    }

    #[test]
    fn l2_overflow_detected() {
        let p = AccelParams {
            channels: 256,
            ..emg()
        };
        let err = Layout::plan(p, MemPolicy::DmaDoubleBuffer, 8, 64 * 1024, 64 * 1024).unwrap_err();
        assert!(matches!(err, LayoutError::L2Overflow { .. }));
    }

    #[test]
    fn footprint_grows_linearly_with_channels() {
        let plan = |channels: usize| {
            Layout::plan(
                AccelParams { channels, ..emg() },
                MemPolicy::DmaDoubleBuffer,
                8,
                64 * 1024,
                4 * 1024 * 1024,
            )
            .unwrap()
        };
        // The matrix (L2) footprint is exactly linear: one IM row per
        // channel.
        let f4 = plan(4);
        let f64c = plan(64);
        let f256 = plan(256);
        let row = 313 * 4;
        assert_eq!(f64c.l2_bytes - f4.l2_bytes, 60 * row);
        assert_eq!(f256.l2_bytes - f64c.l2_bytes, 192 * row);
        // Total footprint is monotone (tile buffers shrink but scratch
        // and levels grow with channels).
        assert!(f4.total_footprint_bytes() < f64c.total_footprint_bytes());
        assert!(f64c.total_footprint_bytes() < f256.total_footprint_bytes());
    }

    #[test]
    fn bad_params_rejected() {
        let p = AccelParams { ngram: 0, ..emg() };
        assert!(matches!(
            Layout::plan(p, MemPolicy::AllL1, 1, 1 << 20, 1 << 20),
            Err(LayoutError::BadParams(_))
        ));
    }
}
