//! Dimension auto-tuning: find the smallest hypervector width that
//! still meets an accuracy floor.
//!
//! "A Theoretical Perspective on Hyperdimensional Computing" (Thomas et
//! al.) bounds HD accuracy as a function of the dimension D, and every
//! distance kernel in this workspace is word-count-linear — so halving
//! D roughly doubles scan throughput. [`tune_dimension`] exploits that
//! trade empirically: it walks a halving ladder downward from the
//! caller's width, retrains a model per rung through the
//! [`TrainableBackend`] seam, scores each candidate on a held-out
//! split, and returns the smallest width whose holdout accuracy stays
//! at or above the floor — together with the retrained [`HdModel`]
//! ready for [`ExecutionBackend::prepare`].
//!
//! The sweep is greedy: it stops at the first rung that misses the
//! floor (accuracy degrades monotonically with D up to noise, so the
//! ladder rarely gives back more than one refinement step), and it
//! never returns a model it did not measure.
//!
//! [`ExecutionBackend::prepare`]: crate::backend::ExecutionBackend::prepare

use crate::backend::{BackendError, HdModel, TrainSpec, TrainableBackend};
use crate::layout::AccelParams;

/// Labelled windows: one window (`samples × channels` ADC codes) per
/// label, index-aligned.
pub type LabelledSplit<'a> = (&'a [Vec<Vec<u16>>], &'a [usize]);

/// The result of a [`tune_dimension`] sweep.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The selected width in canonical `u32` words — the smallest rung
    /// of the halving ladder that met the accuracy floor.
    pub n_words: usize,
    /// Holdout accuracy of the selected model, in `[0, 1]`.
    pub accuracy: f64,
    /// The retrained model at the selected width.
    pub model: HdModel,
    /// Every `(n_words, accuracy)` pair the sweep measured, in
    /// descending width order — the full trade curve, for reporting.
    pub evaluated: Vec<(usize, f64)>,
}

/// Sweeps `n_words` down a halving ladder from `params.n_words`,
/// retraining on `train` and scoring on `holdout` at each rung, and
/// returns the smallest width whose holdout accuracy is at least
/// `floor`.
///
/// The first rung is `params.n_words` itself — if even the full width
/// misses the floor there is nothing to tune and the sweep fails
/// honestly rather than returning a model below spec. Each rung's model
/// is trained from scratch via [`TrainSpec::random`] (seeded by `seed`,
/// so the sweep is deterministic) and scored with the backend's own
/// batched classification.
///
/// # Errors
///
/// * [`BackendError::Config`] if `floor` is not within `[0, 1]`, a
///   split is empty or misaligned with its labels, or the base width
///   already misses the floor.
/// * Any training or classification error from the backend.
///
/// # Examples
///
/// ```
/// use pulp_hd_core::backend::FastBackend;
/// use pulp_hd_core::layout::AccelParams;
/// use pulp_hd_core::tune::tune_dimension;
///
/// // A tiny synthetic task: per-class constant windows, trivially
/// // separable even at small D.
/// let params = AccelParams { n_words: 32, ..AccelParams::emg_default() };
/// let windows: Vec<Vec<Vec<u16>>> = (0..10)
///     .map(|i| vec![vec![(i % 5 * 13000) as u16; params.channels]; 3])
///     .collect();
/// let labels: Vec<usize> = (0..10).map(|i| i % 5).collect();
/// let outcome = tune_dimension(
///     &FastBackend::with_threads(1),
///     &params,
///     7,
///     (&windows, &labels),
///     (&windows, &labels),
///     0.9,
/// )?;
/// assert!(outcome.n_words <= params.n_words);
/// assert!(outcome.accuracy >= 0.9);
/// # Ok::<(), pulp_hd_core::backend::BackendError>(())
/// ```
pub fn tune_dimension<B: TrainableBackend>(
    backend: &B,
    params: &AccelParams,
    seed: u64,
    train: LabelledSplit<'_>,
    holdout: LabelledSplit<'_>,
    floor: f64,
) -> Result<TuneOutcome, BackendError> {
    if !(0.0..=1.0).contains(&floor) {
        return Err(BackendError::Config(format!(
            "accuracy floor must be within [0, 1], got {floor}"
        )));
    }
    for (name, (windows, labels)) in [("train", train), ("holdout", holdout)] {
        if windows.is_empty() {
            return Err(BackendError::Config(format!(
                "dimension tuning needs a non-empty {name} split"
            )));
        }
        if windows.len() != labels.len() {
            return Err(BackendError::Config(format!(
                "{name} split carries {} windows but {} labels",
                windows.len(),
                labels.len()
            )));
        }
    }
    if params.n_words == 0 {
        return Err(BackendError::Config(
            "dimension tuning needs a nonzero base width".into(),
        ));
    }

    let mut evaluated = Vec::new();
    let mut selected: Option<(usize, f64, HdModel)> = None;
    let mut width = params.n_words;
    loop {
        let (accuracy, model) = evaluate_width(backend, params, width, seed, train, holdout)?;
        evaluated.push((width, accuracy));
        if accuracy < floor {
            break;
        }
        selected = Some((width, accuracy, model));
        if width == 1 {
            break;
        }
        width = width.div_ceil(2);
    }

    match selected {
        Some((n_words, accuracy, model)) => Ok(TuneOutcome {
            n_words,
            accuracy,
            model,
            evaluated,
        }),
        None => Err(BackendError::Config(format!(
            "holdout accuracy {:.3} at the base width of {} words is already below the floor {floor}",
            evaluated[0].1, params.n_words,
        ))),
    }
}

/// Trains and scores one candidate width: fresh seeded spec, batch
/// training, holdout accuracy through the serving path.
fn evaluate_width<B: TrainableBackend>(
    backend: &B,
    params: &AccelParams,
    n_words: usize,
    seed: u64,
    train: LabelledSplit<'_>,
    holdout: LabelledSplit<'_>,
) -> Result<(f64, HdModel), BackendError> {
    let rung = AccelParams { n_words, ..*params };
    let spec = TrainSpec::random(&rung, seed);
    let mut training = backend.begin_training(&spec)?;
    training.train_batch(train.0, train.1)?;
    let model = training.finalize()?;
    let mut session = backend.prepare(&model)?;
    let verdicts = session.classify_batch(holdout.0)?;
    let correct = verdicts
        .iter()
        .zip(holdout.1)
        .filter(|(v, &label)| v.class == label)
        .count();
    #[allow(clippy::cast_precision_loss)]
    let accuracy = correct as f64 / holdout.0.len() as f64;
    Ok((accuracy, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FastBackend;
    use hdc::rng::Xoshiro256PlusPlus;

    /// Clustered windows: each class has a base pattern (from
    /// `base_seed`, shared across splits), examples jitter around it
    /// (from `jitter_seed`) — separable at full width, still separable
    /// a few halvings down.
    fn clustered(
        params: &AccelParams,
        per_class: usize,
        base_seed: u64,
        jitter_seed: u64,
    ) -> (Vec<Vec<Vec<u16>>>, Vec<usize>) {
        let mut base_rng = Xoshiro256PlusPlus::seed_from_u64(base_seed);
        let mut jitter_rng = Xoshiro256PlusPlus::seed_from_u64(jitter_seed);
        let samples = params.ngram + 2;
        let mut windows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..params.classes {
            let base: Vec<Vec<u16>> = (0..samples)
                .map(|_| {
                    (0..params.channels)
                        .map(|_| (base_rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect();
            for _ in 0..per_class {
                let window: Vec<Vec<u16>> = base
                    .iter()
                    .map(|s| {
                        s.iter()
                            .map(|&v| {
                                v.wrapping_add(
                                    (jitter_rng.next_below(800) as u16).wrapping_sub(400),
                                )
                            })
                            .collect()
                    })
                    .collect();
                windows.push(window);
                labels.push(class);
            }
        }
        (windows, labels)
    }

    #[test]
    fn tuner_shrinks_the_model_on_an_easy_task() {
        let params = AccelParams {
            n_words: 64,
            ..AccelParams::emg_default()
        };
        let (train_w, train_l) = clustered(&params, 6, 0xA11CE, 0x01);
        let (hold_w, hold_l) = clustered(&params, 3, 0xA11CE, 0x02);
        let outcome = tune_dimension(
            &FastBackend::with_threads(1),
            &params,
            5,
            (&train_w, &train_l),
            (&hold_w, &hold_l),
            0.8,
        )
        .unwrap();
        assert!(outcome.n_words < params.n_words, "{:?}", outcome.evaluated);
        assert!(outcome.accuracy >= 0.8);
        assert_eq!(outcome.model.params().n_words, outcome.n_words);
        // The trade curve starts at the base width and descends.
        assert_eq!(outcome.evaluated[0].0, params.n_words);
        for pair in outcome.evaluated.windows(2) {
            assert!(pair[1].0 < pair[0].0);
        }
    }

    #[test]
    fn tuner_fails_honestly_when_the_base_width_misses_the_floor() {
        let params = AccelParams {
            n_words: 2,
            ..AccelParams::emg_default()
        };
        // Random labels: no width can hit 99%.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let samples = params.ngram + 1;
        let windows: Vec<Vec<Vec<u16>>> = (0..24)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..24)
            .map(|_| rng.next_below(params.classes as u32) as usize)
            .collect();
        let err = tune_dimension(
            &FastBackend::with_threads(1),
            &params,
            9,
            (&windows, &labels),
            (&windows, &labels),
            0.99,
        )
        .unwrap_err();
        assert!(matches!(err, BackendError::Config(_)), "{err}");
    }

    #[test]
    fn tuner_validates_inputs() {
        let params = AccelParams {
            n_words: 4,
            ..AccelParams::emg_default()
        };
        let (w, l) = clustered(&params, 2, 1, 2);
        let backend = FastBackend::with_threads(1);
        assert!(matches!(
            tune_dimension(&backend, &params, 1, (&w, &l), (&w, &l), 1.5),
            Err(BackendError::Config(_))
        ));
        assert!(matches!(
            tune_dimension(&backend, &params, 1, (&[], &[]), (&w, &l), 0.5),
            Err(BackendError::Config(_))
        ));
        assert!(matches!(
            tune_dimension(&backend, &params, 1, (&w, &l[1..]), (&w, &l), 0.5),
            Err(BackendError::Config(_))
        ));
    }
}
