//! Property-based equivalence: for *randomly drawn* chain configurations
//! (dimension, channels, N-gram size, class count, platform, seeds), the
//! simulated kernels must agree with the golden model bit for bit.
//!
//! This is the strongest correctness statement in the repository: the
//! cycle counts reported by the experiments are attached to computations
//! proven equal to the reference implementation across the configuration
//! space, not just at hand-picked points.

use proptest::prelude::*;

use hdc::rng::derive_seed;
use hdc::{BinaryHv, ContinuousItemMemory, ItemMemory};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::pipeline::{native_reference, AccelChain};
use pulp_hd_core::platform::Platform;

fn platform_for(selector: u8) -> Platform {
    match selector % 6 {
        0 => Platform::pulpv3(1),
        1 => Platform::pulpv3(4),
        2 => Platform::wolf_plain(2),
        3 => Platform::wolf_builtin(1),
        4 => Platform::wolf_builtin(8),
        _ => Platform::cortex_m4(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_chain_equals_golden_model(
        n_words in 1usize..20,
        channels in 1usize..9,
        ngram in 1usize..6,
        classes in 2usize..6,
        levels in 2usize..30,
        plat_sel in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let params = AccelParams { n_words, channels, levels, ngram, classes };
        let platform = platform_for(plat_sel);

        let cim = ContinuousItemMemory::new(levels, n_words, derive_seed(seed, 1));
        let im = ItemMemory::new(channels, n_words, derive_seed(seed, 2));
        let protos: Vec<BinaryHv> = (0..classes)
            .map(|k| BinaryHv::random(n_words, derive_seed(seed, 100 + k as u64)))
            .collect();

        let mut chain = AccelChain::new(&platform, params).unwrap();
        chain.load_model(&cim, &im, &protos).unwrap();

        let mut rng = hdc::rng::Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x57A7);
        let window: Vec<Vec<u16>> = (0..ngram)
            .map(|_| (0..channels).map(|_| (rng.next_u32() & 0xffff) as u16).collect())
            .collect();

        let run = chain.classify(&window).unwrap();
        let (query, distances, class) = native_reference(&cim, &im, &protos, &window);
        prop_assert_eq!(run.query, query, "query diverged on {}", platform.name);
        prop_assert_eq!(run.distances, distances);
        prop_assert_eq!(run.class, class);
        // Timing sanity: regions are recorded and cover the run.
        prop_assert!(run.cycles_map_encode > 0);
        prop_assert!(run.cycles_am > 0);
        prop_assert!(run.cycles_map_encode + run.cycles_am <= run.cycles_total);
    }
}
