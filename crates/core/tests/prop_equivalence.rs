//! Property-based equivalence: for *randomly drawn* chain configurations
//! (dimension, channels, N-gram size, class count, platform, seeds),
//! every execution backend must agree with every other bit for bit —
//! the simulated kernels, the scalar golden model, and the `u64`-packed
//! fast engine all produce identical query hypervectors, Hamming
//! distances, and decisions.
//!
//! This is the strongest correctness statement in the repository: the
//! cycle counts reported by the experiments are attached to computations
//! proven equal to the reference implementation across the configuration
//! space, not just at hand-picked points. Cases come from the crate's
//! own deterministic generator (no external property-testing framework
//! in the build environment); each failure is replayable from its case
//! index.

use hdc::rng::Xoshiro256PlusPlus;
use hdc::{BinaryHv, Simd};
use pulp_hd_core::backend::{
    AccelBackend, ApproxPolicy, ExecutionBackend, FastBackend, GoldenBackend, HdModel, ScanPolicy,
    ShardSpec, ShardedBackend, TrainSpec, TrainableBackend, VerdictSource,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::platform::Platform;

fn platform_for(selector: u8) -> Platform {
    match selector % 6 {
        0 => Platform::pulpv3(1),
        1 => Platform::pulpv3(4),
        2 => Platform::wolf_plain(2),
        3 => Platform::wolf_builtin(1),
        4 => Platform::wolf_builtin(8),
        _ => Platform::cortex_m4(),
    }
}

#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn all_backends_agree_across_random_configurations() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x0E01_11A1_E5CE_57A7);
    for case in 0..24 {
        let params = AccelParams {
            n_words: 1 + rng.next_below(19) as usize,
            channels: 1 + rng.next_below(8) as usize,
            ngram: 1 + rng.next_below(5) as usize,
            classes: 2 + rng.next_below(4) as usize,
            levels: 2 + rng.next_below(28) as usize,
        };
        let platform = platform_for(rng.next_below(251) as u8);
        let model = HdModel::random(&params, rng.next_u64());

        // The simulated chain consumes exactly one N-gram per run, so
        // the shared window is `ngram` samples.
        let window: Vec<Vec<u16>> = (0..params.ngram)
            .map(|_| {
                (0..params.channels)
                    .map(|_| (rng.next_u32() & 0xffff) as u16)
                    .collect()
            })
            .collect();

        let mut accel = AccelBackend::new(platform.clone()).prepare(&model).unwrap();
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut fast = FastBackend::with_threads(2).prepare(&model).unwrap();

        let a = accel.classify(&window).unwrap();
        let g = golden.classify(&window).unwrap();
        let f = fast.classify(&window).unwrap();

        let ctx = format!("case {case} on {} with {params:?}", platform.name);
        assert_eq!(a.query, g.query, "{ctx}: accel query diverged from golden");
        assert_eq!(f.query, g.query, "{ctx}: fast query diverged from golden");
        assert_eq!(a.distances, g.distances, "{ctx}: accel distances");
        assert_eq!(f.distances, g.distances, "{ctx}: fast distances");
        assert_eq!(a.class, g.class, "{ctx}: accel decision");
        assert_eq!(f.class, g.class, "{ctx}: fast decision");

        // Timing sanity: only the simulated backend measures cycles,
        // and its regions are recorded and cover the run.
        assert!(g.cycles.is_none() && f.cycles.is_none(), "{ctx}");
        let cycles = a.cycles.expect("accel reports cycles");
        assert!(cycles.map_encode > 0, "{ctx}");
        assert!(cycles.am > 0, "{ctx}");
        assert!(cycles.map_encode + cycles.am <= cycles.total, "{ctx}");
    }
}

/// Host backends also agree on multi-gram sliding windows (a regime the
/// simulated chain does not cover), including through the threaded
/// batch path.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn host_backends_agree_on_sliding_window_batches() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xBA7C_4E55);
    for case in 0..12 {
        let params = AccelParams {
            n_words: 1 + rng.next_below(24) as usize,
            channels: 1 + rng.next_below(8) as usize,
            ngram: 1 + rng.next_below(4) as usize,
            classes: 2 + rng.next_below(5) as usize,
            levels: 2 + rng.next_below(28) as usize,
        };
        let model = HdModel::random(&params, rng.next_u64());
        let samples = params.ngram + rng.next_below(5) as usize;
        let windows: Vec<Vec<Vec<u16>>> = (0..9)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut fast = FastBackend::with_threads(4).prepare(&model).unwrap();
        let expected = golden.classify_batch(&windows).unwrap();
        let got = fast.classify_batch(&windows).unwrap();
        assert_eq!(got, expected, "case {case} with {params:?}");
    }
}

/// Training equivalence across backends **and SIMD kernel levels**: for
/// random chain shapes and labelled window streams — including
/// adversarially tie-rigged streams of repeated windows, which force
/// exact counter ties through the seeded tie-break — the golden and
/// fast trainable sessions produce bit-identical prototypes, verdicts,
/// and online adaptations, whether the fast path runs its detected
/// SIMD level or the forced-portable fallback.
///
/// (`PULP_HD_FORCE_SCALAR=1` CI coverage comes on top of this: the
/// whole suite, this test included, re-runs with the portable level
/// pinned.)
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn training_agrees_across_backends_and_simd_levels() {
    let detected = Simd::detect();
    let mut levels = vec![Simd::Portable];
    if detected != Simd::Portable {
        levels.push(detected);
    }
    for level in levels {
        Simd::set_active(level);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x7A11_ED00);
        for case in 0..8 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(6) as usize,
                ngram: 1 + rng.next_below(3) as usize,
                classes: 2 + rng.next_below(5) as usize,
                levels: 2 + rng.next_below(20) as usize,
            };
            let spec = TrainSpec::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(3) as usize;
            // A small pool of distinct windows, repeated: repeats give
            // even per-component counts, i.e. exact majority ties.
            let pool: Vec<Vec<Vec<u16>>> = (0..4)
                .map(|_| {
                    (0..samples)
                        .map(|_| {
                            (0..params.channels)
                                .map(|_| (rng.next_u32() & 0xffff) as u16)
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let count = 24 + rng.next_below(17) as usize;
            let windows: Vec<Vec<Vec<u16>>> = (0..count)
                .map(|_| pool[rng.next_below(4) as usize].clone())
                .collect();
            let labels: Vec<usize> = (0..count)
                .map(|_| rng.next_below(params.classes as u32) as usize)
                .collect();

            let mut golden = GoldenBackend.begin_training(&spec).unwrap();
            let mut fast = FastBackend::with_threads(4).begin_training(&spec).unwrap();
            golden.train_batch(&windows, &labels).unwrap();
            fast.train_batch(&windows, &labels).unwrap();
            let g_model = golden.finalize().unwrap();
            let f_model = fast.finalize().unwrap();
            let ctx = format!("{level:?} case {case} with {params:?}");
            assert_eq!(
                f_model.prototypes(),
                g_model.prototypes(),
                "{ctx}: trained prototypes diverged"
            );

            // A stream of online updates keeps the two in lock-step.
            for (i, (w, &l)) in windows.iter().zip(&labels).take(6).enumerate() {
                let g = golden.update_online(w, l).unwrap();
                let f = fast.update_online(w, l).unwrap();
                assert_eq!(f, g, "{ctx}: online update {i}");
            }
            assert_eq!(
                fast.finalize().unwrap().prototypes(),
                golden.finalize().unwrap().prototypes(),
                "{ctx}: prototypes after online updates"
            );

            // The trained models also *serve* identically.
            let mut g_serve = golden.into_serving().unwrap();
            let mut f_serve = fast.into_serving().unwrap();
            assert_eq!(
                f_serve.classify_batch(&pool).unwrap(),
                g_serve.classify_batch(&pool).unwrap(),
                "{ctx}: served verdicts diverged"
            );
        }
    }
    Simd::set_active(Simd::detect());
}

/// Sharded equivalence across random configurations **and SIMD kernel
/// levels**: for random chain shapes, shard counts (including ragged
/// class splits and more shards than classes), and batch sizes, both
/// sharding strategies produce verdicts bit-identical to the unsharded
/// golden session — distances, query, class, the lot.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn sharded_verdicts_agree_with_golden_across_strategies_and_simd_levels() {
    let detected = Simd::detect();
    let mut levels = vec![Simd::Portable];
    if detected != Simd::Portable {
        levels.push(detected);
    }
    for level in levels {
        Simd::set_active(level);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5AA5_D0D0);
        for case in 0..10 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(6) as usize,
                levels: 2 + rng.next_below(28) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(4) as usize;
            let count = 1 + rng.next_below(40) as usize;
            let windows: Vec<Vec<Vec<u16>>> = (0..count)
                .map(|_| {
                    (0..samples)
                        .map(|_| {
                            (0..params.channels)
                                .map(|_| (rng.next_u32() & 0xffff) as u16)
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            let shards = 2 + rng.next_below(6) as usize;
            for spec in [ShardSpec::Batch(shards), ShardSpec::Class(shards)] {
                let backend = ShardedBackend::new(FastBackend::with_threads(2), spec).unwrap();
                let mut session = backend.prepare(&model).unwrap();
                let got = session.classify_batch(&windows).unwrap();
                assert_eq!(
                    got, expected,
                    "{level:?} case {case} {spec:?} ({shards} shards, {count} windows) with {params:?}"
                );
            }
        }
    }
    Simd::set_active(Simd::detect());
}

/// Tie-rigged class sharding: duplicate prototypes planted on *both
/// sides of a shard boundary* force exact cross-shard distance ties, so
/// the merge step's first-minimum order is exercised where it could
/// actually diverge (the shard holding the higher class indices reports
/// the same winning distance). The merged class must match golden's
/// first-minimum argmin, under both SIMD levels.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn class_sharded_merge_preserves_first_minimum_on_cross_shard_ties() {
    let detected = Simd::detect();
    let mut levels = vec![Simd::Portable];
    if detected != Simd::Portable {
        levels.push(detected);
    }
    for level in levels {
        Simd::set_active(level);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x71E_BA12);
        for case in 0..8 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(16) as usize,
                channels: 1 + rng.next_below(6) as usize,
                ngram: 1 + rng.next_below(3) as usize,
                classes: 6,
                levels: 2 + rng.next_below(20) as usize,
            };
            let base = HdModel::random(&params, rng.next_u64());
            // 3 shards of 2 classes each; copy one prototype across
            // every shard boundary so distances tie exactly cross-shard.
            let mut prototypes: Vec<BinaryHv> = base.prototypes().to_vec();
            prototypes[2] = prototypes[1].clone(); // boundary shard 0 | 1
            prototypes[5] = prototypes[0].clone(); // shard 2 ties shard 0
            let model = HdModel::new(
                base.cim().clone(),
                base.im().clone(),
                prototypes,
                base.ngram(),
            )
            .unwrap();
            let windows: Vec<Vec<Vec<u16>>> = (0..7)
                .map(|_| {
                    (0..params.ngram)
                        .map(|_| {
                            (0..params.channels)
                                .map(|_| (rng.next_u32() & 0xffff) as u16)
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            for scan in [ScanPolicy::Full, ScanPolicy::Pruned] {
                let backend = ShardedBackend::new(
                    FastBackend::with_threads(1).with_scan(scan),
                    ShardSpec::Class(3),
                )
                .unwrap();
                let mut session = backend.prepare(&model).unwrap();
                let got = session.classify_batch(&windows).unwrap();
                for (i, (s, g)) in got.iter().zip(&expected).enumerate() {
                    let ctx = format!("{level:?} case {case} {scan:?} window {i}");
                    assert_eq!(s.class, g.class, "{ctx}: tie broken differently");
                    assert_eq!(s.query, g.query, "{ctx}: query diverged");
                    assert_eq!(
                        s.distances[s.class], g.distances[g.class],
                        "{ctx}: winning distance"
                    );
                    if scan == ScanPolicy::Full {
                        assert_eq!(s.distances, g.distances, "{ctx}: distances");
                    }
                }
            }
        }
    }
    Simd::set_active(Simd::detect());
}

/// Sharded training reduces per-shard counter partials with the
/// commutative `CounterBundler::merge`, so its prototypes — including
/// on adversarially tie-rigged repeated-window streams — are
/// bit-identical to sequential golden training, under both SIMD levels.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn sharded_training_agrees_with_golden_across_simd_levels() {
    let detected = Simd::detect();
    let mut levels = vec![Simd::Portable];
    if detected != Simd::Portable {
        levels.push(detected);
    }
    for level in levels {
        Simd::set_active(level);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5D_7AA1);
        for case in 0..6 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(20) as usize,
                channels: 1 + rng.next_below(6) as usize,
                ngram: 1 + rng.next_below(3) as usize,
                classes: 2 + rng.next_below(5) as usize,
                levels: 2 + rng.next_below(20) as usize,
            };
            let spec = TrainSpec::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(3) as usize;
            // Repeated windows force exact counter ties through the
            // seeded tie-break (as in the unsharded training test).
            let pool: Vec<Vec<Vec<u16>>> = (0..4)
                .map(|_| {
                    (0..samples)
                        .map(|_| {
                            (0..params.channels)
                                .map(|_| (rng.next_u32() & 0xffff) as u16)
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let count = 40 + rng.next_below(25) as usize;
            let windows: Vec<Vec<Vec<u16>>> = (0..count)
                .map(|_| pool[rng.next_below(4) as usize].clone())
                .collect();
            let labels: Vec<usize> = (0..count)
                .map(|_| rng.next_below(params.classes as u32) as usize)
                .collect();

            let shards = 2 + rng.next_below(3) as usize;
            let backend =
                ShardedBackend::new(FastBackend::with_threads(2), ShardSpec::Batch(shards))
                    .unwrap();
            let mut golden = GoldenBackend.begin_training(&spec).unwrap();
            let mut sharded = backend.begin_training(&spec).unwrap();
            golden.train_batch(&windows, &labels).unwrap();
            sharded.train_batch(&windows, &labels).unwrap();
            let ctx = format!("{level:?} case {case} ({shards} shards) with {params:?}");
            assert_eq!(
                sharded.finalize().unwrap().prototypes(),
                golden.finalize().unwrap().prototypes(),
                "{ctx}: sharded training diverged from sequential golden"
            );
            for (i, (w, &l)) in windows.iter().zip(&labels).take(5).enumerate() {
                assert_eq!(
                    sharded.update_online(w, l).unwrap(),
                    golden.update_online(w, l).unwrap(),
                    "{ctx}: online update {i}"
                );
            }
            let mut g_serve = golden.into_serving().unwrap();
            let mut s_serve = sharded.into_serving().unwrap();
            assert_eq!(
                s_serve.classify_batch(&pool).unwrap(),
                g_serve.classify_batch(&pool).unwrap(),
                "{ctx}: served verdicts diverged"
            );
        }
    }
    Simd::set_active(Simd::detect());
}

/// The pruned-scan fast backend preserves everything the early exit can
/// possibly preserve across random chain shapes: the predicted class
/// (including first-minimum tie order), the query hypervector, and the
/// winning distance are identical to the golden backend's; every other
/// distance entry is a lower bound on the exact distance that never
/// undercuts the winner.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn pruned_fast_backend_agrees_with_golden_on_class_and_query() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5CA4_EE17);
    for case in 0..12 {
        let params = AccelParams {
            n_words: 1 + rng.next_below(24) as usize,
            channels: 1 + rng.next_below(8) as usize,
            ngram: 1 + rng.next_below(4) as usize,
            classes: 2 + rng.next_below(6) as usize,
            levels: 2 + rng.next_below(28) as usize,
        };
        let model = HdModel::random(&params, rng.next_u64());
        let samples = params.ngram + rng.next_below(5) as usize;
        let windows: Vec<Vec<Vec<u16>>> = (0..9)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut golden = GoldenBackend.prepare(&model).unwrap();
        let mut pruned = FastBackend::with_threads(4)
            .with_scan(ScanPolicy::Pruned)
            .prepare(&model)
            .unwrap();
        let expected = golden.classify_batch(&windows).unwrap();
        let got = pruned.classify_batch(&windows).unwrap();
        for (i, (p, g)) in got.iter().zip(&expected).enumerate() {
            let ctx = format!("case {case} window {i} with {params:?}");
            assert_eq!(p.class, g.class, "{ctx}: class diverged");
            assert_eq!(p.query, g.query, "{ctx}: query diverged");
            assert_eq!(
                p.distances[p.class], g.distances[g.class],
                "{ctx}: winning distance must be exact"
            );
            for (k, (&pd, &gd)) in p.distances.iter().zip(&g.distances).enumerate() {
                assert!(pd <= gd, "{ctx}: class {k} distance is not a lower bound");
                assert!(
                    k == p.class || pd >= g.distances[g.class],
                    "{ctx}: class {k} undercuts the winner"
                );
            }
        }
    }
}

/// `ApproxPolicy::Exact` is not "approximately exact": whether left as
/// the default or configured explicitly, an Exact fast session stays
/// bit-identical to the golden backend — every distance, the query, the
/// class, and the `Scan` verdict source — through both `classify` and
/// `classify_batch`, across random chain shapes and both SIMD levels.
/// This is the regression fence the approximate-inference ladder is
/// built behind.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn exact_policy_stays_bit_identical_to_golden_across_simd_levels() {
    let detected = Simd::detect();
    let mut levels = vec![Simd::Portable];
    if detected != Simd::Portable {
        levels.push(detected);
    }
    for level in levels {
        Simd::set_active(level);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xE8AC_7F1D);
        for case in 0..10 {
            let params = AccelParams {
                n_words: 1 + rng.next_below(24) as usize,
                channels: 1 + rng.next_below(8) as usize,
                ngram: 1 + rng.next_below(4) as usize,
                classes: 2 + rng.next_below(6) as usize,
                levels: 2 + rng.next_below(28) as usize,
            };
            let model = HdModel::random(&params, rng.next_u64());
            let samples = params.ngram + rng.next_below(5) as usize;
            let windows: Vec<Vec<Vec<u16>>> = (0..9)
                .map(|_| {
                    (0..samples)
                        .map(|_| {
                            (0..params.channels)
                                .map(|_| (rng.next_u32() & 0xffff) as u16)
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let mut golden = GoldenBackend.prepare(&model).unwrap();
            let expected = golden.classify_batch(&windows).unwrap();
            // Default construction and an explicit Exact must behave the
            // same — there is exactly one exact path.
            for backend in [
                FastBackend::with_threads(2),
                FastBackend::with_threads(2).with_approx(ApproxPolicy::Exact),
            ] {
                let mut session = backend.prepare(&model).unwrap();
                let got = session.classify_batch(&windows).unwrap();
                assert_eq!(got, expected, "{level:?} case {case} with {params:?}");
                for (i, w) in windows.iter().enumerate() {
                    let one = session.classify(w).unwrap();
                    assert_eq!(
                        one, expected[i],
                        "{level:?} case {case} window {i} (single-window path)"
                    );
                    assert_eq!(one.source, VerdictSource::Scan);
                }
            }
        }
    }
    Simd::set_active(Simd::detect());
}

/// Exact policy also holds bit-identity through the serving hand-off:
/// a trained fast session deployed with `into_serving` keeps agreeing
/// with golden when the backend was explicitly configured Exact.
#[test]
#[cfg_attr(
    miri,
    ignore = "heavy cross-backend sweep; miri_smoke covers the unsafe handoff"
)]
fn exact_policy_survives_the_training_handoff() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5E_4DE);
    for case in 0..6 {
        let params = AccelParams {
            n_words: 1 + rng.next_below(20) as usize,
            channels: 1 + rng.next_below(6) as usize,
            ngram: 1 + rng.next_below(3) as usize,
            classes: 2 + rng.next_below(5) as usize,
            levels: 2 + rng.next_below(20) as usize,
        };
        let spec = TrainSpec::random(&params, rng.next_u64());
        let samples = params.ngram + rng.next_below(3) as usize;
        let windows: Vec<Vec<Vec<u16>>> = (0..18)
            .map(|_| {
                (0..samples)
                    .map(|_| {
                        (0..params.channels)
                            .map(|_| (rng.next_u32() & 0xffff) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..18)
            .map(|_| rng.next_below(params.classes as u32) as usize)
            .collect();
        let mut golden = GoldenBackend.begin_training(&spec).unwrap();
        let mut fast = FastBackend::with_threads(2)
            .with_approx(ApproxPolicy::Exact)
            .begin_training(&spec)
            .unwrap();
        golden.train_batch(&windows, &labels).unwrap();
        fast.train_batch(&windows, &labels).unwrap();
        let mut g_serve = golden.into_serving().unwrap();
        let mut f_serve = fast.into_serving().unwrap();
        assert_eq!(
            f_serve.classify_batch(&windows).unwrap(),
            g_serve.classify_batch(&windows).unwrap(),
            "case {case} with {params:?}"
        );
    }
}
