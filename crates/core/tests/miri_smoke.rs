//! Miri-sized exercise of the repo's riskiest `unsafe` outside the SIMD
//! kernels: the `RawWindows`/`RawLabels` borrow-erased handoff that
//! ships batch slices to shard worker threads. One tiny classify and
//! one tiny train walk the full dispatch → worker → drain path under
//! the interpreter; the heavyweight equivalence sweeps stay native-only.

use hdc::rng::Xoshiro256PlusPlus;
use pulp_hd_core::backend::{
    ExecutionBackend, FastBackend, GoldenBackend, HdModel, ShardSpec, ShardedBackend, TrainSpec,
    TrainableBackend,
};
use pulp_hd_core::layout::AccelParams;

const PARAMS: AccelParams = AccelParams {
    n_words: 2,
    channels: 3,
    ngram: 2,
    classes: 3,
    levels: 4,
};

fn windows(count: usize, rng: &mut Xoshiro256PlusPlus) -> Vec<Vec<Vec<u16>>> {
    (0..count)
        .map(|_| {
            (0..PARAMS.ngram)
                .map(|_| {
                    (0..PARAMS.channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Sharded classification pushes every batch window through the
/// borrow-erased pool handoff and must still match the golden session.
#[test]
fn sharded_classify_handoff_is_sound_and_exact() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x00D1_5EED);
    let model = HdModel::random(&PARAMS, rng.next_u64());
    let batch = windows(5, &mut rng);
    let expected = GoldenBackend
        .prepare(&model)
        .unwrap()
        .classify_batch(&batch)
        .unwrap();
    for spec in [ShardSpec::Batch(2), ShardSpec::Class(2)] {
        let backend = ShardedBackend::new(FastBackend::with_threads(1), spec).unwrap();
        let got = backend
            .prepare(&model)
            .unwrap()
            .classify_batch(&batch)
            .unwrap();
        assert_eq!(got, expected, "{spec:?}");
    }
}

/// Sharded training ships windows *and* labels through the handoff and
/// merges worker counter planes; the resulting model must classify its
/// own training set exactly like a golden-trained model does.
#[test]
fn sharded_training_handoff_is_sound_and_exact() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x7EAC_0DE5);
    let spec = TrainSpec::random(&PARAMS, 42);
    let batch = windows(6, &mut rng);
    let labels: Vec<usize> = (0..batch.len()).map(|i| i % PARAMS.classes).collect();

    let mut golden = GoldenBackend.begin_training(&spec).unwrap();
    golden.train_batch(&batch, &labels).unwrap();
    let expected = golden
        .into_serving()
        .unwrap()
        .classify_batch(&batch)
        .unwrap();

    let sharded = ShardedBackend::new(FastBackend::with_threads(1), ShardSpec::Batch(2)).unwrap();
    let mut training = sharded.begin_training(&spec).unwrap();
    training.train_batch(&batch, &labels).unwrap();
    let got = training
        .into_serving()
        .unwrap()
        .classify_batch(&batch)
        .unwrap();
    assert_eq!(got, expected);
}
