//! The accuracy contract of the approximate-inference ladder.
//!
//! The exact engine is pinned to the golden model bit for bit
//! (`prop_equivalence.rs`); the approximate rungs deliberately give that
//! up, so *this* harness is their correctness contract instead:
//! on realistic workloads — a clustered EMG-style gesture task and a
//! letter-trigram language-identification task — every rung of
//! [`ApproxPolicy`] must stay within **one percentage point** of the
//! exact configuration's classification accuracy, at both SIMD kernel
//! levels. The query cache must in fact match exact accuracy *exactly*
//! (its signature is only a filter; hits replay verdicts verified by a
//! full word-for-word query compare), so only the threshold rung ever
//! spends the budget.
//!
//! The dimension auto-tuner rides the same contract: the model it emits
//! must really deliver the holdout accuracy it reports, and honoring a
//! floor means never returning a width below it.

use hdc::item_memory::quantize_code;
use hdc::rng::Xoshiro256PlusPlus;
use hdc::{ContinuousItemMemory, ItemMemory, Simd};
use pulp_hd_core::backend::{
    ApproxPolicy, ExecutionBackend, FastBackend, HdModel, TrainSpec, TrainableBackend,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_core::tune::tune_dimension;

/// Both kernel levels when the machine has them, portable always.
fn simd_levels() -> Vec<Simd> {
    let detected = Simd::detect();
    let mut levels = vec![Simd::Portable];
    if detected != Simd::Portable {
        levels.push(detected);
    }
    levels
}

/// Classification accuracy of `backend` on `model` over a labelled
/// stream, through the batched serving path.
fn accuracy(
    backend: &FastBackend,
    model: &HdModel,
    windows: &[Vec<Vec<u16>>],
    labels: &[usize],
) -> f64 {
    let mut session = backend.prepare(model).unwrap();
    let verdicts = session.classify_batch(windows).unwrap();
    let correct = verdicts
        .iter()
        .zip(labels)
        .filter(|(v, &l)| v.class == l)
        .count();
    correct as f64 / windows.len() as f64
}

/// The ladder under test: exact, each rung alone, and both combined.
///
/// `tau` is workload-specific — a deployment picks it below the
/// observed cross-class distance band, exactly as these tests do
/// (multi-channel EMG encodings correlate across classes, so its band
/// sits far below the ~0.5 of orthogonal one-channel trigram profiles).
fn ladder(tau: f32) -> [ApproxPolicy; 4] {
    [
        ApproxPolicy::Exact,
        ApproxPolicy::Threshold { tau },
        ApproxPolicy::Cached { capacity: 64 },
        ApproxPolicy::CachedThreshold { tau, capacity: 64 },
    ]
}

// ---------------------------------------------------------------------
// EMG-style workload: clustered multi-channel gesture windows.
// ---------------------------------------------------------------------

/// Clustered windows: per-class base patterns shared across splits
/// (from `base_seed`), examples jittered around them (from
/// `jitter_seed`).
fn emg_split(
    params: &AccelParams,
    per_class: usize,
    base_seed: u64,
    jitter_seed: u64,
) -> (Vec<Vec<Vec<u16>>>, Vec<usize>) {
    let mut base_rng = Xoshiro256PlusPlus::seed_from_u64(base_seed);
    let mut jitter_rng = Xoshiro256PlusPlus::seed_from_u64(jitter_seed);
    let samples = params.ngram + 2;
    let mut windows = Vec::new();
    let mut labels = Vec::new();
    for class in 0..params.classes {
        let base: Vec<Vec<u16>> = (0..samples)
            .map(|_| {
                (0..params.channels)
                    .map(|_| (base_rng.next_u32() & 0xffff) as u16)
                    .collect()
            })
            .collect();
        for _ in 0..per_class {
            let window: Vec<Vec<u16>> = base
                .iter()
                .map(|s| {
                    s.iter()
                        .map(|&v| {
                            v.wrapping_add((jitter_rng.next_below(2400) as u16).wrapping_sub(1200))
                        })
                        .collect()
                })
                .collect();
            windows.push(window);
            labels.push(class);
        }
    }
    (windows, labels)
}

/// A serving stream with temporal locality: holdout windows revisited
/// in repeated bursts, the regime the query cache exists for.
fn repeated_stream(
    windows: &[Vec<Vec<u16>>],
    labels: &[usize],
    total: usize,
    seed: u64,
) -> (Vec<Vec<Vec<u16>>>, Vec<usize>) {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut stream_w = Vec::with_capacity(total);
    let mut stream_l = Vec::with_capacity(total);
    while stream_w.len() < total {
        let pick = rng.next_below(windows.len() as u32) as usize;
        for _ in 0..3 {
            if stream_w.len() == total {
                break;
            }
            stream_w.push(windows[pick].clone());
            stream_l.push(labels[pick]);
        }
    }
    (stream_w, stream_l)
}

#[test]
#[cfg_attr(miri, ignore = "heavy statistical sweep")]
fn approx_rungs_stay_within_one_point_of_exact_on_emg() {
    let params = AccelParams {
        n_words: 128,
        ..AccelParams::emg_default()
    };
    let (train_w, train_l) = emg_split(&params, 8, 0xE46, 0x11);
    let (hold_w, hold_l) = emg_split(&params, 24, 0xE46, 0x22);
    let (stream_w, stream_l) = repeated_stream(&hold_w, &hold_l, 360, 0x33);

    let spec = TrainSpec::random(&params, 0xD0C);
    let mut trainer = FastBackend::with_threads(2).begin_training(&spec).unwrap();
    trainer.train_batch(&train_w, &train_l).unwrap();
    let model = trainer.finalize().unwrap();

    for level in simd_levels() {
        Simd::set_active(level);
        let exact = accuracy(&FastBackend::with_threads(2), &model, &stream_w, &stream_l);
        assert!(exact > 0.7, "{level:?}: workload degenerate ({exact})");
        for policy in ladder(0.05) {
            let got = accuracy(
                &FastBackend::with_threads(2).with_approx(policy),
                &model,
                &stream_w,
                &stream_l,
            );
            assert!(
                (got - exact).abs() <= 0.01 + 1e-9,
                "{level:?} {policy:?}: accuracy {got:.4} vs exact {exact:.4}"
            );
            // The cache alone is exact by construction — not "within a
            // point" but equal.
            if policy == (ApproxPolicy::Cached { capacity: 64 }) {
                assert_eq!(got, exact, "{level:?}: caching changed accuracy");
            }
        }

        // The threshold rung genuinely fires on this workload (the 1pp
        // bound above is not vacuous): single-window classification
        // reports `EarlyAccept` sources.
        let mut thresholded = FastBackend::with_threads(1)
            .with_approx(ApproxPolicy::Threshold { tau: 0.05 })
            .prepare(&model)
            .unwrap();
        let early = stream_w
            .iter()
            .filter(|w| {
                thresholded.classify(w).unwrap().source
                    == pulp_hd_core::backend::VerdictSource::EarlyAccept
            })
            .count();
        assert!(
            early * 2 > stream_w.len(),
            "{level:?}: early accept fired on only {early}/{} windows",
            stream_w.len()
        );
    }
    Simd::set_active(Simd::detect());
}

// ---------------------------------------------------------------------
// Language identification: letter trigrams over one text channel
// (the recipe of `examples/language_id.rs`).
// ---------------------------------------------------------------------

const ALPHABET: &str = "abcdefghijklmnopqrstuvwxyz ";
const LID_WORDS: usize = 128;
const NGRAM: usize = 3;

const LID_TRAIN: [&str; 3] = [
    "the ships hung in the sky in much the same way that bricks do not \
     and far out in the uncharted backwaters of the western spiral arm \
     lies a small unregarded yellow sun which has a planet whose ape \
     descended life forms are so amazingly primitive that they still \
     think digital watches are a pretty neat idea the story so far in \
     the beginning the universe was created this has made a lot of \
     people very angry and been widely regarded as a bad move",
    "es gibt eine theorie die besagt wenn jemals irgendwer genau \
     herausfindet wozu das universum da ist und warum es da ist dann \
     verschwindet es auf der stelle und wird durch noch etwas \
     bizarreres und unbegreiflicheres ersetzt es gibt eine andere \
     theorie nach der das schon passiert ist weit draussen in den \
     unerforschten einoeden eines total aus der mode gekommenen \
     auslaeufers des westlichen spiralarms der galaxis leuchtet eine \
     kleine unbeachtete gelbe sonne",
    "vi e una teoria secondo la quale se mai qualcuno scoprisse \
     esattamente a cosa serve l universo e perche esiste questo \
     scomparirebbe immediatamente e verrebbe sostituito da qualcosa di \
     ancora piu bizzarro e inspiegabile vi e un altra teoria secondo la \
     quale questo e gia avvenuto lontano nei dimenticati territori \
     inesplorati del braccio occidentale della galassia brilla un \
     piccolo e trascurato sole giallo",
];

const LID_TEST: [&str; 3] = [
    "it is an important and popular fact that things are not always \
     what they seem for instance on the planet earth man had always \
     assumed that he was more intelligent than dolphins because he had \
     achieved so much the wheel new york wars and so on whilst all the \
     dolphins had ever done was muck about in the water having a good \
     time but conversely the dolphins had always believed that they \
     were far more intelligent than man for precisely the same reasons",
    "weit draussen in der galaxis gibt es viele welten auf denen die \
     menschen niemals gewesen sind und die wahrheit ist da draussen \
     sagte er waehrend der regen gegen die fenster schlug und die \
     maschinen leise summten niemand wusste woher die besucher kamen \
     oder was sie wollten aber alle waren sich einig dass etwas \
     geschehen musste bevor es zu spaet war die zeit verging und \
     nichts aenderte sich an der lage der dinge",
    "molto lontano nella galassia ci sono molti mondi sui quali gli \
     uomini non sono mai stati e la verita e la fuori disse mentre la \
     pioggia batteva contro le finestre e le macchine ronzavano piano \
     nessuno sapeva da dove venissero i visitatori o che cosa \
     volessero ma tutti erano d accordo che qualcosa doveva accadere \
     prima che fosse troppo tardi il tempo passava e nulla cambiava \
     nella situazione delle cose",
];

fn letter_code(index: usize) -> u16 {
    let levels = ALPHABET.len() as u32;
    let code = (((index as u32) << 16) / (levels - 1)).min(u32::from(u16::MAX)) as u16;
    debug_assert_eq!(quantize_code(code, ALPHABET.len()), index);
    code
}

/// A text as a one-channel backend window, one sample per letter.
fn window_of(text: &str) -> Vec<Vec<u16>> {
    text.chars()
        .filter(|c| ALPHABET.contains(*c))
        .map(|c| vec![letter_code(ALPHABET.find(c).unwrap())])
        .collect()
}

/// Held-out texts sliced into overlapping chunks: many short
/// classification windows per language instead of three long ones.
fn lid_chunks(chunk: usize, step: usize) -> (Vec<Vec<Vec<u16>>>, Vec<usize>) {
    let mut windows = Vec::new();
    let mut labels = Vec::new();
    for (label, text) in LID_TEST.iter().enumerate() {
        let letters: Vec<char> = text.chars().filter(|c| ALPHABET.contains(*c)).collect();
        let mut start = 0;
        while start + chunk <= letters.len() {
            let slice: String = letters[start..start + chunk].iter().collect();
            windows.push(window_of(&slice));
            labels.push(label);
            start += step;
        }
    }
    (windows, labels)
}

#[test]
#[cfg_attr(miri, ignore = "heavy statistical sweep")]
fn approx_rungs_stay_within_one_point_of_exact_on_language_id() {
    let letters = ItemMemory::new(ALPHABET.len(), LID_WORDS, 0xBABE);
    let cim = ContinuousItemMemory::from_levels(letters.iter().cloned().collect());
    let im = ItemMemory::new(1, LID_WORDS, 0x1A06);
    let spec = TrainSpec::new(cim, im, NGRAM, LID_TRAIN.len(), 0x7E57).unwrap();

    let mut trainer = FastBackend::with_threads(2).begin_training(&spec).unwrap();
    for (label, text) in LID_TRAIN.iter().enumerate() {
        trainer.train(&window_of(text), label).unwrap();
    }
    let model = trainer.finalize().unwrap();

    let (chunk_w, chunk_l) = lid_chunks(48, 7);
    assert!(
        chunk_w.len() >= 100,
        "need enough chunks for 1pp resolution"
    );
    let (stream_w, stream_l) = repeated_stream(&chunk_w, &chunk_l, 300, 0x44);

    for level in simd_levels() {
        Simd::set_active(level);
        let exact = accuracy(&FastBackend::with_threads(2), &model, &stream_w, &stream_l);
        assert!(exact > 0.7, "{level:?}: workload degenerate ({exact})");
        for policy in ladder(0.35) {
            let got = accuracy(
                &FastBackend::with_threads(2).with_approx(policy),
                &model,
                &stream_w,
                &stream_l,
            );
            assert!(
                (got - exact).abs() <= 0.01 + 1e-9,
                "{level:?} {policy:?}: accuracy {got:.4} vs exact {exact:.4}"
            );
        }
    }
    Simd::set_active(Simd::detect());
}

// ---------------------------------------------------------------------
// Dimension auto-tuner: the emitted model delivers what it reports.
// ---------------------------------------------------------------------

#[test]
#[cfg_attr(miri, ignore = "heavy statistical sweep")]
fn tuned_models_meet_their_floor_when_served() {
    let params = AccelParams {
        n_words: 128,
        ..AccelParams::emg_default()
    };
    let (train_w, train_l) = emg_split(&params, 8, 0x7E4E, 0x51);
    let (hold_w, hold_l) = emg_split(&params, 12, 0x7E4E, 0x52);

    let backend = FastBackend::with_threads(2);
    let floor = 0.85;
    let outcome = tune_dimension(
        &backend,
        &params,
        0xD1A1,
        (&train_w, &train_l),
        (&hold_w, &hold_l),
        floor,
    )
    .unwrap();
    assert!(outcome.n_words < params.n_words, "{:?}", outcome.evaluated);
    assert!(outcome.accuracy >= floor);

    // Re-serving the emitted model reproduces the reported holdout
    // accuracy — the tuner measured the model it returned.
    let served = accuracy(&backend, &outcome.model, &hold_w, &hold_l);
    assert!(
        (served - outcome.accuracy).abs() < 1e-9,
        "served {served} vs reported {}",
        outcome.accuracy
    );

    // Changing D changes the distance geometry, so a deployment retunes
    // τ after retuning the width: measure the tuned model's cross-class
    // distance band on the holdout and set the accept radius below it.
    let tau = {
        let mut session = backend.prepare(&outcome.model).unwrap();
        let verdicts = session.classify_batch(&hold_w).unwrap();
        let min_cross = verdicts
            .iter()
            .zip(&hold_l)
            .flat_map(|(v, &l)| {
                v.distances
                    .iter()
                    .enumerate()
                    .filter(move |&(k, _)| k != l)
                    .map(|(_, &d)| d)
            })
            .min()
            .unwrap();
        let bits = (outcome.n_words * 32) as f32;
        #[allow(clippy::cast_precision_loss)]
        let tau = 0.8 * min_cross as f32 / bits;
        assert!(tau > 0.0, "degenerate tuned geometry");
        tau
    };

    // And the approximate rungs hold their 1pp contract on the tuned
    // (smaller) model too.
    for policy in ladder(tau) {
        let got = accuracy(
            &backend.with_approx(policy),
            &outcome.model,
            &hold_w,
            &hold_l,
        );
        assert!(
            (got - served).abs() <= 0.01 + 1e-9,
            "{policy:?} on tuned model: {got:.4} vs exact {served:.4}"
        );
    }
}

/// Not a test — an ignored diagnostic that prints the own- vs
/// cross-class normalized distance bands of the EMG workload, which is
/// how the τ values above were chosen
/// (`cargo test -p pulp-hd-core --test approx_accuracy -- --ignored --nocapture`).
#[test]
#[cfg_attr(miri, ignore = "heavy statistical sweep")]
#[ignore = "diagnostic: prints the distance bands behind the tau choices"]
fn report_distance_geometry() {
    let params = AccelParams {
        n_words: 128,
        ..AccelParams::emg_default()
    };
    let (train_w, train_l) = emg_split(&params, 8, 0xE46, 0x11);
    let (hold_w, hold_l) = emg_split(&params, 24, 0xE46, 0x22);
    let spec = TrainSpec::random(&params, 0xD0C);
    let mut trainer = FastBackend::with_threads(2).begin_training(&spec).unwrap();
    trainer.train_batch(&train_w, &train_l).unwrap();
    let model = trainer.finalize().unwrap();
    let mut session = FastBackend::with_threads(2).prepare(&model).unwrap();
    let verdicts = session.classify_batch(&hold_w).unwrap();
    let bits = (params.n_words * 32) as f64;
    let mut own = Vec::new();
    let mut cross = Vec::new();
    for (v, &l) in verdicts.iter().zip(&hold_l) {
        for (k, &d) in v.distances.iter().enumerate() {
            if k == l {
                own.push(d as f64 / bits);
            } else {
                cross.push(d as f64 / bits);
            }
        }
    }
    own.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cross.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "own: min {:.3} med {:.3} max {:.3}",
        own[0],
        own[own.len() / 2],
        own[own.len() - 1]
    );
    println!(
        "cross: min {:.3} med {:.3} max {:.3}",
        cross[0],
        cross[cross.len() / 2],
        cross[cross.len() - 1]
    );
}
