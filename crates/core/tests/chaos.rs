//! Seeded fault-injection: the chaos suite for the backend layer.
//!
//! Every test wires a [`FaultBackend`] with a deterministic
//! [`FaultPlan`] under a [`ShardedBackend`] and asserts the three
//! robustness properties the fault-tolerance layer promises:
//!
//! 1. an injected failure surfaces as a *typed* error on exactly the
//!    affected call — never a process abort, never a hang;
//! 2. the session keeps serving afterwards, and every verdict it
//!    produces in degraded mode is bit-identical to an unsharded
//!    golden session over the same model;
//! 3. health is visible: the [`ShardMonitor`] reports the loss.
//!
//! The whole binary also runs under `PULP_HD_FORCE_SCALAR=1` in CI, and
//! one test sweeps [`Simd::set_active`] explicitly, so containment and
//! rerouting are pinned on both kernel levels.

use hdc::rng::Xoshiro256PlusPlus;
use hdc::Simd;
use pulp_hd_core::backend::{
    BackendError, BackendSession, ExecutionBackend, FastBackend, FaultBackend, FaultKind,
    FaultPlan, GoldenBackend, HdModel, ShardSpec, ShardedBackend, ShardedSession, Verdict,
};
use pulp_hd_core::layout::AccelParams;

/// Mirrors `MIN_WINDOWS_PER_WORKER` in the dispatch layer: batches of
/// `4 × this` are guaranteed to fan out across two shards.
const MIN_PER_SHARD: usize = 8;

/// Silences the *expected* panics this suite injects (their messages
/// carry the literal `"injected fault"`) so worker threads stop
/// spamming stderr, while anything unexpected still reaches the
/// previous hook. Installed once per binary; safe under parallel tests.
fn silence_expected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

fn params() -> AccelParams {
    AccelParams {
        n_words: 16,
        ngram: 2,
        ..AccelParams::emg_default()
    }
}

fn random_windows(
    params: &AccelParams,
    samples: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Vec<u16>>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..samples)
                .map(|_| {
                    (0..params.channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// A chaos-wrapped sharded session plus the golden verdicts it must
/// keep matching in degraded mode.
fn chaos_session(model: &HdModel, spec: ShardSpec, plan: FaultPlan) -> ShardedSession {
    ShardedBackend::new(FaultBackend::new(FastBackend::with_threads(1), plan), spec)
        .unwrap()
        .prepare_sharded(model)
        .unwrap()
}

fn golden_verdicts(model: &HdModel, windows: &[Vec<Vec<u16>>]) -> Vec<Verdict> {
    let mut direct = GoldenBackend.prepare(model).unwrap();
    direct.classify_batch(windows).unwrap()
}

/// A batch-shard worker panic fails exactly the batch it was serving
/// with [`BackendError::WorkerLost`] (output rolled back), marks the
/// shard unhealthy, and every subsequent batch reroutes across the
/// survivors bit-identically to an unsharded golden session.
#[test]
#[cfg_attr(miri, ignore = "fault-injection timing and OS threads")]
fn batch_shard_panic_degrades_to_survivors_bit_identically() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0xC4A0);
    let windows = random_windows(&params, 3, 4 * MIN_PER_SHARD, 0xBEEF);
    let expected = golden_verdicts(&model, &windows);

    // Session index = shard index under `ShardedBackend`; panic shard
    // 1's first batch call.
    let plan = FaultPlan::new().fault_on(1, 0, FaultKind::Panic);
    let mut session = chaos_session(&model, ShardSpec::Batch(2), plan);
    let monitor = session.monitor();

    let mut out = Vec::new();
    let err = session.classify_batch_into(&windows, &mut out).unwrap_err();
    match err {
        BackendError::WorkerLost { chunk, panic } => {
            assert_eq!(chunk, 1, "the panicking shard served chunk 1");
            assert!(panic.contains("injected fault"), "{panic}");
        }
        other => panic!("expected WorkerLost, got {other}"),
    }
    assert!(out.is_empty(), "failed batch must roll back its output");
    assert_eq!(monitor.healthy(), vec![true, false]);
    assert_eq!(monitor.healthy_shards(), 1);

    // Degraded mode: the primary serves everything alone, bit-exactly.
    assert_eq!(session.classify_batch(&windows).unwrap(), expected);
    assert_eq!(session.classify(&windows[0]).unwrap(), expected[0]);
    // Health never silently recovers.
    assert_eq!(monitor.healthy(), vec![true, false]);
}

/// A class-shard loss cannot degrade (its slice of the associative
/// memory is gone), so it is a *permanent* typed [`ShardLost`]: the
/// failing call and every call after it report the same loss.
#[test]
#[cfg_attr(miri, ignore = "fault-injection timing and OS threads")]
fn class_shard_panic_is_a_permanent_typed_loss() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0xC4A1);
    let windows = random_windows(&params, 3, 6, 0xCAFE);

    let plan = FaultPlan::new().fault_on(1, 0, FaultKind::Panic);
    let mut session = chaos_session(&model, ShardSpec::Class(2), plan);
    let monitor = session.monitor();

    let err = session.classify_batch(&windows).unwrap_err();
    assert!(
        matches!(err, BackendError::ShardLost { shard: 1, ref panic } if panic.contains("injected fault")),
        "{err}"
    );
    assert_eq!(monitor.healthy(), vec![true, false]);

    // The loss is sticky: later batches and single windows keep
    // reporting it instead of silently dropping classes.
    for _ in 0..2 {
        assert!(matches!(
            session.classify_batch(&windows),
            Err(BackendError::ShardLost { shard: 1, .. })
        ));
    }
    assert!(matches!(
        session.classify(&windows[0]),
        Err(BackendError::ShardLost { shard: 1, .. })
    ));
}

/// An injected *error* (no unwind) fails its batch with the typed
/// [`BackendError::Injected`] but leaves the shard healthy — the very
/// next batch fans out across all shards again and stays bit-exact.
#[test]
#[cfg_attr(miri, ignore = "fault-injection timing and OS threads")]
fn injected_error_fails_one_batch_and_spares_the_shard() {
    let params = params();
    let model = HdModel::random(&params, 0xC4A2);
    let windows = random_windows(&params, 3, 4 * MIN_PER_SHARD, 0xD00D);
    let expected = golden_verdicts(&model, &windows);

    let plan = FaultPlan::new().fault_on(1, 0, FaultKind::Error);
    let mut session = chaos_session(&model, ShardSpec::Batch(2), plan);
    let monitor = session.monitor();

    let err = session.classify_batch(&windows).unwrap_err();
    assert!(matches!(err, BackendError::Injected { call: 0 }), "{err}");
    assert_eq!(
        monitor.healthy(),
        vec![true, true],
        "a plain error must not poison the shard"
    );

    assert_eq!(session.classify_batch(&windows).unwrap(), expected);
    // Both shards took traffic on the healthy retry.
    assert!(monitor.windows().iter().all(|&w| w > 0));
}

/// The fault schedule and the degraded-mode rerouting are deterministic
/// on every kernel level: the same plan fires on the same call and the
/// surviving shards produce bit-identical verdicts under AVX2 and the
/// portable scalar path alike.
#[test]
#[cfg_attr(miri, ignore = "fault-injection timing and OS threads")]
fn degraded_serving_is_bit_identical_on_every_simd_level() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0xC4A3);
    let windows = random_windows(&params, 3, 4 * MIN_PER_SHARD, 0xF00D);
    let expected = golden_verdicts(&model, &windows);

    let restore = Simd::active();
    let levels: &[Simd] = {
        #[cfg(target_arch = "x86_64")]
        {
            if Simd::detect() == Simd::Avx2 {
                &[Simd::Portable, Simd::Avx2]
            } else {
                &[Simd::Portable]
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            &[Simd::Portable]
        }
    };
    for &level in levels {
        Simd::set_active(level);
        let plan = FaultPlan::new().fault_on(1, 0, FaultKind::Panic);
        let mut session = chaos_session(&model, ShardSpec::Batch(2), plan);
        let err = session.classify_batch(&windows).unwrap_err();
        assert!(
            matches!(err, BackendError::WorkerLost { chunk: 1, .. }),
            "{level:?}: {err}"
        );
        assert_eq!(
            session.classify_batch(&windows).unwrap(),
            expected,
            "{level:?}: degraded verdicts must not depend on the kernel level"
        );
    }
    Simd::set_active(restore);
}

/// Injected latency delays a call without corrupting it — the backend
/// keeps its verdicts bit-exact (the serve layer builds deadlines on
/// top of this).
#[test]
#[cfg_attr(miri, ignore = "fault-injection timing and OS threads")]
fn injected_delay_never_changes_verdicts() {
    let params = params();
    let model = HdModel::random(&params, 0xC4A4);
    let windows = random_windows(&params, 3, 4, 0xFADE);
    let expected = golden_verdicts(&model, &windows);

    let plan = FaultPlan::new().fault_at(0, FaultKind::Delay(std::time::Duration::from_millis(5)));
    let chaos = FaultBackend::new(FastBackend::with_threads(1), plan);
    let mut session = chaos.prepare(&model).unwrap();
    assert_eq!(session.classify_batch(&windows).unwrap(), expected);
}
