//! Fuzz-style robustness tests for the wire codec — the first
//! installment of the ROADMAP fuzzing item, mirroring miden-vm's
//! differential-fuzz pattern: drive the decoder with arbitrary,
//! truncated, and bit-flipped byte streams and pin that it **never
//! panics** — every input yields a valid frame or a typed
//! [`WireError`] — and that every encodable value round-trips
//! bit-exactly.

use std::time::Duration;

use hdc::rng::Xoshiro256PlusPlus;
use pulp_hd_core::backend::{BinaryHv, CycleBreakdown, Verdict, VerdictSource};
use pulp_hd_serve::net::proto::{
    self, decode_header, decode_request, decode_response, encode_request, encode_response,
    FrameHeader, HealthReport, Request, Response, WireFault,
};
use pulp_hd_serve::net::ErrorCode;
use pulp_hd_serve::ServerStats;

const MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Decodes bytes the way the server does: header first, then the
/// payload against both request and response decoders. Every path must
/// return, never panic.
fn decode_all(bytes: &[u8]) {
    let Ok(header) = decode_header(bytes, MAX_FRAME) else {
        return;
    };
    let payload = bytes
        .get(proto::HEADER_LEN..proto::HEADER_LEN + header.len as usize)
        .unwrap_or(&[]);
    let _ = decode_request(&header, payload);
    let _ = decode_response(&header, payload);
}

#[test]
#[cfg_attr(
    miri,
    ignore = "large randomized corpus; the audit fuzzer covers proto under Miri-sized budgets"
)]
fn arbitrary_bytes_never_panic_the_decoder() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xF422);
    for round in 0..5_000 {
        let len = (rng.next_u32() % 256) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| (rng.next_u32() & 0xff) as u8).collect();
        decode_all(&bytes);
        // A second pass with valid magic/version forced in, so the
        // payload decoders actually run instead of dying at the magic
        // check.
        if bytes.len() >= proto::HEADER_LEN {
            bytes[..4].copy_from_slice(&proto::MAGIC.to_le_bytes());
            bytes[4] = proto::VERSION;
            bytes[6] = 0;
            bytes[7] = 0;
            // Keep the declared length pointing inside the buffer often
            // enough to exercise full payload decodes.
            if round % 2 == 0 {
                let payload_len = (bytes.len() - proto::HEADER_LEN) as u32;
                bytes[16..20].copy_from_slice(&payload_len.to_le_bytes());
            }
            decode_all(&bytes);
        }
    }
}

fn sample_windows(rng: &mut Xoshiro256PlusPlus, count: usize) -> Vec<Vec<Vec<u16>>> {
    (0..count)
        .map(|_| {
            let samples = 1 + (rng.next_u32() % 4) as usize;
            let channels = 1 + (rng.next_u32() % 5) as usize;
            (0..samples)
                .map(|_| {
                    (0..channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn sample_verdict(rng: &mut Xoshiro256PlusPlus) -> Verdict {
    let n_dist = 1 + (rng.next_u32() % 8) as usize;
    let n_words = 1 + (rng.next_u32() % 16) as usize;
    Verdict {
        class: (rng.next_u32() % 64) as usize,
        distances: (0..n_dist).map(|_| rng.next_u32() % 10_000).collect(),
        query: BinaryHv::from_words((0..n_words).map(|_| rng.next_u32()).collect()),
        cycles: if rng.next_u32() % 2 == 0 {
            None
        } else {
            Some(CycleBreakdown {
                map_encode: u64::from(rng.next_u32()),
                am: u64::from(rng.next_u32()),
                total: u64::from(rng.next_u32()),
            })
        },
        source: match rng.next_u32() % 3 {
            0 => VerdictSource::Scan,
            1 => VerdictSource::EarlyAccept,
            _ => VerdictSource::CacheHit,
        },
    }
}

fn sample_stats(rng: &mut Xoshiro256PlusPlus) -> ServerStats {
    let shards = (rng.next_u32() % 4) as usize;
    ServerStats {
        completed: u64::from(rng.next_u32()),
        rejected: u64::from(rng.next_u32()),
        batches: u64::from(rng.next_u32()),
        mean_batch: f64::from(rng.next_u32()) / 7.0,
        p50_us: u64::from(rng.next_u32()),
        p95_us: u64::from(rng.next_u32()),
        p99_us: u64::from(rng.next_u32()),
        latency_max_us: u64::from(rng.next_u32()),
        latency_mean_us: f64::from(rng.next_u32()) / 3.0,
        batch_service_max_us: u64::from(rng.next_u32()),
        batch_service_mean_us: f64::from(rng.next_u32()) / 11.0,
        elapsed: Duration::from_nanos(u64::from(rng.next_u32())),
        windows_per_sec: f64::from(rng.next_u32()) / 13.0,
        deadline_expired: u64::from(rng.next_u32()),
        retried_batches: u64::from(rng.next_u32()),
        contained_panics: u64::from(rng.next_u32()),
        shard_windows: (0..shards).map(|_| u64::from(rng.next_u32())).collect(),
        shard_healthy: (0..shards).map(|_| rng.next_u32() % 2 == 0).collect(),
        cache_hits: u64::from(rng.next_u32()),
        cache_misses: u64::from(rng.next_u32()),
        cache_evictions: u64::from(rng.next_u32()),
    }
}

fn sample_requests(rng: &mut Xoshiro256PlusPlus) -> Vec<Request> {
    vec![
        Request::Classify {
            deadline_us: u64::from(rng.next_u32()),
            window: sample_windows(rng, 1).pop().unwrap(),
        },
        Request::ClassifyBatch {
            deadline_us: 0,
            windows: sample_windows(rng, 3),
        },
        Request::ClassifyBatch {
            deadline_us: 17,
            windows: Vec::new(),
        },
        Request::Stats,
        Request::Health,
    ]
}

fn sample_responses(rng: &mut Xoshiro256PlusPlus) -> Vec<Response> {
    vec![
        Response::Verdict(sample_verdict(rng)),
        Response::VerdictBatch(vec![
            Ok(sample_verdict(rng)),
            Err(WireFault::new(ErrorCode::Overloaded, "queue full")),
            Ok(sample_verdict(rng)),
            Err(WireFault::new(ErrorCode::DeadlineExceeded, "")),
        ]),
        Response::Stats(sample_stats(rng)),
        Response::Health(HealthReport {
            serving: true,
            shard_healthy: vec![true, false, true],
        }),
        Response::Error(WireFault::new(ErrorCode::Malformed, "bad frame: \u{1F980}")),
    ]
}

/// Every encodable request and response round-trips bit-exactly —
/// including the full `ServerStats` (f64 fields, shard vectors, cache
/// counters) and verdicts with their query hypervectors.
#[test]
#[cfg_attr(
    miri,
    ignore = "large randomized corpus; the audit fuzzer covers proto under Miri-sized budgets"
)]
fn requests_and_responses_round_trip_exactly() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x5EED);
    for _ in 0..50 {
        for (i, request) in sample_requests(&mut rng).into_iter().enumerate() {
            let id = 1000 + i as u64;
            let bytes = encode_request(id, &request);
            let header = decode_header(&bytes, MAX_FRAME).unwrap();
            assert_eq!(header.id, id);
            assert_eq!(header.len as usize, bytes.len() - proto::HEADER_LEN);
            let decoded = decode_request(&header, &bytes[proto::HEADER_LEN..]).unwrap();
            assert_eq!(decoded, request);
        }
        for (i, response) in sample_responses(&mut rng).into_iter().enumerate() {
            let id = 2000 + i as u64;
            let bytes = encode_response(id, &response);
            let header = decode_header(&bytes, MAX_FRAME).unwrap();
            assert_eq!(header.id, id);
            let decoded = decode_response(&header, &bytes[proto::HEADER_LEN..]).unwrap();
            assert_eq!(decoded, response);
        }
    }
}

/// Every strict prefix of a valid frame decodes to a typed error (and
/// never panics): truncation anywhere in the stream is survivable.
#[test]
#[cfg_attr(
    miri,
    ignore = "large randomized corpus; the audit fuzzer covers proto under Miri-sized budgets"
)]
fn truncated_valid_frames_yield_typed_errors() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0x7A11);
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for request in sample_requests(&mut rng) {
        frames.push(encode_request(7, &request));
    }
    for response in sample_responses(&mut rng) {
        frames.push(encode_response(9, &response));
    }
    for bytes in &frames {
        let header = decode_header(bytes, MAX_FRAME).unwrap();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            if cut < proto::HEADER_LEN {
                assert!(decode_header(prefix, MAX_FRAME).is_err(), "cut at {cut}");
            } else {
                // Header intact, payload truncated: the payload decoders
                // must reject without panicking.
                let payload = &prefix[proto::HEADER_LEN..];
                assert!(
                    decode_request(&header, payload).is_err()
                        || decode_response(&header, payload).is_err(),
                    "cut at {cut} decoded both ways despite missing bytes"
                );
                let _ = decode_request(&header, payload);
                let _ = decode_response(&header, payload);
            }
        }
    }
}

/// Flipping any single bit of a valid frame never panics the decoder:
/// the result is either a typed error or a (different but) valid frame.
#[test]
#[cfg_attr(
    miri,
    ignore = "large randomized corpus; the audit fuzzer covers proto under Miri-sized budgets"
)]
fn bit_flipped_frames_never_panic() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xB1F1);
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for request in sample_requests(&mut rng) {
        frames.push(encode_request(3, &request));
    }
    for response in sample_responses(&mut rng) {
        frames.push(encode_response(5, &response));
    }
    for bytes in &frames {
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                decode_all(&flipped);
            }
        }
    }
}

/// A window header claiming samples with zero channels needs zero
/// payload bytes, so the remaining-bytes check alone cannot bound it:
/// each claimed sample still costs a `Vec` header (~24 bytes) at
/// decode. 8 bytes on the wire must never demand megabytes of live
/// allocation — the decoder rejects the shape outright.
#[test]
#[cfg_attr(
    miri,
    ignore = "large randomized corpus; the audit fuzzer covers proto under Miri-sized budgets"
)]
fn zero_channel_windows_are_rejected_before_allocation() {
    // Classify: one window claiming the full sample cap, zero channels.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&(1u32 << 20).to_le_bytes());
    payload.extend_from_slice(&0u32.to_le_bytes());
    let bytes = proto::frame(proto::kind::CLASSIFY, 1, &payload);
    let header = decode_header(&bytes, MAX_FRAME).unwrap();
    assert!(matches!(
        decode_request(&header, &bytes[proto::HEADER_LEN..]),
        Err(proto::WireError::Malformed(_))
    ));

    // The batch amplification: a ~512 KiB frame of 8-byte windows, each
    // claiming the sample cap (65536 × 2^20 Vec headers ≈ terabytes if
    // believed), dies the same typed death under the 4 MiB frame cap.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&(1u32 << 16).to_le_bytes());
    for _ in 0..(1u32 << 16) {
        payload.extend_from_slice(&(1u32 << 20).to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
    }
    let bytes = proto::frame(proto::kind::CLASSIFY_BATCH, 2, &payload);
    let header = decode_header(&bytes, MAX_FRAME).unwrap();
    assert!(matches!(
        decode_request(&header, &bytes[proto::HEADER_LEN..]),
        Err(proto::WireError::Malformed(_))
    ));

    // Degenerate-but-honest windows still pass: the encoder normalizes
    // both the empty window and a window of zero-width samples to the
    // empty window, which decodes cleanly.
    for window in [Vec::new(), vec![Vec::new(); 3]] {
        let bytes = encode_request(
            3,
            &Request::Classify {
                deadline_us: 7,
                window,
            },
        );
        let header = decode_header(&bytes, MAX_FRAME).unwrap();
        assert_eq!(
            decode_request(&header, &bytes[proto::HEADER_LEN..]).unwrap(),
            Request::Classify {
                deadline_us: 7,
                window: Vec::new(),
            }
        );
    }
}

/// The header checks fire in a useful order: corrupt magic is
/// `BadMagic`, a wrong version is `BadVersion`, an oversized declared
/// payload is `TooLarge` (the slow-loris/allocation guard), and a
/// too-small cap is enforced.
#[test]
#[cfg_attr(
    miri,
    ignore = "large randomized corpus; the audit fuzzer covers proto under Miri-sized budgets"
)]
fn header_rejections_are_typed() {
    let frame = encode_request(1, &Request::Stats);
    let header: FrameHeader = decode_header(&frame, MAX_FRAME).unwrap();
    assert_eq!(header.kind, proto::kind::STATS);

    let mut bad_magic = frame.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        decode_header(&bad_magic, MAX_FRAME),
        Err(proto::WireError::BadMagic(_))
    ));

    let mut bad_version = frame.clone();
    bad_version[4] = 99;
    assert!(matches!(
        decode_header(&bad_version, MAX_FRAME),
        Err(proto::WireError::BadVersion(99))
    ));

    let mut huge = frame.clone();
    huge[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_header(&huge, MAX_FRAME),
        Err(proto::WireError::TooLarge { .. })
    ));

    // A big batch frame against a tiny cap: rejected at the header, so
    // the reader never allocates the payload.
    let big = encode_request(
        2,
        &Request::ClassifyBatch {
            deadline_us: 0,
            windows: vec![vec![vec![0u16; 64]; 8]; 4],
        },
    );
    assert!(matches!(
        decode_header(&big, 16),
        Err(proto::WireError::TooLarge { .. })
    ));
}
