//! Seeded fault-injection against the serving front-end: worker panics
//! contained and retried behind the batcher, injected errors isolated
//! to their own ticket, deadlines shedding stalled requests, and shard
//! death degrading — never crashing — a sharded server.
//!
//! Companion to the core-layer chaos suite (`pulp-hd-core/tests/chaos`):
//! that one pins the backend's typed errors and rerouting; this one
//! pins what a *client* observes through [`Server`] under the same
//! deterministic [`FaultPlan`] schedules. Runs in CI on both kernel
//! levels (a second pass sets `PULP_HD_FORCE_SCALAR=1`).

use std::time::Duration;

use hdc::rng::Xoshiro256PlusPlus;
use pulp_hd_core::backend::{
    BackendError, ExecutionBackend, FastBackend, FaultBackend, FaultKind, FaultPlan, GoldenBackend,
    HdModel, ShardSpec, ShardedBackend, Verdict,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_serve::{ServeConfig, ServeError, Server};

/// Silences the panics this suite injects on purpose (tagged with the
/// literal `"injected fault"`); everything else still reaches the
/// previous hook.
fn silence_expected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

fn params() -> AccelParams {
    AccelParams {
        n_words: 16,
        ngram: 2,
        ..AccelParams::emg_default()
    }
}

fn random_windows(
    params: &AccelParams,
    samples: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Vec<u16>>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..samples)
                .map(|_| {
                    (0..params.channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn golden_verdicts(model: &HdModel, windows: &[Vec<Vec<u16>>]) -> Vec<Verdict> {
    let mut direct = GoldenBackend.prepare(model).unwrap();
    direct.classify_batch(windows).unwrap()
}

/// A scheduled panic inside the served session is contained on the
/// batcher thread and retried — the affected request still gets its
/// bit-exact verdict, nobody else notices, and the telemetry records
/// exactly one contained panic and one retried batch.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn contained_panic_is_retried_transparently() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0x5E01);
    let windows = random_windows(&params, 3, 3, 0xA11);
    let expected = golden_verdicts(&model, &windows);

    // Closed-loop traffic means one session call per request; call 1
    // panics, its retry lands on the fault-free call 2.
    let chaos = FaultBackend::new(
        FastBackend::try_with_threads(1).unwrap(),
        FaultPlan::new().fault_at(1, FaultKind::Panic),
    );
    let server = Server::spawn(&chaos, &model, ServeConfig::default()).unwrap();
    let client = server.client();
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(client.classify(w).unwrap(), expected[i], "request {i}");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, windows.len() as u64);
    assert_eq!(stats.contained_panics, 1);
    assert_eq!(stats.retried_batches, 1);
}

/// An injected backend *error* that persists through the per-window
/// fallback fails exactly its own ticket with the typed error; requests
/// before and after it are served bit-exactly.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn injected_error_fails_only_the_affected_request() {
    let params = params();
    let model = HdModel::random(&params, 0x5E02);
    let windows = random_windows(&params, 3, 3, 0xB22);
    let expected = golden_verdicts(&model, &windows);

    // Call 1 is request 1's batch; call 2 is its per-window fallback —
    // faulting both makes the *request* fail (a batch-only fault would
    // be masked by the fallback).
    let chaos = FaultBackend::new(
        FastBackend::try_with_threads(1).unwrap(),
        FaultPlan::new()
            .fault_at(1, FaultKind::Error)
            .fault_at(2, FaultKind::Error),
    );
    let server = Server::spawn(&chaos, &model, ServeConfig::default()).unwrap();
    let client = server.client();

    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);
    let err = client.classify(&windows[1]).unwrap_err();
    assert!(
        matches!(err, ServeError::Backend(BackendError::Injected { call: 2 })),
        "{err}"
    );
    assert_eq!(client.classify(&windows[2]).unwrap(), expected[2]);

    let stats = server.shutdown();
    assert_eq!(
        stats.completed, 3,
        "errored requests still count as answered"
    );
    assert_eq!(stats.contained_panics, 0);
}

/// A backend stall (injected latency) makes queued requests miss their
/// deadline: the stalled request itself is served, the one stuck
/// behind it resolves with the typed `DeadlineExceeded` instead of
/// being served late, and the server keeps serving afterwards.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn injected_latency_trips_request_deadlines() {
    let params = params();
    let model = HdModel::random(&params, 0x5E03);
    let windows = random_windows(&params, 3, 3, 0xC33);
    let expected = golden_verdicts(&model, &windows);

    let chaos = FaultBackend::new(
        FastBackend::try_with_threads(1).unwrap(),
        FaultPlan::new().fault_at(0, FaultKind::Delay(Duration::from_millis(100))),
    );
    let server = Server::spawn(
        &chaos,
        &model,
        ServeConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            deadline: Some(Duration::from_millis(10)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();

    // The first request is dequeued while fresh, then stalls 100 ms in
    // service; the second waits those 100 ms in the queue and has
    // missed its 10 ms deadline by the time its batch forms.
    let stalled = client.submit(windows[0].clone()).unwrap();
    let expired = client.submit(windows[1].clone()).unwrap();
    assert_eq!(stalled.wait().unwrap(), expected[0]);
    assert!(matches!(expired.wait(), Err(ServeError::DeadlineExceeded)));
    // Past the stall the server is healthy again.
    assert_eq!(client.classify(&windows[2]).unwrap(), expected[2]);

    let stats = server.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.completed, 3);
}

/// A shard worker panic behind a sharded server: the batch-level retry
/// reroutes around the dead shard, so every client request — including
/// the wave that lost the shard — resolves with a bit-exact verdict,
/// and the loss is visible in `ServerStats::shard_healthy`.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn shard_death_degrades_the_server_without_client_visible_errors() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0x5E04);
    let windows = random_windows(&params, 3, 32, 0xD44);
    let expected = golden_verdicts(&model, &windows);

    let backend = ShardedBackend::new(
        FaultBackend::new(
            FastBackend::try_with_threads(1).unwrap(),
            // Session index = shard index: shard 1 dies on its first
            // fanned chunk.
            FaultPlan::new().fault_on(1, 0, FaultKind::Panic),
        ),
        ShardSpec::Batch(2),
    )
    .unwrap();
    let session = backend.prepare_sharded(&model).unwrap();
    let monitor = session.monitor();
    let server = Server::from_session(
        Box::new(session),
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .unwrap()
    .with_shard_monitor(monitor.clone());
    let client = server.client();

    // Waves of simultaneous tickets until one batch grows past the
    // fan-out threshold and trips the scheduled shard panic (batches
    // below it stay on the primary and cannot fan out).
    let mut shard_lost = false;
    for wave in 0..50 {
        let tickets: Vec<_> = windows
            .iter()
            .map(|w| client.submit(w.clone()).unwrap())
            .collect();
        for (i, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(
                ticket.wait().unwrap(),
                expected[i],
                "wave {wave}, window {i}"
            );
        }
        if !monitor.healthy()[1] {
            shard_lost = true;
            break;
        }
    }
    assert!(
        shard_lost,
        "no wave ever fanned out across the shards; fault never fired"
    );

    // Degraded mode keeps serving bit-exactly.
    for (i, w) in windows.iter().enumerate().take(4) {
        assert_eq!(client.classify(w).unwrap(), expected[i]);
    }
    let stats = server.shutdown();
    assert_eq!(stats.shard_healthy, vec![true, false]);
    assert!(stats.retried_batches >= 1, "{:?}", stats.retried_batches);
    assert_eq!(stats.contained_panics, 0, "the backend contained it");
}

/// A hung backend ([`FaultKind::Hang`]) does not wedge callers who use
/// `wait_timeout`: the ticket times out with `Ok(None)` while the
/// worker is stuck, and after the hang releases the server returns to
/// serving bit-identical verdicts.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn hung_backend_times_out_tickets_then_recovers() {
    let params = params();
    let model = HdModel::random(&params, 0x5E05);
    let windows = random_windows(&params, 3, 2, 0xD55);
    let expected = golden_verdicts(&model, &windows);

    let plan = FaultPlan::new().fault_at(0, FaultKind::Hang);
    let release = plan.hang_release();
    let backend = FaultBackend::new(FastBackend::try_with_threads(1).unwrap(), plan);
    let server = Server::spawn(
        &backend,
        &model,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_micros(100),
            queue_depth: 16,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();

    // The first submission lands on the hung call: its ticket must time
    // out cleanly (`Ok(None)`, consuming the ticket) instead of
    // blocking forever.
    let stuck = client.submit(windows[0].clone()).unwrap();
    assert!(
        stuck
            .wait_timeout(Duration::from_millis(100))
            .unwrap()
            .is_none(),
        "ticket resolved while the backend was hung"
    );

    // Release the hang: the wedged batch drains and fresh requests —
    // including a re-ask of the abandoned window — serve bit-identically.
    release.release();
    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);
    assert_eq!(client.classify(&windows[1]).unwrap(), expected[1]);
    let _ = server.shutdown();
}
