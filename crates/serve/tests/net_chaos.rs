//! Transport-level chaos for the wire front-end. A seeded
//! [`FaultTransport`] injects disconnects, truncated frames, garbage
//! bytes, and stalls between a [`NetClient`] and its server, and
//! backend faults ([`FaultKind::Panic`], [`FaultKind::Hang`]) rage
//! underneath — pinning that the server never panics or leaks
//! connections, healthy clients keep getting bit-identical verdicts,
//! and every injected fault surfaces as a typed error within its
//! deadline.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use hdc::rng::Xoshiro256PlusPlus;
use pulp_hd_core::backend::{
    ExecutionBackend, FastBackend, FaultBackend, FaultKind, FaultPlan, GoldenBackend, HdModel,
    Verdict,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_serve::net::{
    Endpoint, FaultTransport, NetClient, NetClientConfig, NetConfig, NetError, NetServer,
    TransportFault, TransportPlan, WireStream,
};
use pulp_hd_serve::{ServeConfig, Server};

fn silence_expected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected fault") {
                previous(info);
            }
        }));
    });
}

fn params() -> AccelParams {
    AccelParams {
        n_words: 16,
        ngram: 2,
        ..AccelParams::emg_default()
    }
}

fn random_windows(
    params: &AccelParams,
    samples: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Vec<u16>>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..samples)
                .map(|_| {
                    (0..params.channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn golden_verdicts(model: &HdModel, windows: &[Vec<Vec<u16>>]) -> Vec<Verdict> {
    let mut direct = GoldenBackend.prepare(model).unwrap();
    direct.classify_batch(windows).unwrap()
}

fn spawn_tcp(model: &HdModel, net_config: NetConfig) -> NetServer {
    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, model, ServeConfig::default()).unwrap();
    NetServer::spawn(server, &[Endpoint::Tcp("127.0.0.1:0".into())], net_config).unwrap()
}

/// Connects a `NetClient` whose *first* connection runs through a
/// [`FaultTransport`] with the given plan; reconnects dial clean TCP.
/// (Op counters are per-connection, so wrapping every dial would
/// re-fire an op-0 fault on each retry and never converge.)
fn faulty_client(
    addr: std::net::SocketAddr,
    plan: TransportPlan,
    config: NetClientConfig,
) -> NetClient {
    let mut first = Some(plan);
    NetClient::connect_with(
        Box::new(move || {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Ok(match first.take() {
                Some(plan) => Box::new(FaultTransport::new(stream, plan)) as Box<dyn WireStream>,
                None => Box::new(stream) as Box<dyn WireStream>,
            })
        }),
        config,
    )
    .unwrap()
}

/// A mid-stream disconnect is retried transparently: the client
/// redials and the verdict it eventually gets is bit-identical to a
/// clean run. The dead connection does not leak server-side.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn disconnect_is_retried_to_a_bit_identical_verdict() {
    let params = params();
    let model = HdModel::random(&params, 0xC401);
    let windows = random_windows(&params, 3, 4, 0x9001);
    let expected = golden_verdicts(&model, &windows);

    let net = spawn_tcp(&model, NetConfig::default());
    let addr = net.tcp_addr().unwrap();

    // Read op 0 (first response header) dies; the retry's fresh
    // connection reads clean.
    let plan = TransportPlan::new(0xD15C).fault_read(0, TransportFault::Disconnect);
    let mut client = faulty_client(addr, plan, NetClientConfig::default());
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(client.classify(w).unwrap(), expected[i], "window {i}");
    }

    drop(client);
    let (_, net_stats) = net.shutdown();
    assert!(net_stats.accepted >= 2, "retry must have redialed");
    assert_eq!(net_stats.active, 0, "dead connection leaked");
}

/// Garbage on the wire — a corrupted request frame — kills only that
/// connection with a typed error; the client redials and recovers, and
/// a healthy concurrent client never notices.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn garbage_frames_surface_typed_and_spare_healthy_clients() {
    let params = params();
    let model = HdModel::random(&params, 0xC402);
    let windows = random_windows(&params, 3, 4, 0x9002);
    let expected = golden_verdicts(&model, &windows);

    let net = spawn_tcp(&model, NetConfig::default());
    let addr = net.tcp_addr().unwrap();

    let mut healthy = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();

    // Write op 0 (the first request frame) goes out XOR-scrambled.
    let plan = TransportPlan::new(0x6A5B).fault_write(0, TransportFault::Garbage);
    let mut victim = faulty_client(addr, plan, NetClientConfig::default());
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(
            victim.classify(w).unwrap(),
            expected[i],
            "victim window {i}"
        );
        assert_eq!(
            healthy.classify(w).unwrap(),
            expected[i],
            "healthy window {i}"
        );
    }

    drop(victim);
    drop(healthy);
    let (_, net_stats) = net.shutdown();
    assert!(net_stats.malformed >= 1, "scrambled frame must be counted");
    assert_eq!(net_stats.active, 0);
}

/// A truncated request (half a frame, then silence) trips the server's
/// slow-loris guard within the configured read timeout: the connection
/// is killed with a typed `Stalled` go-away, counted, and the client's
/// retry on a fresh connection succeeds bit-identically.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn truncated_frames_trip_the_stall_guard_within_bound() {
    let params = params();
    let model = HdModel::random(&params, 0xC403);
    let windows = random_windows(&params, 3, 2, 0x9003);
    let expected = golden_verdicts(&model, &windows);

    let read_timeout = Duration::from_millis(100);
    let net = spawn_tcp(
        &model,
        NetConfig {
            read_timeout,
            ..NetConfig::default()
        },
    );
    let addr = net.tcp_addr().unwrap();

    // Write op 0 sends only half the frame then kills the transport:
    // the server sees a frame that never completes.
    let plan = TransportPlan::new(0x7121).fault_write(0, TransportFault::Truncate);
    let started = Instant::now();
    let mut client = faulty_client(addr, plan, NetClientConfig::default());
    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);
    assert!(
        started.elapsed() < read_timeout + Duration::from_secs(2),
        "recovery took {:?}",
        started.elapsed()
    );

    // Give the server's poll loop a beat to reap the half-dead
    // connection, then confirm it was killed as stalled (or as a plain
    // hangup, depending on when the transport died), never leaked.
    let reaped = Instant::now();
    let net_stats = loop {
        let s = net.net_stats();
        if s.active <= 1 || reaped.elapsed() > Duration::from_secs(5) {
            break s;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(net_stats.active <= 1, "stalled connection leaked");

    drop(client);
    let (_, final_stats) = net.shutdown();
    assert_eq!(final_stats.active, 0);
}

/// A connection that stalls mid-frame (bytes trickle, then a long
/// pause) is killed within the read timeout — the wire equivalent of
/// the watchdog — while a healthy client keeps being served.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn stalls_are_killed_within_the_read_timeout() {
    let params = params();
    let model = HdModel::random(&params, 0xC404);
    let windows = random_windows(&params, 3, 2, 0x9004);
    let expected = golden_verdicts(&model, &windows);

    let read_timeout = Duration::from_millis(80);
    let net = spawn_tcp(
        &model,
        NetConfig {
            read_timeout,
            ..NetConfig::default()
        },
    );
    let addr = net.tcp_addr().unwrap();

    // Raw slow-loris: half a valid header, then hold the socket open.
    use std::io::Write;
    let mut loris = TcpStream::connect(addr).unwrap();
    let frame =
        pulp_hd_serve::net::proto::encode_request(1, &pulp_hd_serve::net::proto::Request::Stats);
    loris.write_all(&frame[..frame.len() / 2]).unwrap();
    loris.flush().unwrap();

    // While the loris dangles, a healthy client is served normally.
    let mut healthy = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();
    assert_eq!(healthy.classify(&windows[0]).unwrap(), expected[0]);

    // The loris must be reaped within the timeout (plus poll slack).
    let started = Instant::now();
    loop {
        let s = net.net_stats();
        if s.stalled_kills >= 1 {
            break;
        }
        assert!(
            started.elapsed() < read_timeout * 20 + Duration::from_secs(2),
            "stall guard never fired: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    assert_eq!(healthy.classify(&windows[1]).unwrap(), expected[1]);
    drop(healthy);
    drop(loris);
    let (_, net_stats) = net.shutdown();
    assert_eq!(net_stats.active, 0);
}

/// A hung backend ([`FaultKind::Hang`]) cannot take the wire down: a
/// request with a wire deadline comes back as a typed
/// `DeadlineExceeded` within its budget, and once the hang releases the
/// server serves bit-identically and shuts down clean.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn backend_hang_is_bounded_by_the_wire_deadline() {
    let params = params();
    let model = HdModel::random(&params, 0xC405);
    let windows = random_windows(&params, 3, 2, 0x9005);
    let expected = golden_verdicts(&model, &windows);

    let plan = FaultPlan::new().fault_at(0, FaultKind::Hang);
    let release = plan.hang_release();
    let backend = FaultBackend::new(FastBackend::try_with_threads(1).unwrap(), plan);
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    let net = NetServer::spawn(
        server,
        &[Endpoint::Tcp("127.0.0.1:0".into())],
        NetConfig::default(),
    )
    .unwrap();

    let mut client =
        NetClient::connect_tcp(net.tcp_addr().unwrap(), NetClientConfig::default()).unwrap();

    // The first classify lands on the hung call: its 150 ms wire
    // deadline must produce a typed error, promptly, while the backend
    // thread is still stuck.
    let deadline = Duration::from_millis(150);
    let started = Instant::now();
    let err = client
        .classify_with_deadline(&windows[0], deadline)
        .unwrap_err();
    assert!(matches!(err, NetError::DeadlineExceeded), "{err}");
    assert!(
        started.elapsed() < deadline + Duration::from_secs(2),
        "deadline enforcement took {:?}",
        started.elapsed()
    );

    // Release the hang: the server is healthy again, bit-identically.
    release.release();
    assert_eq!(client.classify(&windows[1]).unwrap(), expected[1]);

    drop(client);
    // Deadline enforcement here is the *reply path* (`wait_timeout` on
    // a ticket whose batch is stuck inside the hung worker) — the
    // triage-side `deadline_expired` counter is pinned separately in
    // net_serve.rs. What matters: no leak, clean shutdown.
    let (_, net_stats) = net.shutdown();
    assert_eq!(net_stats.active, 0);
}

/// A worker panic under a wire request surfaces as a typed error (or a
/// transparently retried success — the server retries lost batches),
/// never a client hang or a server crash; subsequent requests are
/// served bit-identically.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn worker_panic_over_the_wire_stays_typed() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0xC406);
    let windows = random_windows(&params, 3, 4, 0x9006);
    let expected = golden_verdicts(&model, &windows);

    let plan = FaultPlan::new().fault_at(0, FaultKind::Panic);
    let backend = FaultBackend::new(FastBackend::try_with_threads(1).unwrap(), plan);
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    let net = NetServer::spawn(
        server,
        &[Endpoint::Tcp("127.0.0.1:0".into())],
        NetConfig::default(),
    )
    .unwrap();

    let mut client =
        NetClient::connect_tcp(net.tcp_addr().unwrap(), NetClientConfig::default()).unwrap();

    // Call 0 panics inside the worker; the batcher's retry policy (2
    // retries by default) replays it on a respawned worker, so the
    // client sees either a clean verdict or a typed WorkerLost — never
    // a hang, never a dead server.
    match client.classify(&windows[0]) {
        Ok(v) => assert_eq!(v, expected[0]),
        Err(e) => assert!(
            matches!(e, NetError::WorkerLost(_) | NetError::Backend(_)),
            "{e}"
        ),
    }
    for (i, w) in windows.iter().enumerate().skip(1) {
        assert_eq!(client.classify(w).unwrap(), expected[i], "window {i}");
    }

    drop(client);
    let (stats, net_stats) = net.shutdown();
    assert!(stats.contained_panics >= 1);
    assert_eq!(net_stats.active, 0);
}

/// A peer that submits requests but never reads its replies fills the
/// kernel send buffer. The responder's write timeout must turn that
/// into a dead connection so graceful drain completes — instead of the
/// responder blocking forever mid-write, the reader wedging on the
/// bounded reply channel, and `shutdown` spinning on `active > 0`.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn non_reading_peer_cannot_wedge_drain() {
    let params = params();
    let model = HdModel::random(&params, 0xC408);
    let windows = random_windows(&params, 3, 1, 0x9008);

    let path = std::env::temp_dir().join(format!("pulp-hd-net-noread-{}.sock", std::process::id()));
    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    let net = NetServer::spawn(
        server,
        &[Endpoint::Uds(path.clone())],
        NetConfig {
            write_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        },
    )
    .unwrap();

    // The zombie peer: pump classify frames, read nothing. Its own
    // write timeout ends the pump once the server backpressures through
    // both socket buffers (reader blocked on the full reply channel).
    use std::io::Write;
    let mut peer = std::os::unix::net::UnixStream::connect(&path).unwrap();
    peer.set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let frame = pulp_hd_serve::net::proto::encode_request(
        1,
        &pulp_hd_serve::net::proto::Request::Classify {
            deadline_us: 0,
            window: windows[0].clone(),
        },
    );
    for _ in 0..20_000 {
        if peer.write_all(&frame).is_err() {
            break;
        }
    }

    // The peer's socket stays open (not reading is not the same as
    // gone) while the drain must still complete, bounded by the write
    // timeout — never by the peer deciding to read.
    let drain = std::thread::spawn(move || net.shutdown());
    let started = Instant::now();
    while !drain.is_finished() {
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "drain wedged behind a non-reading peer"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let (_, net_stats) = drain.join().unwrap();
    assert_eq!(net_stats.active, 0, "zombie connection leaked");
    drop(peer);
    assert!(!path.exists(), "socket file cleaned up");
}

/// A worker loss that escapes the server's own containment (batch retry
/// budget exhausted, per-window fallback panicked too) reaches the wire
/// as a typed `WorkerLost` fault — which the client treats as transient
/// and retries automatically, on the same connection, to a
/// bit-identical verdict.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn worker_lost_is_auto_retried_by_the_client() {
    silence_expected_panics();
    let params = params();
    let model = HdModel::random(&params, 0xC409);
    let windows = random_windows(&params, 3, 2, 0x9009);
    let expected = golden_verdicts(&model, &windows);

    // Call 0 is the first request's batch attempt, call 1 its
    // per-window fallback: panicking both — with the server's own retry
    // budget at zero — forces the WorkerLost onto the wire.
    let plan = FaultPlan::new()
        .fault_at(0, FaultKind::Panic)
        .fault_at(1, FaultKind::Panic);
    let backend = FaultBackend::new(FastBackend::try_with_threads(1).unwrap(), plan);
    let server = Server::spawn(
        &backend,
        &model,
        ServeConfig {
            worker_lost_retries: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let net = NetServer::spawn(
        server,
        &[Endpoint::Tcp("127.0.0.1:0".into())],
        NetConfig::default(),
    )
    .unwrap();

    let mut client =
        NetClient::connect_tcp(net.tcp_addr().unwrap(), NetClientConfig::default()).unwrap();
    // The client's retry budget (2 by default) absorbs the fault: the
    // caller sees only bit-identical verdicts.
    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);
    assert_eq!(client.classify(&windows[1]).unwrap(), expected[1]);

    drop(client);
    let (stats, net_stats) = net.shutdown();
    assert!(stats.contained_panics >= 2, "{}", stats.contained_panics);
    assert_eq!(
        net_stats.accepted, 1,
        "worker loss must not cost a reconnect"
    );
    assert!(
        net_stats.frames >= 3,
        "the retry must be a fresh request frame, got {}",
        net_stats.frames
    );
}

/// The full storm: several faulty clients (disconnects, garbage,
/// truncation on scripted ops) hammer the server alongside one healthy
/// client. The server survives, the healthy client's verdicts stay
/// bit-identical throughout, and shutdown finds zero active
/// connections.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn fault_storm_never_perturbs_healthy_clients() {
    let params = params();
    let model = HdModel::random(&params, 0xC407);
    let windows = random_windows(&params, 3, 6, 0x9007);
    let expected = golden_verdicts(&model, &windows);

    let net = spawn_tcp(&model, NetConfig::default());
    let addr = net.tcp_addr().unwrap();

    let storm: Vec<std::thread::JoinHandle<()>> = (0..3)
        .map(|k| {
            let windows = windows.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let fault = match k {
                    0 => TransportFault::Disconnect,
                    1 => TransportFault::Garbage,
                    _ => TransportFault::Truncate,
                };
                // Fault a different early op per client; later ops are
                // clean so every client must converge to correct
                // verdicts through retries.
                let plan = TransportPlan::new(0x5708 + k)
                    .fault_write(k, fault)
                    .fault_read(k + 1, fault);
                let mut client = faulty_client(addr, plan, NetClientConfig::default());
                for (i, w) in windows.iter().enumerate() {
                    match client.classify(w) {
                        Ok(v) => assert_eq!(v, expected[i], "storm {k} window {i}"),
                        // A fault can land as a non-retryable typed
                        // error (e.g. the server killed the scrambled
                        // connection faster than the retry); what it
                        // must never be is a panic or a hang.
                        Err(e) => assert!(
                            matches!(
                                e,
                                NetError::Io(_)
                                    | NetError::Timeout
                                    | NetError::Protocol(_)
                                    | NetError::WorkerLost(_)
                            ),
                            "storm {k} window {i}: {e}"
                        ),
                    }
                }
            })
        })
        .collect();

    let mut healthy = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();
    for round in 0..4 {
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(
                healthy.classify(w).unwrap(),
                expected[i],
                "healthy round {round} window {i}"
            );
        }
    }
    for handle in storm {
        handle.join().unwrap();
    }

    drop(healthy);
    let (_, net_stats) = net.shutdown();
    assert_eq!(net_stats.active, 0, "storm leaked connections");
}

/// `FaultTransport` clones share fault state: a stream cloned for the
/// reply path sees the same op counters, so scripted faults fire once
/// across both halves (the invariant the server's reader/responder
/// split depends on).
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn fault_transport_clones_share_state() {
    use std::io::{Read, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let echo = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        while let Ok(()) = s.read_exact(&mut buf) {
            if s.write_all(&buf).is_err() {
                break;
            }
        }
    });

    let stream = TcpStream::connect(addr).unwrap();
    let plan = TransportPlan::new(0xC10E).fault_write(1, TransportFault::Disconnect);
    let mut a = FaultTransport::new(stream, plan);
    let mut b = a.try_clone_stream().unwrap();

    // Write 0 through clone `a` is clean; write 1 through clone `b`
    // must hit the shared fault even though `b` never wrote before.
    a.write_all(&[1, 2, 3, 4]).unwrap();
    a.flush().unwrap();
    let mut buf = [0u8; 4];
    a.read_exact(&mut buf).unwrap();
    assert_eq!(buf, [1, 2, 3, 4]);
    assert!(
        b.write_all(&[5, 6, 7, 8]).and_then(|()| b.flush()).is_err()
            || b.read_exact(&mut buf).is_err(),
        "shared op counter missed the scripted fault"
    );
    drop(a);
    drop(b);
    echo.join().unwrap();
}
