//! Functional pinning of the wire front-end: verdicts served over TCP
//! and UDS are bit-identical to direct `session.classify`, the `Stats`
//! and `Health` commands round-trip the full `ServerStats` (shard
//! health included), hostile frames get typed rejections that kill only
//! their own connection, and shutdown drains gracefully.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hdc::rng::Xoshiro256PlusPlus;
use pulp_hd_core::backend::{
    ExecutionBackend, FastBackend, GoldenBackend, HdModel, ShardSpec, ShardedBackend, Verdict,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_serve::net::{
    proto, Endpoint, ErrorCode, NetClient, NetClientConfig, NetConfig, NetError, NetServer,
};
use pulp_hd_serve::{ServeConfig, Server};

fn params() -> AccelParams {
    AccelParams {
        n_words: 16,
        ngram: 2,
        ..AccelParams::emg_default()
    }
}

fn random_windows(
    params: &AccelParams,
    samples: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Vec<u16>>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..samples)
                .map(|_| {
                    (0..params.channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn golden_verdicts(model: &HdModel, windows: &[Vec<Vec<u16>>]) -> Vec<Verdict> {
    let mut direct = GoldenBackend.prepare(model).unwrap();
    direct.classify_batch(windows).unwrap()
}

fn uds_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pulp-hd-{tag}-{}.sock", std::process::id()))
}

fn spawn_net(model: &HdModel, endpoints: &[Endpoint]) -> NetServer {
    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, model, ServeConfig::default()).unwrap();
    NetServer::spawn(server, endpoints, NetConfig::default()).unwrap()
}

/// The tentpole pin: verdicts served over the wire — TCP and UDS, one
/// at a time and batched — are bit-identical (class, distances, query
/// hypervector, source) to a direct session classify on the exact path.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn wire_verdicts_bit_identical_over_tcp_and_uds() {
    let params = params();
    let model = HdModel::random(&params, 0x4E7A);
    let windows = random_windows(&params, 3, 8, 0x11AA);
    let expected = golden_verdicts(&model, &windows);

    let path = uds_path("net-serve");
    let net = spawn_net(
        &model,
        &[
            Endpoint::Tcp("127.0.0.1:0".into()),
            Endpoint::Uds(path.clone()),
        ],
    );

    let mut tcp =
        NetClient::connect_tcp(net.tcp_addr().unwrap(), NetClientConfig::default()).unwrap();
    let mut uds = NetClient::connect_uds(&path, NetClientConfig::default()).unwrap();
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(tcp.classify(w).unwrap(), expected[i], "tcp window {i}");
        assert_eq!(uds.classify(w).unwrap(), expected[i], "uds window {i}");
    }
    let batched = tcp.classify_batch(&windows).unwrap();
    assert_eq!(batched.len(), expected.len());
    for (i, item) in batched.into_iter().enumerate() {
        assert_eq!(item.unwrap(), expected[i], "tcp batched window {i}");
    }

    drop(tcp);
    drop(uds);
    let (stats, net_stats) = net.shutdown();
    // 2 × 8 singles + one 8-window batch.
    assert_eq!(stats.completed, 24);
    assert_eq!(net_stats.accepted, 2);
    assert_eq!(net_stats.active, 0, "no leaked connections");
    assert!(!path.exists(), "socket file cleaned up");
}

/// `Stats` and `Health` round-trip the *full* `ServerStats` over the
/// wire — shard telemetry and health included — so a load balancer
/// sees exactly what an in-process caller sees.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn stats_and_health_round_trip_shard_telemetry() {
    let params = params();
    let model = HdModel::random(&params, 0x4E7B);
    let windows = random_windows(&params, 3, 6, 0x22BB);

    let backend = ShardedBackend::new(
        FastBackend::try_with_threads(1).unwrap(),
        ShardSpec::Batch(2),
    )
    .unwrap();
    let session = backend.prepare_sharded(&model).unwrap();
    let monitor = session.monitor();
    let server = Server::from_session(Box::new(session), ServeConfig::default())
        .unwrap()
        .with_shard_monitor(monitor);
    let net = NetServer::spawn(
        server,
        &[Endpoint::Tcp("127.0.0.1:0".into())],
        NetConfig::default(),
    )
    .unwrap();

    let mut client =
        NetClient::connect_tcp(net.tcp_addr().unwrap(), NetClientConfig::default()).unwrap();
    for w in &windows {
        client.classify(w).unwrap();
    }

    let wire = client.stats().unwrap();
    let local = net.server_stats();
    // Identical except the two time-sensitive fields (snapshotted at
    // different instants).
    assert_eq!(wire.completed, local.completed);
    assert_eq!(wire.batches, local.batches);
    assert_eq!(wire.p50_us, local.p50_us);
    assert_eq!(wire.p99_us, local.p99_us);
    assert_eq!(wire.latency_max_us, local.latency_max_us);
    assert_eq!(wire.shard_windows, local.shard_windows);
    assert_eq!(wire.shard_healthy, vec![true, true]);
    assert_eq!(wire.cache_hits, local.cache_hits);
    assert_eq!(wire.completed, windows.len() as u64);
    assert_eq!(wire.shard_windows.len(), 2);

    let health = client.health().unwrap();
    assert!(health.serving);
    assert_eq!(health.shard_healthy, vec![true, true]);

    drop(client);
    let _ = net.shutdown();
}

/// A frame whose declared payload exceeds the server's cap gets a typed
/// `TooLarge` rejection and the connection is closed — while the server
/// keeps serving other clients.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn oversized_frames_rejected_typed() {
    let params = params();
    let model = HdModel::random(&params, 0x4E7C);
    let windows = random_windows(&params, 3, 2, 0x33CC);
    let expected = golden_verdicts(&model, &windows);

    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    let net = NetServer::spawn(
        server,
        &[Endpoint::Tcp("127.0.0.1:0".into())],
        NetConfig {
            max_frame: 1024,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = net.tcp_addr().unwrap();

    // Hand-rolled attacker: a header claiming a 16 MiB payload.
    let mut raw = TcpStream::connect(addr).unwrap();
    let huge = proto::frame(proto::kind::CLASSIFY, 42, &[]);
    let mut bytes = huge.clone();
    bytes[16..20].copy_from_slice(&(16u32 * 1024 * 1024).to_le_bytes());
    raw.write_all(&bytes).unwrap();
    raw.flush().unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap(); // server closes after the error
    let header = proto::decode_header(&response, 1024).unwrap();
    assert_eq!(header.kind, proto::kind::R_ERROR);
    match proto::decode_response(&header, &response[proto::HEADER_LEN..]).unwrap() {
        proto::Response::Error(fault) => assert_eq!(fault.code, ErrorCode::TooLarge),
        other => panic!("expected error frame, got {other:?}"),
    }

    // A healthy client on a fresh connection is untouched.
    let mut client = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();
    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);

    drop(client);
    let (_, net_stats) = net.shutdown();
    assert_eq!(net_stats.malformed, 1);
}

/// Garbage bytes kill only the offending connection: the server answers
/// with a typed `Malformed` error (or just closes), and a concurrent
/// healthy client keeps getting bit-identical verdicts.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn garbage_frames_kill_only_their_connection() {
    let params = params();
    let model = HdModel::random(&params, 0x4E7D);
    let windows = random_windows(&params, 3, 4, 0x44DD);
    let expected = golden_verdicts(&model, &windows);

    let net = spawn_net(&model, &[Endpoint::Tcp("127.0.0.1:0".into())]);
    let addr = net.tcp_addr().unwrap();

    let mut healthy = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();
    assert_eq!(healthy.classify(&windows[0]).unwrap(), expected[0]);

    // Attacker: 64 bytes of non-protocol garbage.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xA5u8; 64]).unwrap();
    raw.flush().unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    if !response.is_empty() {
        let header = proto::decode_header(&response, proto::DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(header.kind, proto::kind::R_ERROR);
    }

    // The healthy connection never noticed.
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(healthy.classify(w).unwrap(), expected[i], "window {i}");
    }
    drop(healthy);
    let (_, net_stats) = net.shutdown();
    assert!(net_stats.malformed >= 1);
    assert_eq!(net_stats.active, 0);
}

/// A per-request wire deadline reaches the batcher's triage: a request
/// stuck behind a queue that cannot drain in time comes back as
/// `DeadlineExceeded`, not served late — and the deadline of one
/// request does not leak onto others.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn wire_deadline_propagates_to_triage() {
    let params = params();
    let model = HdModel::random(&params, 0x4E7E);
    let windows = random_windows(&params, 3, 2, 0x55EE);
    let expected = golden_verdicts(&model, &windows);

    let net = spawn_net(&model, &[Endpoint::Tcp("127.0.0.1:0".into())]);
    let addr = net.tcp_addr().unwrap();
    let mut client = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();

    // An already-expired deadline (1 µs): by the time the batch forms,
    // triage sheds it with the typed error.
    let err = client
        .classify_with_deadline(&windows[0], Duration::from_micros(1))
        .unwrap_err();
    assert!(matches!(err, NetError::DeadlineExceeded), "{err}");
    // A roomy deadline serves normally, bit-identically.
    assert_eq!(
        client
            .classify_with_deadline(&windows[1], Duration::from_secs(5))
            .unwrap(),
        expected[1]
    );

    drop(client);
    let (stats, _) = net.shutdown();
    assert!(stats.deadline_expired >= 1);
}

/// Graceful drain: after `shutdown` begins, held connections get a
/// go-away and new connects are refused — but everything accepted
/// before the drain was answered.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn shutdown_drains_and_refuses_new_work() {
    let params = params();
    let model = HdModel::random(&params, 0x4E7F);
    let windows = random_windows(&params, 3, 4, 0x66FF);
    let expected = golden_verdicts(&model, &windows);

    let net = spawn_net(&model, &[Endpoint::Tcp("127.0.0.1:0".into())]);
    let addr = net.tcp_addr().unwrap();

    let mut client = NetClient::connect_tcp(addr, NetClientConfig::default()).unwrap();
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(client.classify(w).unwrap(), expected[i]);
    }

    let (stats, net_stats) = net.shutdown();
    assert_eq!(stats.completed, windows.len() as u64);
    assert_eq!(net_stats.active, 0);

    // The listener is gone: new connections are refused outright, and
    // the held client's next request fails with a typed error, not a
    // hang.
    assert!(NetClient::connect_tcp(addr, NetClientConfig::default()).is_err());
    let err = client
        .classify(&windows[0])
        .expect_err("request after shutdown must fail");
    assert!(
        matches!(err, NetError::Closed | NetError::Io(_) | NetError::Timeout),
        "{err}"
    );
}

/// UDS binding only ever unlinks *stale socket files*: a regular file
/// at the path survives (the bind fails instead), a path a live server
/// answers on is an error rather than a silent theft, and a socket
/// left behind by a dead server is reclaimed.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn uds_bind_never_steals_files_or_live_sockets() {
    let params = params();
    let model = HdModel::random(&params, 0x4E81);
    let windows = random_windows(&params, 3, 1, 0x88AC);
    let expected = golden_verdicts(&model, &windows);

    // A regular file at the path: the spawn fails and the file (and its
    // contents) are untouched.
    let file_path = uds_path("net-uds-file");
    std::fs::write(&file_path, b"precious").unwrap();
    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    assert!(
        NetServer::spawn(
            server,
            &[Endpoint::Uds(file_path.clone())],
            NetConfig::default()
        )
        .is_err(),
        "bind over a regular file must fail"
    );
    assert_eq!(std::fs::read(&file_path).unwrap(), b"precious");
    std::fs::remove_file(&file_path).unwrap();

    // A live server's socket: a second spawn on the same path fails,
    // and the first keeps serving through it.
    let live_path = uds_path("net-uds-live");
    let net = spawn_net(&model, &[Endpoint::Uds(live_path.clone())]);
    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    assert!(
        NetServer::spawn(
            server,
            &[Endpoint::Uds(live_path.clone())],
            NetConfig::default()
        )
        .is_err(),
        "bind over a live server's socket must fail"
    );
    let mut client = NetClient::connect_uds(&live_path, NetClientConfig::default()).unwrap();
    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);
    drop(client);
    let _ = net.shutdown();

    // A stale socket (its listener is gone, nobody answers): reclaimed.
    let stale_path = uds_path("net-uds-stale");
    drop(std::os::unix::net::UnixListener::bind(&stale_path).unwrap());
    assert!(stale_path.exists(), "dropping a listener leaves the file");
    let net = spawn_net(&model, &[Endpoint::Uds(stale_path.clone())]);
    let mut client = NetClient::connect_uds(&stale_path, NetClientConfig::default()).unwrap();
    assert_eq!(client.classify(&windows[0]).unwrap(), expected[0]);
    drop(client);
    let _ = net.shutdown();
    assert!(!stale_path.exists(), "socket file cleaned up on shutdown");
}

/// The per-connection in-flight window backpressures: a burst larger
/// than the window sheds the excess with typed `Overloaded` per-window
/// errors while everything inside the window is served bit-identically.
#[test]
#[cfg_attr(miri, ignore = "real sockets")]
fn inflight_window_sheds_with_typed_overload() {
    let params = params();
    let model = HdModel::random(&params, 0x4E80);
    let windows = random_windows(&params, 3, 6, 0x77AB);

    let backend = FastBackend::try_with_threads(1).unwrap();
    let server = Server::spawn(&backend, &model, ServeConfig::default()).unwrap();
    let net = NetServer::spawn(
        server,
        &[Endpoint::Tcp("127.0.0.1:0".into())],
        NetConfig {
            inflight_window: 4,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut client =
        NetClient::connect_tcp(net.tcp_addr().unwrap(), NetClientConfig::default()).unwrap();

    // A 6-window batch against a 4-slot window: rejected whole (the
    // batch cannot fit), typed.
    let err = client.classify_batch(&windows).unwrap_err();
    assert!(matches!(err, NetError::Overloaded), "{err}");
    // A batch that fits is served.
    let ok = client.classify_batch(&windows[..4]).unwrap();
    assert!(ok.into_iter().all(|r| r.is_ok()));

    drop(client);
    let (_, net_stats) = net.shutdown();
    assert!(net_stats.wire_overloaded >= 1);
}
