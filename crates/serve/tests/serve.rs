//! End-to-end tests of the serving front-end: determinism against a
//! direct session, concurrent clients, backpressure, graceful shutdown,
//! per-request error isolation, and telemetry sanity.

use std::sync::mpsc::channel;
use std::time::Duration;

use hdc::rng::Xoshiro256PlusPlus;
use pulp_hd_core::backend::{
    ApproxPolicy, ExecutionBackend, FastBackend, FaultBackend, FaultKind, FaultPlan, GoldenBackend,
    HdModel, ScanPolicy, ShardSpec, ShardedBackend, TrainSpec, TrainableBackend,
};
use pulp_hd_core::layout::AccelParams;
use pulp_hd_serve::{ServeConfig, ServeError, Server, TrySubmitError};

fn params() -> AccelParams {
    AccelParams {
        n_words: 16,
        ngram: 2,
        ..AccelParams::emg_default()
    }
}

fn random_windows(
    params: &AccelParams,
    samples: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<Vec<u16>>> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..samples)
                .map(|_| {
                    (0..params.channels)
                        .map(|_| (rng.next_u32() & 0xffff) as u16)
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// The acceptance property: every verdict that comes back through the
/// server — across concurrent clients, interleaved batches, both
/// backends — is bit-identical to a direct `session.classify` of the
/// same window.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn served_verdicts_are_bit_identical_to_direct_classification() {
    let params = params();
    let model = HdModel::random(&params, 0x5E12);
    let windows = random_windows(&params, 3, 48, 0xFEED);
    let mut direct = GoldenBackend.prepare(&model).unwrap();
    let expected: Vec<_> = windows
        .iter()
        .map(|w| direct.classify(w).unwrap())
        .collect();

    for backend in [
        FastBackend::try_with_threads(1),
        FastBackend::try_with_threads(4),
    ] {
        let server = Server::spawn(
            &backend.unwrap(),
            &model,
            ServeConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(2),
                queue_depth: 64,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        // 4 concurrent clients, each submitting a strided quarter of the
        // windows; results come back tagged so order does not matter.
        let (results_tx, results_rx) = channel();
        std::thread::scope(|scope| {
            for lane in 0..4usize {
                let client = server.client();
                let results = results_tx.clone();
                let windows = &windows;
                scope.spawn(move || {
                    for (i, w) in windows.iter().enumerate().skip(lane).step_by(4) {
                        let verdict = client.classify(w).unwrap();
                        results.send((i, verdict)).unwrap();
                    }
                });
            }
        });
        drop(results_tx);
        let mut seen = 0;
        for (i, verdict) in results_rx.iter() {
            assert_eq!(verdict, expected[i], "window {i}");
            seen += 1;
        }
        assert_eq!(seen, windows.len());
        let stats = server.shutdown();
        assert_eq!(stats.completed, windows.len() as u64);
        assert!(stats.batches <= windows.len() as u64);
        assert!(stats.p50_us <= stats.p99_us);
    }
}

/// Queued submissions actually coalesce into multi-window batches (the
/// whole point of the micro-batcher).
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn queued_requests_coalesce_into_batches() {
    let params = params();
    let model = HdModel::random(&params, 3);
    let server = Server::spawn(
        &FastBackend::try_with_threads(1).unwrap(),
        &model,
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(200),
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let windows = random_windows(&params, 2, 32, 9);
    // Fire-and-collect: all 32 tickets outstanding at once, so the
    // 200 ms fill window sweeps them into very few batches.
    let tickets: Vec<_> = windows
        .iter()
        .map(|w| client.submit(w.clone()).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 32);
    assert!(
        stats.batches <= 3,
        "32 simultaneous requests should form at most a few batches, got {}",
        stats.batches
    );
    assert!(stats.mean_batch >= 8.0, "mean batch {}", stats.mean_batch);
}

/// Backpressure: when the bounded queue is full, `try_submit` sheds
/// load with `Overloaded` (and counts it) instead of blocking.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn overload_surfaces_as_try_submit_rejection() {
    let params = params();
    let model = HdModel::random(&params, 4);
    let server = Server::spawn(
        &FastBackend::try_with_threads(1).unwrap(),
        &model,
        ServeConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    // A slow request (long window) occupies the batcher; once it and
    // the single queue slot are taken, a burst must hit `Overloaded`.
    let slow = random_windows(&params, 4_000, 1, 5).remove(0);
    let fast_windows = random_windows(&params, 2, 1, 6);
    let slow_ticket = client.submit(slow).unwrap();
    let mut accepted = Vec::new();
    let mut rejections = 0u64;
    for _ in 0..10_000 {
        match client.try_submit(fast_windows[0].clone()) {
            Ok(t) => accepted.push(t),
            Err(TrySubmitError::Overloaded) => {
                rejections += 1;
                if !accepted.is_empty() {
                    break;
                }
            }
            Err(TrySubmitError::Closed) => panic!("server closed early"),
        }
    }
    assert!(rejections > 0, "bounded queue never reported Overloaded");
    slow_ticket.wait().unwrap();
    for t in accepted {
        t.wait().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected, rejections);
}

/// Graceful shutdown serves every accepted ticket before the batcher
/// exits, and only new submissions observe `Closed`.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn shutdown_drains_outstanding_tickets() {
    let params = params();
    let model = HdModel::random(&params, 5);
    let server = Server::spawn(
        &FastBackend::try_with_threads(2).unwrap(),
        &model,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(50),
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let windows = random_windows(&params, 2, 20, 7);
    let tickets: Vec<_> = windows
        .iter()
        .map(|w| client.submit(w.clone()).unwrap())
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats.completed, 20, "shutdown must drain accepted work");
    for (i, ticket) in tickets.into_iter().enumerate() {
        ticket.wait().unwrap_or_else(|e| panic!("ticket {i}: {e}"));
    }
    // The server is gone: new submissions fail cleanly.
    assert!(matches!(
        client.submit(windows[0].clone()),
        Err(ServeError::Closed)
    ));
    assert!(matches!(
        client.try_submit(windows[0].clone()),
        Err(TrySubmitError::Closed)
    ));
    assert!(matches!(
        client.classify(&windows[0]),
        Err(ServeError::Closed)
    ));
}

/// A malformed window poisons only its own ticket: everyone else in the
/// same batch still gets a bit-exact verdict.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn per_request_errors_do_not_poison_the_batch() {
    let params = params();
    let model = HdModel::random(&params, 6);
    let mut direct = GoldenBackend.prepare(&model).unwrap();
    let server = Server::spawn(
        &FastBackend::try_with_threads(2).unwrap(),
        &model,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(100),
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let good = random_windows(&params, 2, 4, 8);
    let bad = vec![vec![0u16; params.channels + 1]; 2]; // wrong channel count
    let t0 = client.submit(good[0].clone()).unwrap();
    let t_bad = client.submit(bad).unwrap();
    let t1 = client.submit(good[1].clone()).unwrap();
    assert_eq!(t0.wait().unwrap(), direct.classify(&good[0]).unwrap());
    assert!(matches!(t_bad.wait(), Err(ServeError::Backend(_))));
    assert_eq!(t1.wait().unwrap(), direct.classify(&good[1]).unwrap());
    let stats = server.shutdown();
    assert_eq!(
        stats.completed, 3,
        "errored requests still count as answered"
    );
}

/// The train → serve hand-off: `Server::from_training` serves the
/// just-trained model bit-identically to a directly prepared session.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn from_training_serves_the_trained_model() {
    let params = params();
    let spec = TrainSpec::random(&params, 0x2EA1);
    let windows = random_windows(&params, 3, 24, 0x11);
    let labels: Vec<usize> = (0..24).map(|i| i % params.classes).collect();

    let mut trainer = FastBackend::try_with_threads(2)
        .unwrap()
        .begin_training(&spec)
        .unwrap();
    trainer.train_batch(&windows, &labels).unwrap();
    let model = trainer.finalize().unwrap();
    let server = Server::from_training(trainer, ServeConfig::default()).unwrap();

    let mut direct = GoldenBackend.prepare(&model).unwrap();
    let client = server.client();
    let probes = random_windows(&params, 3, 8, 0x12);
    for (i, probe) in probes.iter().enumerate() {
        assert_eq!(
            client.classify(probe).unwrap(),
            direct.classify(probe).unwrap(),
            "probe {i}"
        );
    }
    let _ = server.shutdown();
}

/// `wait_timeout` returns `Ok(None)` on expiry and a verdict when the
/// answer arrives in time.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn ticket_wait_timeout_behaves() {
    let params = params();
    let model = HdModel::random(&params, 10);
    let server = Server::spawn(
        &FastBackend::try_with_threads(1).unwrap(),
        &model,
        ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            queue_depth: 8,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let w = random_windows(&params, 2, 1, 13).remove(0);
    let t = client.submit(w.clone()).unwrap();
    assert!(t.wait_timeout(Duration::from_secs(10)).unwrap().is_some());
    // A slow request cannot finish in zero time.
    let slow = random_windows(&params, 4_000, 1, 14).remove(0);
    let t = client.submit(slow).unwrap();
    assert!(t.wait_timeout(Duration::ZERO).unwrap().is_none());
    let _ = server.shutdown();
}

/// A per-request deadline overrides the config-wide one and is
/// enforced by batch triage: a request stuck behind a slow batch past
/// its own (tight) deadline resolves as [`ServeError::DeadlineExceeded`]
/// and is counted, while a no-deadline request behind the same slow
/// batch is served normally.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn per_request_deadline_overrides_and_is_triaged() {
    let params = params();
    let model = HdModel::random(&params, 21);
    // Call 0 (request A's batch) sleeps 50 ms, pinning the batcher so
    // the next two submissions queue behind it.
    let backend = FaultBackend::new(
        FastBackend::try_with_threads(1).unwrap(),
        FaultPlan::new().fault_at(0, FaultKind::Delay(Duration::from_millis(50))),
    );
    let server = Server::spawn(
        &backend,
        &model,
        ServeConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
            queue_depth: 8,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = server.client();
    let windows = random_windows(&params, 2, 3, 22);

    let slow = client.submit(windows[0].clone()).unwrap();
    let tight = client
        .submit_with_deadline(windows[1].clone(), Some(Duration::from_millis(5)))
        .unwrap();
    let patient = client.submit(windows[2].clone()).unwrap();

    assert!(slow.wait().is_ok(), "the delayed batch itself still serves");
    assert!(
        matches!(tight.wait(), Err(ServeError::DeadlineExceeded)),
        "5 ms deadline behind a 50 ms batch must be shed at triage"
    );
    assert!(patient.wait().is_ok(), "no-deadline sibling is unaffected");

    let stats = server.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    // Every resolved ticket — including the shed one — contributes a
    // latency sample, so `completed` counts all three.
    assert_eq!(stats.completed, 3);
}

/// Invalid configurations are rejected up front — through every
/// constructor, including the `try_` twins: a zero `max_batch` or
/// `queue_depth` must come back as [`ServeError::Config`], never panic
/// after a thread exists.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn invalid_configs_are_rejected() {
    let params = params();
    let model = HdModel::random(&params, 11);
    for config in [
        ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        },
    ] {
        assert!(matches!(
            Server::spawn(&GoldenBackend, &model, config),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            Server::try_spawn(&GoldenBackend, &model, config),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            Server::try_from_session(GoldenBackend.prepare(&model).unwrap(), config),
            Err(ServeError::Config(_))
        ));
    }
    // The twins accept what the originals accept.
    let server = Server::try_spawn(&GoldenBackend, &model, ServeConfig::default()).unwrap();
    let _ = server.shutdown();
}

/// Serving a sharded session through `from_session` unchanged: verdicts
/// stay bit-identical to a direct golden session under both sharding
/// strategies, and a registered `ShardMonitor` surfaces per-shard
/// window counts in the server stats.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn sharded_sessions_serve_bit_identical_with_per_shard_stats() {
    let params = params();
    let model = HdModel::random(&params, 0x54A2);
    let windows = random_windows(&params, 3, 32, 0xD1CE);
    let mut direct = GoldenBackend.prepare(&model).unwrap();
    let expected: Vec<_> = windows
        .iter()
        .map(|w| direct.classify(w).unwrap())
        .collect();

    for spec in [ShardSpec::Batch(2), ShardSpec::Class(2)] {
        let backend = ShardedBackend::new(FastBackend::try_with_threads(1).unwrap(), spec).unwrap();
        let session = backend.prepare_sharded(&model).unwrap();
        let shards = session.shards();
        let monitor = session.monitor();
        let server = Server::from_session(
            Box::new(session),
            ServeConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(2),
                queue_depth: 64,
                ..ServeConfig::default()
            },
        )
        .unwrap()
        .with_shard_monitor(monitor);
        let client = server.client();
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(
                client.classify(w).unwrap(),
                expected[i],
                "{spec:?} window {i}"
            );
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, windows.len() as u64);
        assert_eq!(stats.shard_windows.len(), shards, "{spec:?}");
        match spec {
            // Solo closed-loop traffic never fans out, so shard 0
            // absorbs everything…
            ShardSpec::Batch(_) => {
                assert_eq!(
                    stats.shard_windows.iter().sum::<u64>(),
                    windows.len() as u64,
                    "{spec:?}: {:?}",
                    stats.shard_windows
                );
            }
            // …while class shards each scan every window regardless.
            ShardSpec::Class(_) => {
                assert_eq!(
                    stats.shard_windows,
                    vec![windows.len() as u64; shards],
                    "{spec:?}"
                );
            }
        }
    }
}

/// An unsharded server reports no per-shard counters.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn unsharded_stats_have_no_shard_windows() {
    let params = params();
    let model = HdModel::random(&params, 12);
    let server = Server::spawn(
        &FastBackend::try_with_threads(1).unwrap(),
        &model,
        ServeConfig::default(),
    )
    .unwrap();
    assert!(server.stats().shard_windows.is_empty());
    let _ = server.shutdown();
}

/// The engine knobs pass through `Server::spawn`: an exact config stays
/// bit-identical to direct classification, a caching config replays the
/// same verdicts and surfaces its counters in `ServerStats`, and a
/// backend that cannot realize a non-default knob rejects it at spawn.
#[test]
#[cfg_attr(miri, ignore = "OS threads and wall-clock deadlines")]
fn approx_config_passes_through_to_the_backend() {
    let params = params();
    let model = HdModel::random(&params, 0xCAFE);
    let pool = random_windows(&params, 3, 6, 0xAB);
    // A repeated-window stream: plenty of cache hits.
    let stream: Vec<_> = (0..30).map(|i| pool[i % pool.len()].clone()).collect();
    let mut direct = GoldenBackend.prepare(&model).unwrap();
    let expected: Vec<_> = stream.iter().map(|w| direct.classify(w).unwrap()).collect();

    // Explicit Exact through the tuned path: still bit-identical.
    let exact = Server::spawn(
        &FastBackend::try_with_threads(1).unwrap(),
        &model,
        ServeConfig {
            scan: ScanPolicy::Full,
            approx: ApproxPolicy::Exact,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = exact.client();
    for (i, w) in stream.iter().enumerate() {
        assert_eq!(client.classify(w).unwrap(), expected[i], "window {i}");
    }
    let stats = exact.shutdown();
    assert_eq!(stats.cache_hits, 0, "exact sessions carry no cache");
    assert_eq!(stats.cache_misses, 0);

    // A caching policy: identical classes/distances (the cache replays
    // full verdicts), live hit/miss counters in the stats.
    let cached = Server::spawn(
        &FastBackend::try_with_threads(1).unwrap(),
        &model,
        ServeConfig {
            approx: ApproxPolicy::Cached { capacity: 16 },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let client = cached.client();
    for (i, w) in stream.iter().enumerate() {
        let verdict = client.classify(w).unwrap();
        assert_eq!(verdict.class, expected[i].class, "window {i}");
        assert_eq!(verdict.distances, expected[i].distances, "window {i}");
        assert_eq!(verdict.query, expected[i].query, "window {i}");
    }
    let stats = cached.shutdown();
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stream.len() as u64,
        "every window is a hit or a miss"
    );
    assert!(stats.cache_hits >= (stream.len() - pool.len()) as u64);

    // The golden backend has no approximate rungs: non-default knobs
    // are rejected at spawn time, not silently ignored.
    assert!(matches!(
        Server::spawn(
            &GoldenBackend,
            &model,
            ServeConfig {
                approx: ApproxPolicy::Threshold { tau: 0.2 },
                ..ServeConfig::default()
            },
        ),
        Err(ServeError::Backend(_))
    ));
}
