//! Lock-free serving telemetry: a log-linear latency histogram plus
//! batch-shape counters, all plain atomics.
//!
//! The recorder has exactly one latency/batch writer (the batcher
//! thread) and any number of readers ([`ServerStats`] snapshots from
//! client threads), plus concurrent rejection counting from clients
//! hitting backpressure — so every cell is an [`AtomicU64`] with
//! relaxed ordering and no cell is ever read-modify-written from two
//! places in a way that could lose more than a momentarily-torn
//! snapshot. Percentiles come from an HdrHistogram-style log-linear
//! bucket array: 8 linear sub-buckets per power-of-two octave, i.e. a
//! worst-case relative error of 12.5% on reported quantiles, which is
//! plenty to enforce a latency bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave.
const SUBS: usize = 8;
/// Octaves above the exact range; the top bucket saturates at
/// ~2^31 µs ≈ 36 min, far beyond any sane request latency.
const OCTAVES: usize = 28;
/// Total bucket count: values `0..SUBS` exactly, then `SUBS` linear
/// sub-buckets per octave.
const BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// Histogram bucket index of a microsecond value (log-linear).
fn bucket(us: u64) -> usize {
    if us < SUBS as u64 {
        return us as usize;
    }
    let msb = 63 - us.leading_zeros() as usize; // ≥ 3 here
    let octave = msb - 3;
    let sub = ((us >> (msb - 3)) & 7) as usize;
    (SUBS + octave * SUBS + sub).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket, in microseconds — the value a
/// percentile query reports for samples landing in it.
fn upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx - SUBS) / SUBS;
    let sub = ((idx - SUBS) % SUBS) as u64;
    ((SUBS as u64 + sub + 1) << octave) - 1
}

/// The shared, lock-free recorder behind a running server.
#[derive(Debug)]
pub(crate) struct Recorder {
    latency: [AtomicU64; BUCKETS],
    completed: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_max_us: AtomicU64,
    batches: AtomicU64,
    service_sum_us: AtomicU64,
    service_max_us: AtomicU64,
    rejected: AtomicU64,
    deadline_expired: AtomicU64,
    retried_batches: AtomicU64,
    contained_panics: AtomicU64,
}

impl Recorder {
    pub(crate) fn new() -> Self {
        Self {
            latency: [const { AtomicU64::new(0) }; BUCKETS],
            completed: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_max_us: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            service_sum_us: AtomicU64::new(0),
            service_max_us: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            retried_batches: AtomicU64::new(0),
            contained_panics: AtomicU64::new(0),
        }
    }

    /// Records one completed request's queue-to-verdict latency
    /// (batcher thread only).
    pub(crate) fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        // ORDERING: Relaxed throughout the recorder — these are
        // monotone telemetry counters with no reader that makes control
        // decisions from them; snapshots tolerate torn cross-counter
        // views (documented on `snapshot`), so no ordering is needed.
        self.latency[bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one served batch and its service (classification) time
    /// (batcher thread only).
    pub(crate) fn record_batch(&self, service: Duration) {
        let us = service.as_micros().min(u128::from(u64::MAX)) as u64;
        // ORDERING: Relaxed telemetry, as in `record_latency`.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.service_sum_us.fetch_add(us, Ordering::Relaxed);
        self.service_max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Counts one submission rejected with `Overloaded` (any client
    /// thread).
    pub(crate) fn record_rejected(&self) {
        // ORDERING: Relaxed telemetry, as in `record_latency`.
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request resolved with
    /// [`DeadlineExceeded`](crate::ServeError::DeadlineExceeded) instead
    /// of occupying a batch slot (batcher thread only).
    pub(crate) fn record_deadline_expired(&self) {
        // ORDERING: Relaxed telemetry, as in `record_latency`.
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one batch retry after a worker-loss failure (batcher
    /// thread only).
    pub(crate) fn record_retried_batch(&self) {
        // ORDERING: Relaxed telemetry, as in `record_latency`.
        self.retried_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one backend panic contained on the batcher thread
    /// (batcher thread only).
    pub(crate) fn record_contained_panic(&self) {
        // ORDERING: Relaxed telemetry, as in `record_latency`.
        self.contained_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (single pass over the counters;
    /// concurrent updates may tear by a request or two, never more).
    pub(crate) fn snapshot(&self, elapsed: Duration) -> ServerStats {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let percentile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile in 1..=total (nearest-rank method).
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (idx, &n) in counts.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return upper(idx);
                }
            }
            upper(BUCKETS - 1)
        };
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        ServerStats {
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                completed as f64 / batches as f64
            },
            p50_us: percentile(0.50),
            p95_us: percentile(0.95),
            p99_us: percentile(0.99),
            latency_max_us: self.latency_max_us.load(Ordering::Relaxed),
            latency_mean_us: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / completed as f64
            },
            batch_service_max_us: self.service_max_us.load(Ordering::Relaxed),
            batch_service_mean_us: if batches == 0 {
                0.0
            } else {
                self.service_sum_us.load(Ordering::Relaxed) as f64 / batches as f64
            },
            elapsed,
            windows_per_sec: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            retried_batches: self.retried_batches.load(Ordering::Relaxed),
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
            shard_windows: Vec::new(),
            shard_healthy: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
        }
    }
}

/// A point-in-time view of a server's accumulated telemetry.
///
/// Latencies are measured server-side from the moment a request is
/// accepted into the queue to the moment its verdict is handed back to
/// the ticket — queueing, batch formation (up to
/// [`max_delay`](crate::ServeConfig::max_delay)) and batch service all
/// included. Quantiles come from a log-linear histogram with ≤ 12.5%
/// relative error; `latency_max_us` is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests answered (successfully or with a per-request error).
    pub completed: u64,
    /// Submissions rejected with
    /// [`TrySubmitError::Overloaded`](crate::TrySubmitError::Overloaded).
    pub rejected: u64,
    /// Batches served.
    pub batches: u64,
    /// Mean windows per served batch.
    pub mean_batch: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Worst request latency, microseconds (exact).
    pub latency_max_us: u64,
    /// Mean request latency, microseconds.
    pub latency_mean_us: f64,
    /// Worst single-batch service (classification) time, microseconds.
    pub batch_service_max_us: u64,
    /// Mean batch service time, microseconds.
    pub batch_service_mean_us: f64,
    /// Wall-clock since the server was spawned.
    pub elapsed: Duration,
    /// Completed requests per second of server lifetime.
    pub windows_per_sec: f64,
    /// Requests resolved with
    /// [`DeadlineExceeded`](crate::ServeError::DeadlineExceeded) because
    /// they waited in the queue past the configured
    /// [`deadline`](crate::ServeConfig::deadline) (counted in
    /// `completed` too — they were answered, with an error).
    pub deadline_expired: u64,
    /// Batches retried after a
    /// [`WorkerLost`](pulp_hd_core::backend::BackendError::WorkerLost)
    /// failure (each retry counts once; a batch retried twice adds two).
    pub retried_batches: u64,
    /// Backend panics contained on the batcher thread — each one also
    /// surfaced as a typed per-request error instead of killing the
    /// server.
    pub contained_panics: u64,
    /// Windows served per shard, indexed by shard — filled only when
    /// the server serves a sharded session and its
    /// [`ShardMonitor`](pulp_hd_core::backend::ShardMonitor) was
    /// registered via `Server::with_shard_monitor`; empty otherwise.
    /// (Under class-sharding every shard sees every window, so each
    /// entry equals the total; under batch-sharding the entries sum to
    /// it.)
    pub shard_windows: Vec<u64>,
    /// Per-shard health, indexed by shard — filled alongside
    /// [`shard_windows`](Self::shard_windows) when a
    /// [`ShardMonitor`](pulp_hd_core::backend::ShardMonitor) is
    /// registered; empty otherwise. A `false` entry is a shard whose
    /// worker panicked: batch-sharded sessions keep serving on the
    /// survivors, class-sharded sessions report
    /// [`ShardLost`](pulp_hd_core::backend::BackendError::ShardLost).
    pub shard_healthy: Vec<bool>,
    /// Query-cache hits — windows answered by replaying a previously
    /// computed verdict instead of an associative-memory scan. Filled
    /// only when the served session was prepared with a caching
    /// [`ApproxPolicy`](pulp_hd_core::backend::ApproxPolicy); zero
    /// otherwise.
    pub cache_hits: u64,
    /// Query-cache misses — windows that went through the full scan
    /// (and were then inserted). Filled alongside
    /// [`cache_hits`](Self::cache_hits).
    pub cache_misses: u64,
    /// Query-cache evictions — least-recently-used entries displaced by
    /// inserts at capacity. Filled alongside
    /// [`cache_hits`](Self::cache_hits).
    pub cache_evictions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_exhaustive() {
        let mut last = 0;
        for us in (0..1_000_000u64).step_by(37) {
            let b = bucket(us);
            assert!(b >= last || upper(b) >= us, "bucket order at {us}");
            assert!(us <= upper(b), "value {us} above its bucket bound");
            // Upper bound is within 12.5% of the true value (or exact in
            // the linear range).
            assert!(
                upper(b) as f64 <= (us as f64 * 1.125).max(SUBS as f64),
                "bucket at {us} too coarse: upper {}",
                upper(b)
            );
            last = b;
        }
        assert_eq!(bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_recorded_distribution() {
        let r = Recorder::new();
        // 100 requests at ~100µs, 10 at ~10ms: p50 near 100µs, p99+
        // influenced by the slow tail.
        for _ in 0..100 {
            r.record_latency(Duration::from_micros(100));
        }
        for _ in 0..10 {
            r.record_latency(Duration::from_millis(10));
        }
        let s = r.snapshot(Duration::from_secs(1));
        assert_eq!(s.completed, 110);
        assert!(s.p50_us >= 100 && s.p50_us < 125, "p50 {}", s.p50_us);
        assert!(s.p99_us >= 10_000, "p99 {}", s.p99_us);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.latency_max_us.max(11_500));
        assert!((s.windows_per_sec - 110.0).abs() < 1e-6);
    }

    #[test]
    fn batch_and_rejection_counters_accumulate() {
        let r = Recorder::new();
        r.record_batch(Duration::from_micros(300));
        r.record_batch(Duration::from_micros(700));
        r.record_rejected();
        for _ in 0..6 {
            r.record_latency(Duration::from_micros(50));
        }
        let s = r.snapshot(Duration::from_millis(500));
        assert_eq!(s.batches, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.batch_service_max_us, 700);
        assert!((s.batch_service_mean_us - 500.0).abs() < 1.0);
        assert!((s.mean_batch - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_recorder_snapshots_zeros() {
        let s = Recorder::new().snapshot(Duration::ZERO);
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.windows_per_sec, 0.0);
        assert_eq!(s.mean_batch, 0.0);
    }
}
