//! # `pulp-hd-serve` — the concurrent serving front-end
//!
//! PR 1–4 built an engine that classifies hundreds of thousands of
//! windows per second through
//! [`BackendSession::classify_batch`](pulp_hd_core::backend::BackendSession::classify_batch)
//! — but a batch API serves exactly one caller. This crate turns the
//! engine into a *system that handles traffic*: many concurrent
//! callers, one model, one session, with the throughput/latency
//! trade-off made explicit.
//!
//! ## Architecture
//!
//! ```text
//!  Client ──┐ submit(window) ─▶ ┌───────────────┐   classify_batch   ┌─────────────┐
//!  Client ──┤   bounded queue   │ micro-batcher │ ─────────────────▶ │BackendSession│
//!  Client ──┘ ◀─ Ticket/Verdict │ (one thread)  │ ◀───────────────── │ (worker pool)│
//!           one-shot fan-back   └───────────────┘      verdicts      └─────────────┘
//! ```
//!
//! * [`Server::spawn`] prepares a
//!   [`BackendSession`](pulp_hd_core::backend::BackendSession) on any
//!   [`ExecutionBackend`] and moves it onto a dedicated batcher thread.
//! * [`Server::client`] hands out cheap clonable [`Client`] handles.
//!   [`Client::submit`] enqueues one window and returns a [`Ticket`];
//!   [`Ticket::wait`] blocks for that window's [`Verdict`].
//!   [`Client::classify`] is the submit-and-wait convenience.
//! * The **adaptive micro-batcher** drains the request queue, closes a
//!   batch at [`max_batch`](ServeConfig::max_batch) requests or
//!   [`max_delay`](ServeConfig::max_delay) after the batch opened —
//!   whichever comes first — runs one `classify_batch`, and fans the
//!   verdicts back to per-request one-shot channels. Under load,
//!   batches fill instantly and ride the backend's multi-threaded batch
//!   pipeline; a lone caller pays at most `max_delay` extra latency.
//! * **Backpressure:** the queue is bounded at
//!   [`queue_depth`](ServeConfig::queue_depth). [`Client::submit`]
//!   blocks when it is full (closed-loop callers self-pace);
//!   [`Client::try_submit`] returns
//!   [`TrySubmitError::Overloaded`] instead, for callers that would
//!   rather shed load than queue behind it.
//! * **Graceful shutdown:** [`Server::shutdown`] (and `Drop`) stops
//!   accepting new work, serves every request already queued, joins the
//!   batcher, and returns the final [`ServerStats`]. No ticket is ever
//!   left hanging: everything queued when shutdown begins gets its
//!   verdict, and a submission racing shutdown either joins the final
//!   drain or resolves promptly with [`ServeError::Closed`].
//! * **Telemetry:** a lock-free recorder tracks queue-to-verdict
//!   latency (p50/p95/p99/max), batch shapes, service times, and
//!   throughput; [`Server::stats`] snapshots it at any time without
//!   stopping traffic.
//!
//! Every verdict returned through the server is **bit-identical** to a
//! direct `session.classify` of the same window on the same backend —
//! the batcher only regroups work, never changes it (pinned by this
//! crate's tests on top of the core equivalence suites).
//!
//! ## Example
//!
//! ```
//! use pulp_hd_core::backend::{FastBackend, HdModel};
//! use pulp_hd_core::layout::AccelParams;
//! use pulp_hd_serve::{ServeConfig, Server};
//!
//! let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
//! let model = HdModel::random(&params, 7);
//! let backend = FastBackend::try_with_threads(2)?;
//! let server = Server::spawn(&backend, &model, ServeConfig::default())?;
//!
//! let client = server.client();
//! let window = vec![vec![100u16, 60_000, 33_000, 8_000]];
//! let verdict = client.classify(&window)?;
//! assert!(verdict.class < params.classes);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), pulp_hd_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod net;
mod stats;

pub use net::{NetClient, NetError, NetServer};
pub use stats::ServerStats;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pulp_hd_core::backend::{
    ApproxMonitor, ApproxPolicy, BackendError, BackendSession, ExecutionBackend, HdModel,
    ScanPolicy, ShardMonitor, TrainingSession, Verdict,
};

use stats::Recorder;

/// Tuning knobs of the adaptive micro-batcher.
///
/// The two batching knobs span the throughput/latency trade-off:
///
/// * **`max_batch`** caps how much work one `classify_batch` call sees.
///   Bigger batches amortize dispatch and let the backend's worker pool
///   fan out (the fast backend needs ≥ 8 windows per participant to
///   leave its single-thread path); past a few hundred windows the
///   returns flatten.
/// * **`max_delay`** caps how long an open batch waits for company.
///   The batcher fills cooperatively: it drains whatever is queued,
///   then yields the CPU a handful of times to let submitting threads
///   run, and closes the batch as soon as the queue stays empty across
///   those yields — so a sparse caller pays microseconds, not
///   `max_delay`, while a crowd mid-submission gets swept into one
///   batch. `max_delay` is the hard upper bound on that fill phase
///   (worst-case added latency); `0` disables the fill phase entirely
///   (each request is served with whatever happened to be queued
///   alongside it).
///
/// `queue_depth` bounds memory and tail latency under overload: once
/// the queue holds that many submitted-but-unserved windows,
/// [`Client::try_submit`] sheds load with
/// [`TrySubmitError::Overloaded`] and [`Client::submit`] blocks.
///
/// The fault-tolerance knobs bound how a failure is allowed to spread:
///
/// * **`deadline`** is the server-side time budget from submission to
///   batch service. A request still unserved when its batch closes past
///   the deadline resolves with [`ServeError::DeadlineExceeded`]
///   instead of occupying a batch slot — so a latency fault (a stalled
///   backend, a flooded queue) sheds the requests that already missed
///   their window rather than serving everyone late. `None` (the
///   default) disables the check.
/// * **`worker_lost_retries`** bounds how often one batch is retried
///   after a [`WorkerLost`](BackendError::WorkerLost) failure (a
///   contained worker panic). Retrying is safe — a failed batch rolls
///   back — and usually succeeds, because the backend has already
///   rerouted around the lost worker by the time the retry runs.
/// * **`retry_backoff`** is slept between those attempts.
///
/// The engine knobs pass straight through to the backend when the
/// server prepares the session itself ([`Server::spawn`]):
///
/// * **`scan`** selects the associative-memory scan strategy
///   ([`ScanPolicy::Full`] or the pruned early-abandoning scan).
/// * **`approx`** selects the approximate-inference rung
///   ([`ApproxPolicy`]): exact (the default, bit-identical to the
///   golden model), threshold early-exit, query caching, or both.
///   A caching policy also lights up the `cache_*` counters in
///   [`ServerStats`].
///
/// Both are honored via
/// [`ExecutionBackend::prepare_tuned`](pulp_hd_core::backend::ExecutionBackend::prepare_tuned),
/// so a backend that cannot realize a non-default knob rejects it at
/// spawn time instead of silently serving exact results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Close a batch once it holds this many requests (≥ 1).
    pub max_batch: usize,
    /// Close a batch this long after its first request arrived, even if
    /// it is not full.
    pub max_delay: Duration,
    /// Bounded submission-queue capacity (≥ 1).
    pub queue_depth: usize,
    /// Associative-memory scan strategy for sessions the server
    /// prepares itself ([`Server::spawn`]); ignored by
    /// [`Server::from_session`], whose session is already built.
    pub scan: ScanPolicy,
    /// Approximate-inference policy for sessions the server prepares
    /// itself ([`Server::spawn`]); ignored by
    /// [`Server::from_session`], whose session is already built.
    pub approx: ApproxPolicy,
    /// Server-side deadline per request, measured from submission; a
    /// request whose deadline expires before its batch is served
    /// resolves with [`ServeError::DeadlineExceeded`]. `None` disables
    /// deadline enforcement.
    pub deadline: Option<Duration>,
    /// How many times one batch may be retried after a
    /// [`WorkerLost`](BackendError::WorkerLost) failure before falling
    /// back to per-window classification.
    pub worker_lost_retries: u32,
    /// Pause between worker-lost retry attempts.
    pub retry_backoff: Duration,
}

impl Default for ServeConfig {
    /// `max_batch` 64, `max_delay` 200 µs, `queue_depth` 1024 — sized
    /// so a saturated server forms pool-friendly batches while a lone
    /// caller's worst-case added latency stays well under a millisecond.
    /// No deadline; two worker-lost retries, 50 µs apart. Full scan,
    /// exact inference — the bit-identical engine configuration.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_depth: 1024,
            scan: ScanPolicy::Full,
            approx: ApproxPolicy::Exact,
            deadline: None,
            worker_lost_retries: 2,
            retry_backoff: Duration::from_micros(50),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be at least 1".into()));
        }
        Ok(())
    }
}

/// Errors surfaced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The backend rejected the model, the configuration, or this
    /// specific window (per-request: other requests in the same batch
    /// are unaffected).
    Backend(BackendError),
    /// The serving configuration is invalid.
    Config(String),
    /// The server was shut down gracefully before this request could be
    /// answered (the batcher drained and exited; nothing crashed).
    Closed,
    /// The batcher thread died — the terminal failure the containment
    /// layer exists to prevent, still reported as a typed error so no
    /// [`Ticket::wait`] ever hangs on a dead server.
    ServerDied,
    /// This request waited past the configured
    /// [`deadline`](ServeConfig::deadline) before its batch was served.
    DeadlineExceeded,
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Backend(e) => write!(f, "backend: {e}"),
            Self::Config(what) => write!(f, "config: {what}"),
            Self::Closed => write!(f, "server is shut down"),
            Self::ServerDied => write!(f, "server batcher thread died"),
            Self::DeadlineExceeded => write!(f, "request deadline exceeded before service"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> Self {
        Self::Backend(e)
    }
}

/// Why a non-blocking submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The bounded queue is full — shed load or retry later. The
    /// rejection is counted in [`ServerStats::rejected`].
    Overloaded,
    /// The server has shut down.
    Closed,
}

impl core::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Overloaded => write!(f, "server queue is full"),
            Self::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// One queued request: the window, its arrival time, and the one-shot
/// reply channel its [`Ticket`] waits on.
struct Pending {
    window: Vec<Vec<u16>>,
    enqueued: Instant,
    /// Per-request deadline (absolute), overriding the config-wide
    /// [`ServeConfig::deadline`] for this request when set — the wire
    /// layer maps each request's deadline header here.
    deadline: Option<Instant>,
    reply: SyncSender<Result<Verdict, ServeError>>,
}

enum Request {
    Classify(Pending),
    /// Shutdown sentinel: serve everything already queued, then exit.
    Drain,
}

/// State shared by the server handle, every client, and the batcher.
struct Shared {
    /// Flips to `false` on shutdown; clients check it before queuing.
    open: AtomicBool,
    /// Flips to `true` if the batcher thread dies (unwinds) instead of
    /// exiting gracefully — set *before* the outstanding reply channels
    /// close, so waiting tickets report [`ServeError::ServerDied`]
    /// rather than the graceful [`ServeError::Closed`].
    batcher_down: AtomicBool,
    recorder: Recorder,
    started: Instant,
}

/// A running serving front-end: one
/// [`BackendSession`](pulp_hd_core::backend::BackendSession) on one
/// batcher thread, fed by any number of [`Client`] handles.
///
/// Dropping the server performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown): queued requests are served, the
/// batcher is joined, and later submissions fail with
/// [`ServeError::Closed`] / [`TrySubmitError::Closed`] (see
/// [`shutdown`](Self::shutdown) for the exact guarantee under races).
#[derive(Debug)]
pub struct Server {
    tx: SyncSender<Request>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
    /// Per-shard traffic counters, when the served session is a
    /// `ShardedSession` and the caller registered its monitor.
    monitor: Option<ShardMonitor>,
    /// Query-cache counters, when the served session was prepared with
    /// a caching [`ApproxPolicy`] (grabbed from the session before it
    /// moves onto the batcher thread).
    approx_monitor: Option<ApproxMonitor>,
}

impl Server {
    /// Prepares `model` on `backend` and starts serving it.
    ///
    /// The session is prepared on the calling thread so backend errors
    /// surface synchronously, then moved onto the batcher thread.
    ///
    /// This constructor validates its [`ServeConfig`] and reports
    /// problems as [`ServeError::Config`] — nothing ever panics
    /// mid-thread. [`try_spawn`](Self::try_spawn) is the same
    /// constructor under the fallible-twin name
    /// (mirroring `FastBackend::try_with_threads`), kept so call sites
    /// can spell out that configuration errors are expected and
    /// handled.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid [`ServeConfig`]
    /// (`max_batch == 0`, `queue_depth == 0`) and
    /// [`ServeError::Backend`] if the backend cannot realize the model.
    pub fn spawn(
        backend: &dyn ExecutionBackend,
        model: &HdModel,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let session = backend.prepare_tuned(model, config.scan, config.approx)?;
        Self::from_session(session, config)
    }

    /// The fallible-twin name of [`spawn`](Self::spawn), for call sites
    /// that want the `try_` convention of
    /// `FastBackend::try_with_threads` — identical semantics: an
    /// invalid [`ServeConfig`] (`max_batch == 0`, `queue_depth == 0`)
    /// comes back as [`ServeError::Config`] before any thread exists.
    ///
    /// # Errors
    ///
    /// As [`spawn`](Self::spawn).
    pub fn try_spawn(
        backend: &dyn ExecutionBackend,
        model: &HdModel,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::spawn(backend, model, config)
    }

    /// Serves an already-prepared session — the direct hand-off from
    /// one-shot training:
    /// `Server::from_training(trainer, config)` is covered separately;
    /// use this when the session came from
    /// [`ExecutionBackend::prepare`] or a custom construction.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid [`ServeConfig`].
    pub fn from_session(
        session: Box<dyn BackendSession>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        // The session is about to move onto the batcher thread — grab
        // its cache telemetry handle (if any) while we still can.
        let approx_monitor = session.approx_monitor();
        let (tx, rx) = sync_channel(config.queue_depth);
        let shared = Arc::new(Shared {
            open: AtomicBool::new(true),
            batcher_down: AtomicBool::new(false),
            recorder: Recorder::new(),
            started: Instant::now(),
        });
        let batcher_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("pulp-hd-serve".into())
            .spawn(move || batcher(session, &rx, &batcher_shared, config))
            .map_err(|e| ServeError::Config(format!("cannot spawn batcher thread: {e}")))?;
        Ok(Self {
            tx,
            shared,
            handle: Some(handle),
            monitor: None,
            approx_monitor,
        })
    }

    /// The fallible-twin name of [`from_session`](Self::from_session) —
    /// identical semantics, see [`try_spawn`](Self::try_spawn).
    ///
    /// # Errors
    ///
    /// As [`from_session`](Self::from_session).
    pub fn try_from_session(
        session: Box<dyn BackendSession>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::from_session(session, config)
    }

    /// Registers the per-shard traffic counters of a served
    /// [`ShardedSession`](pulp_hd_core::backend::ShardedSession):
    /// subsequent [`stats`](Self::stats) snapshots fill
    /// [`ServerStats::shard_windows`] from it, giving the serving layer
    /// per-shard visibility without touching the session mid-flight.
    ///
    /// ```
    /// # use pulp_hd_core::backend::{HdModel, ShardSpec, ShardedBackend};
    /// # use pulp_hd_core::layout::AccelParams;
    /// # use pulp_hd_serve::{ServeConfig, Server};
    /// # let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
    /// # let model = HdModel::random(&params, 7);
    /// let backend = ShardedBackend::fast(ShardSpec::Batch(2))?;
    /// let session = backend.prepare_sharded(&model)?;
    /// let monitor = session.monitor();
    /// let server = Server::from_session(Box::new(session), ServeConfig::default())?
    ///     .with_shard_monitor(monitor);
    /// assert_eq!(server.stats().shard_windows.len(), 2);
    /// # drop(server.shutdown());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn with_shard_monitor(mut self, monitor: ShardMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Finalizes a training session and serves the trained model on its
    /// own backend — the train → deploy path
    /// ([`TrainingSession::into_serving`]) behind the serving layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] if finalization or serving
    /// preparation fails, [`ServeError::Config`] for an invalid
    /// [`ServeConfig`].
    pub fn from_training(
        trainer: Box<dyn TrainingSession>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        Self::from_session(trainer.into_serving()?, config)
    }

    /// A new client handle. Clients are cheap (`Clone` + `Send`), so
    /// hand one to every caller thread.
    #[must_use]
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of the server's telemetry, without stopping traffic.
    /// When a [`ShardMonitor`] is registered
    /// ([`with_shard_monitor`](Self::with_shard_monitor)), the snapshot
    /// includes the windows served per shard and each shard's health.
    /// When the served session carries a query cache (a caching
    /// [`ApproxPolicy`]), the snapshot includes its hit/miss/eviction
    /// counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.shared.recorder.snapshot(self.shared.started.elapsed());
        if let Some(monitor) = &self.monitor {
            stats.shard_windows = monitor.windows();
            stats.shard_healthy = monitor.healthy();
        }
        if let Some(approx) = &self.approx_monitor {
            stats.cache_hits = approx.hits();
            stats.cache_misses = approx.misses();
            stats.cache_evictions = approx.evictions();
        }
        stats
    }

    /// Graceful shutdown: stop accepting new requests, serve everything
    /// already queued, join the batcher, and return the final stats.
    ///
    /// Every outstanding [`Ticket`] resolves: tickets queued before
    /// this call (in particular, everything submitted from the calling
    /// thread) get their verdicts; a submission on another thread that
    /// races this call may instead resolve with [`ServeError::Closed`]
    /// — it is never left blocking.
    #[must_use = "the final stats are the server's life's work; ignore explicitly if unwanted"]
    pub fn shutdown(mut self) -> ServerStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ORDERING: SeqCst close flag — submitters load it SeqCst
            // before enqueueing, so once this store is ordered before
            // the Drain sentinel below, no submission can slip in after
            // the drain and block forever.
            self.shared.open.store(false, Ordering::SeqCst);
            // The blocking send is safe: the batcher only exits after
            // consuming a Drain (or after every sender is gone), so it
            // is still draining the queue ahead of this sentinel. If it
            // panicked instead, the send fails — nothing to drain.
            let _ = self.tx.send(Request::Drain);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A cheap clonable handle for submitting windows to a [`Server`].
#[derive(Debug, Clone)]
pub struct Client {
    tx: SyncSender<Request>,
    shared: Arc<Shared>,
}

impl core::fmt::Debug for Shared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared")
            .field("open", &self.open)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Submits one window, blocking while the queue is full, and
    /// returns a [`Ticket`] for its verdict.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server has shut down.
    pub fn submit(&self, window: Vec<Vec<u16>>) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(window, None)
    }

    /// Like [`submit`](Self::submit), with a per-request deadline that
    /// overrides the config-wide [`ServeConfig::deadline`] for this
    /// request only (measured from now): if the request is still
    /// unserved when its batch closes past the deadline, its ticket
    /// resolves with [`ServeError::DeadlineExceeded`]. `None` falls back
    /// to the config-wide deadline. This is the hook the network layer
    /// uses to propagate each wire request's deadline header.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        window: Vec<Vec<u16>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, ServeError> {
        if !self.shared.open.load(Ordering::SeqCst) {
            return Err(ServeError::Closed);
        }
        let (ticket, pending) = self.package(window, deadline);
        self.tx
            .send(Request::Classify(pending))
            .map_err(|_| ServeError::Closed)?;
        Ok(ticket)
    }

    /// Submits one window without blocking: full queue means
    /// [`TrySubmitError::Overloaded`] (the shed-load backpressure
    /// signal), not a wait.
    ///
    /// # Errors
    ///
    /// Returns [`TrySubmitError::Overloaded`] when the bounded queue is
    /// full, [`TrySubmitError::Closed`] if the server has shut down.
    pub fn try_submit(&self, window: Vec<Vec<u16>>) -> Result<Ticket, TrySubmitError> {
        self.try_submit_with_deadline(window, None)
    }

    /// The non-blocking twin of
    /// [`submit_with_deadline`](Self::submit_with_deadline): shed-load
    /// backpressure plus a per-request deadline.
    ///
    /// # Errors
    ///
    /// As [`try_submit`](Self::try_submit).
    pub fn try_submit_with_deadline(
        &self,
        window: Vec<Vec<u16>>,
        deadline: Option<Duration>,
    ) -> Result<Ticket, TrySubmitError> {
        if !self.shared.open.load(Ordering::SeqCst) {
            return Err(TrySubmitError::Closed);
        }
        let (ticket, pending) = self.package(window, deadline);
        match self.tx.try_send(Request::Classify(pending)) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(_)) => {
                self.shared.recorder.record_rejected();
                Err(TrySubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(TrySubmitError::Closed),
        }
    }

    /// Submit-and-wait: one window in, its [`Verdict`] out. The calling
    /// thread blocks (closed-loop callers self-pace — this is the
    /// backpressure-friendly way to drive the server hard).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] if the backend rejected this
    /// window, [`ServeError::Closed`] if the server shut down first.
    pub fn classify(&self, window: &[Vec<u16>]) -> Result<Verdict, ServeError> {
        self.submit(window.to_vec())?.wait()
    }

    fn package(&self, window: Vec<Vec<u16>>, deadline: Option<Duration>) -> (Ticket, Pending) {
        // Capacity 1 and exactly one send ever: the batcher's reply can
        // never block, and a dropped ticket just discards the verdict.
        let (reply_tx, reply_rx) = sync_channel(1);
        let now = Instant::now();
        (
            Ticket {
                reply: reply_rx,
                shared: Arc::clone(&self.shared),
            },
            Pending {
                window,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                reply: reply_tx,
            },
        )
    }
}

/// How often a blocked [`Ticket::wait`] re-checks the batcher-death
/// flag. Pure defense in depth: a dying batcher closes the reply
/// channels (waking every waiter immediately) on all normal unwind
/// paths, so the watchdog tick only matters if a reply sender leaks —
/// and it guarantees `wait` can never hang forever on a dead server
/// even then.
const WATCHDOG_TICK: Duration = Duration::from_millis(25);

/// An outstanding request: redeem it with [`wait`](Self::wait).
#[derive(Debug)]
pub struct Ticket {
    reply: Receiver<Result<Verdict, ServeError>>,
    shared: Arc<Shared>,
}

impl Ticket {
    /// Blocks until this request's verdict is ready. Can never hang on
    /// a dead server: if the batcher thread dies, every outstanding
    /// `wait` resolves with [`ServeError::ServerDied`] (a watchdog
    /// re-checks the death flag even if the reply channel leaks).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] if the backend rejected this
    /// window, [`ServeError::DeadlineExceeded`] if it waited past the
    /// configured [`deadline`](ServeConfig::deadline),
    /// [`ServeError::Closed`] if the server shut down gracefully first,
    /// [`ServeError::ServerDied`] if the batcher thread died.
    pub fn wait(self) -> Result<Verdict, ServeError> {
        loop {
            match self.reply.recv_timeout(WATCHDOG_TICK) {
                Ok(result) => return result,
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.batcher_down.load(Ordering::SeqCst) {
                        return Err(ServeError::ServerDied);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.disconnect_error()),
            }
        }
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait); additionally returns `Ok(None)` — not an
    /// error — when the timeout elapses first (the ticket is consumed,
    /// the verdict is discarded when it arrives).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<Verdict>, ServeError> {
        let give_up = Instant::now() + timeout;
        loop {
            let remaining = give_up.saturating_duration_since(Instant::now());
            match self.reply.recv_timeout(remaining.min(WATCHDOG_TICK)) {
                Ok(result) => return result.map(Some),
                Err(RecvTimeoutError::Timeout) => {
                    if self.shared.batcher_down.load(Ordering::SeqCst) {
                        return Err(ServeError::ServerDied);
                    }
                    if remaining <= WATCHDOG_TICK {
                        return Ok(None);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.disconnect_error()),
            }
        }
    }

    /// The typed verdict for a reply channel that closed with no
    /// answer: a crashed batcher versus a graceful shutdown race.
    fn disconnect_error(&self) -> ServeError {
        if self.shared.batcher_down.load(Ordering::SeqCst) {
            ServeError::ServerDied
        } else {
            ServeError::Closed
        }
    }
}

/// Consecutive empty-queue yield rounds after which the fill phase
/// concludes no more traffic is coming and closes the batch. Each round
/// costs one `yield_now` — nanoseconds when nothing else is runnable
/// (the sparse-caller case closes its batch almost instantly), a
/// scheduler slice that lets submitting threads actually reach the
/// queue when the machine is saturated (the crowd case fills the
/// batch).
const FILL_IDLE_ROUNDS: u32 = 8;

/// Runs `f` with its panics contained: a panic becomes `Err(message)`
/// instead of unwinding the batcher thread. The serve-layer twin of the
/// core dispatch layer's containment primitive — `AssertUnwindSafe` is
/// justified because the caller discards or rebuilds everything the
/// closure touched (the verdict buffer is cleared per attempt, the
/// session rolls failed batches back by contract).
fn contain<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic payload")
            .to_owned()
    })
}

/// Arms [`Shared::batcher_down`] against an unwinding batcher: dropped
/// while armed (the unwind path), it flips the flag so tickets report
/// [`ServeError::ServerDied`]; disarmed on every graceful exit so a
/// submission racing shutdown still sees the honest
/// [`ServeError::Closed`].
struct DownGuard<'a> {
    shared: &'a Shared,
    armed: bool,
}

impl Drop for DownGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // ORDERING: SeqCst — waiters poll this flag SeqCst to turn
            // a dead batcher into `ServerDied` instead of blocking; the
            // store must be ordered after the unwinding batcher's last
            // ticket resolutions so no resolved ticket reports a death.
            self.shared.batcher_down.store(true, Ordering::SeqCst);
        }
    }
}

/// The batcher loop: block for the first request of a batch, top the
/// batch up (cooperative fill, bounded by `max_batch` and `max_delay`),
/// serve it, repeat — until a [`Request::Drain`] sentinel (graceful
/// shutdown) or channel disconnection (server handle and every client
/// dropped).
fn batcher(
    mut session: Box<dyn BackendSession>,
    rx: &Receiver<Request>,
    shared: &Shared,
    config: ServeConfig,
) {
    let mut pending: Vec<Pending> = Vec::with_capacity(config.max_batch);
    let mut windows: Vec<Vec<Vec<u16>>> = Vec::with_capacity(config.max_batch);
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(config.max_batch);
    // Declared after the batch buffers so it drops *first* during an
    // unwind: outstanding tickets observe `batcher_down` before their
    // reply channels (held by `pending` and the queue) close.
    let mut guard = DownGuard {
        shared,
        armed: true,
    };
    loop {
        let mut draining = match rx.recv() {
            Ok(Request::Classify(p)) => {
                pending.push(p);
                false
            }
            Ok(Request::Drain) => true,
            Err(_) => true,
        };
        if !draining {
            // Cooperative fill: sweep everything already queued, and
            // between sweeps yield so threads that are mid-submission
            // get the CPU to finish. Close once the queue stays empty
            // for FILL_IDLE_ROUNDS consecutive yields (no more traffic
            // in flight), at max_batch, or at the max_delay deadline —
            // whichever comes first.
            let deadline = Instant::now() + config.max_delay;
            let mut idle_rounds = 0;
            while pending.len() < config.max_batch && idle_rounds < FILL_IDLE_ROUNDS {
                match rx.try_recv() {
                    Ok(Request::Classify(p)) => {
                        pending.push(p);
                        idle_rounds = 0;
                    }
                    Ok(Request::Drain) | Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        draining = true;
                        break;
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => {
                        // The queue was empty at batch-open (nothing
                        // swept since the blocking recv) — a lone
                        // caller closes after this one sweep instead of
                        // paying the full cooperative yield loop; a
                        // crowd (anything swept) keeps filling.
                        if pending.len() == 1 {
                            break;
                        }
                        if Instant::now() >= deadline {
                            break;
                        }
                        idle_rounds += 1;
                        std::thread::yield_now();
                    }
                }
            }
        }
        serve_batch(
            session.as_mut(),
            &mut pending,
            &mut windows,
            &mut verdicts,
            shared,
            &config,
        );
        if draining {
            // Serve everything already queued, then exit. Replies to
            // requests that sneak in after the final try_recv are
            // dropped with the channel — their tickets see `Closed`.
            loop {
                match rx.try_recv() {
                    Ok(Request::Classify(p)) => {
                        pending.push(p);
                        if pending.len() == config.max_batch {
                            serve_batch(
                                session.as_mut(),
                                &mut pending,
                                &mut windows,
                                &mut verdicts,
                                shared,
                                &config,
                            );
                        }
                    }
                    Ok(Request::Drain) => {}
                    Err(_) => break,
                }
            }
            serve_batch(
                session.as_mut(),
                &mut pending,
                &mut windows,
                &mut verdicts,
                shared,
                &config,
            );
            guard.armed = false;
            return;
        }
    }
}

/// Serves one closed batch: triage expired deadlines, run
/// `classify_batch` over the surviving windows (panics contained,
/// worker-loss failures retried with backoff), record telemetry, fan
/// each verdict back to its ticket.
///
/// A batch-level error that survives the retries falls back to
/// per-window classification so the error lands only on the request
/// that caused it — every other ticket in the batch still gets its
/// verdict (bit-identical either way; the core pins `classify_batch`
/// to looped `classify`).
fn serve_batch(
    session: &mut dyn BackendSession,
    pending: &mut Vec<Pending>,
    windows: &mut Vec<Vec<Vec<u16>>>,
    verdicts: &mut Vec<Verdict>,
    shared: &Shared,
    config: &ServeConfig,
) {
    if pending.is_empty() {
        return;
    }
    // Deadline triage: requests that already waited past their budget
    // resolve immediately with the typed error instead of occupying a
    // batch slot and making everyone behind them later still. A
    // per-request deadline (`Pending::deadline`, set by
    // `submit_with_deadline`) overrides the config-wide one.
    if config.deadline.is_some() || pending.iter().any(|p| p.deadline.is_some()) {
        let now = Instant::now();
        pending.retain_mut(|p| {
            let expired = match p.deadline {
                Some(at) => now > at,
                None => config
                    .deadline
                    .is_some_and(|budget| now.duration_since(p.enqueued) > budget),
            };
            if expired {
                shared.recorder.record_deadline_expired();
                shared.recorder.record_latency(p.enqueued.elapsed());
                let _ = p.reply.send(Err(ServeError::DeadlineExceeded));
                false
            } else {
                true
            }
        });
        if pending.is_empty() {
            return;
        }
    }
    windows.clear();
    windows.extend(pending.iter_mut().map(|p| std::mem::take(&mut p.window)));
    let service_start = Instant::now();
    // Batch attempts: each one against a cleared verdict buffer (the
    // backend's `classify_batch_into` contract leaves `out` unchanged
    // on error, and a contained panic discards the buffer anyway).
    // Worker-loss failures — a contained worker panic inside the
    // backend, or a panic on this thread contained right here — are
    // transient-by-design (the backend reroutes around the lost worker),
    // so they get `worker_lost_retries` fresh attempts before the
    // per-window fallback.
    let mut attempt = 0;
    let batch_result = loop {
        verdicts.clear();
        let result = match contain(|| session.classify_batch_into(windows, verdicts)) {
            Ok(result) => result,
            Err(panic) => {
                shared.recorder.record_contained_panic();
                verdicts.clear();
                Err(BackendError::WorkerLost { chunk: 0, panic })
            }
        };
        match result {
            Err(BackendError::WorkerLost { .. }) if attempt < config.worker_lost_retries => {
                attempt += 1;
                shared.recorder.record_retried_batch();
                std::thread::sleep(config.retry_backoff);
            }
            other => break other,
        }
    };
    match batch_result {
        Ok(()) => {
            shared.recorder.record_batch(service_start.elapsed());
            debug_assert_eq!(verdicts.len(), pending.len());
            for (p, v) in pending.drain(..).zip(verdicts.drain(..)) {
                shared.recorder.record_latency(p.enqueued.elapsed());
                let _ = p.reply.send(Ok(v));
            }
        }
        Err(_) => {
            // Per-window fallback, itself contained: the error (or
            // panic) lands only on the window that caused it.
            for (p, w) in pending.drain(..).zip(windows.iter()) {
                let result = match contain(|| session.classify(w)) {
                    Ok(result) => result.map_err(ServeError::Backend),
                    Err(panic) => {
                        shared.recorder.record_contained_panic();
                        Err(ServeError::Backend(BackendError::WorkerLost {
                            chunk: 0,
                            panic,
                        }))
                    }
                };
                shared.recorder.record_latency(p.enqueued.elapsed());
                let _ = p.reply.send(result);
            }
            shared.recorder.record_batch(service_start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    //! Watchdog unit tests: the `ServerDied` paths are deliberately
    //! unreachable through the public API (the batcher contains every
    //! session panic), so the guarantee "`wait` can never hang on a
    //! dead batcher" is pinned here against hand-built shared state.

    use super::*;

    fn shared(batcher_down: bool) -> Arc<Shared> {
        Arc::new(Shared {
            open: AtomicBool::new(true),
            batcher_down: AtomicBool::new(batcher_down),
            recorder: Recorder::new(),
            started: Instant::now(),
        })
    }

    /// The worst case the watchdog exists for: the batcher died but a
    /// leaked reply sender keeps the channel open. `wait` must resolve
    /// with `ServerDied` within a tick instead of blocking forever.
    #[test]
    fn wait_cannot_hang_when_the_batcher_dies_with_a_leaked_sender() {
        let (tx, rx) = sync_channel::<Result<Verdict, ServeError>>(1);
        let ticket = Ticket {
            reply: rx,
            shared: shared(true),
        };
        let start = Instant::now();
        assert!(matches!(ticket.wait(), Err(ServeError::ServerDied)));
        assert!(start.elapsed() < WATCHDOG_TICK * 4);
        drop(tx);
    }

    /// A closed reply channel is disambiguated by the death flag:
    /// crashed batcher → `ServerDied`, graceful shutdown → `Closed`.
    #[test]
    fn disconnected_reply_reports_died_versus_closed() {
        let (_, rx) = sync_channel::<Result<Verdict, ServeError>>(1);
        let ticket = Ticket {
            reply: rx,
            shared: shared(true),
        };
        assert!(matches!(ticket.wait(), Err(ServeError::ServerDied)));

        let (_, rx) = sync_channel::<Result<Verdict, ServeError>>(1);
        let ticket = Ticket {
            reply: rx,
            shared: shared(false),
        };
        assert!(matches!(ticket.wait(), Err(ServeError::Closed)));
    }

    /// `wait_timeout` keeps its `Ok(None)` contract on a *healthy*
    /// server (slow reply, leaked sender) and still detects death.
    #[test]
    fn wait_timeout_expires_on_healthy_servers_and_detects_death() {
        let (tx, rx) = sync_channel::<Result<Verdict, ServeError>>(1);
        let ticket = Ticket {
            reply: rx,
            shared: shared(false),
        };
        assert!(matches!(
            ticket.wait_timeout(Duration::from_millis(5)),
            Ok(None)
        ));
        drop(tx);

        let (tx, rx) = sync_channel::<Result<Verdict, ServeError>>(1);
        let ticket = Ticket {
            reply: rx,
            shared: shared(true),
        };
        assert!(matches!(
            ticket.wait_timeout(Duration::from_secs(60)),
            Err(ServeError::ServerDied)
        ));
        drop(tx);
    }
}
