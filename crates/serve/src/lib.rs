//! # `pulp-hd-serve` — the concurrent serving front-end
//!
//! PR 1–4 built an engine that classifies hundreds of thousands of
//! windows per second through
//! [`BackendSession::classify_batch`](pulp_hd_core::backend::BackendSession::classify_batch)
//! — but a batch API serves exactly one caller. This crate turns the
//! engine into a *system that handles traffic*: many concurrent
//! callers, one model, one session, with the throughput/latency
//! trade-off made explicit.
//!
//! ## Architecture
//!
//! ```text
//!  Client ──┐ submit(window) ─▶ ┌───────────────┐   classify_batch   ┌─────────────┐
//!  Client ──┤   bounded queue   │ micro-batcher │ ─────────────────▶ │BackendSession│
//!  Client ──┘ ◀─ Ticket/Verdict │ (one thread)  │ ◀───────────────── │ (worker pool)│
//!           one-shot fan-back   └───────────────┘      verdicts      └─────────────┘
//! ```
//!
//! * [`Server::spawn`] prepares a
//!   [`BackendSession`](pulp_hd_core::backend::BackendSession) on any
//!   [`ExecutionBackend`] and moves it onto a dedicated batcher thread.
//! * [`Server::client`] hands out cheap clonable [`Client`] handles.
//!   [`Client::submit`] enqueues one window and returns a [`Ticket`];
//!   [`Ticket::wait`] blocks for that window's [`Verdict`].
//!   [`Client::classify`] is the submit-and-wait convenience.
//! * The **adaptive micro-batcher** drains the request queue, closes a
//!   batch at [`max_batch`](ServeConfig::max_batch) requests or
//!   [`max_delay`](ServeConfig::max_delay) after the batch opened —
//!   whichever comes first — runs one `classify_batch`, and fans the
//!   verdicts back to per-request one-shot channels. Under load,
//!   batches fill instantly and ride the backend's multi-threaded batch
//!   pipeline; a lone caller pays at most `max_delay` extra latency.
//! * **Backpressure:** the queue is bounded at
//!   [`queue_depth`](ServeConfig::queue_depth). [`Client::submit`]
//!   blocks when it is full (closed-loop callers self-pace);
//!   [`Client::try_submit`] returns
//!   [`TrySubmitError::Overloaded`] instead, for callers that would
//!   rather shed load than queue behind it.
//! * **Graceful shutdown:** [`Server::shutdown`] (and `Drop`) stops
//!   accepting new work, serves every request already queued, joins the
//!   batcher, and returns the final [`ServerStats`]. No ticket is ever
//!   left hanging: everything queued when shutdown begins gets its
//!   verdict, and a submission racing shutdown either joins the final
//!   drain or resolves promptly with [`ServeError::Closed`].
//! * **Telemetry:** a lock-free recorder tracks queue-to-verdict
//!   latency (p50/p95/p99/max), batch shapes, service times, and
//!   throughput; [`Server::stats`] snapshots it at any time without
//!   stopping traffic.
//!
//! Every verdict returned through the server is **bit-identical** to a
//! direct `session.classify` of the same window on the same backend —
//! the batcher only regroups work, never changes it (pinned by this
//! crate's tests on top of the core equivalence suites).
//!
//! ## Example
//!
//! ```
//! use pulp_hd_core::backend::{FastBackend, HdModel};
//! use pulp_hd_core::layout::AccelParams;
//! use pulp_hd_serve::{ServeConfig, Server};
//!
//! let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
//! let model = HdModel::random(&params, 7);
//! let backend = FastBackend::try_with_threads(2)?;
//! let server = Server::spawn(&backend, &model, ServeConfig::default())?;
//!
//! let client = server.client();
//! let window = vec![vec![100u16, 60_000, 33_000, 8_000]];
//! let verdict = client.classify(&window)?;
//! assert!(verdict.class < params.classes);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), pulp_hd_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod stats;

pub use stats::ServerStats;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pulp_hd_core::backend::{
    BackendError, BackendSession, ExecutionBackend, HdModel, ShardMonitor, TrainingSession, Verdict,
};

use stats::Recorder;

/// Tuning knobs of the adaptive micro-batcher.
///
/// The two batching knobs span the throughput/latency trade-off:
///
/// * **`max_batch`** caps how much work one `classify_batch` call sees.
///   Bigger batches amortize dispatch and let the backend's worker pool
///   fan out (the fast backend needs ≥ 8 windows per participant to
///   leave its single-thread path); past a few hundred windows the
///   returns flatten.
/// * **`max_delay`** caps how long an open batch waits for company.
///   The batcher fills cooperatively: it drains whatever is queued,
///   then yields the CPU a handful of times to let submitting threads
///   run, and closes the batch as soon as the queue stays empty across
///   those yields — so a sparse caller pays microseconds, not
///   `max_delay`, while a crowd mid-submission gets swept into one
///   batch. `max_delay` is the hard upper bound on that fill phase
///   (worst-case added latency); `0` disables the fill phase entirely
///   (each request is served with whatever happened to be queued
///   alongside it).
///
/// `queue_depth` bounds memory and tail latency under overload: once
/// the queue holds that many submitted-but-unserved windows,
/// [`Client::try_submit`] sheds load with
/// [`TrySubmitError::Overloaded`] and [`Client::submit`] blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Close a batch once it holds this many requests (≥ 1).
    pub max_batch: usize,
    /// Close a batch this long after its first request arrived, even if
    /// it is not full.
    pub max_delay: Duration,
    /// Bounded submission-queue capacity (≥ 1).
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    /// `max_batch` 64, `max_delay` 200 µs, `queue_depth` 1024 — sized
    /// so a saturated server forms pool-friendly batches while a lone
    /// caller's worst-case added latency stays well under a millisecond.
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(200),
            queue_depth: 1024,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be at least 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be at least 1".into()));
        }
        Ok(())
    }
}

/// Errors surfaced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The backend rejected the model, the configuration, or this
    /// specific window (per-request: other requests in the same batch
    /// are unaffected).
    Backend(BackendError),
    /// The serving configuration is invalid.
    Config(String),
    /// The server has shut down (or its batcher died) before this
    /// request could be answered.
    Closed,
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Backend(e) => write!(f, "backend: {e}"),
            Self::Config(what) => write!(f, "config: {what}"),
            Self::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> Self {
        Self::Backend(e)
    }
}

/// Why a non-blocking submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The bounded queue is full — shed load or retry later. The
    /// rejection is counted in [`ServerStats::rejected`].
    Overloaded,
    /// The server has shut down.
    Closed,
}

impl core::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Overloaded => write!(f, "server queue is full"),
            Self::Closed => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// One queued request: the window, its arrival time, and the one-shot
/// reply channel its [`Ticket`] waits on.
struct Pending {
    window: Vec<Vec<u16>>,
    enqueued: Instant,
    reply: SyncSender<Result<Verdict, ServeError>>,
}

enum Request {
    Classify(Pending),
    /// Shutdown sentinel: serve everything already queued, then exit.
    Drain,
}

/// State shared by the server handle, every client, and the batcher.
struct Shared {
    /// Flips to `false` on shutdown; clients check it before queuing.
    open: AtomicBool,
    recorder: Recorder,
    started: Instant,
}

/// A running serving front-end: one
/// [`BackendSession`](pulp_hd_core::backend::BackendSession) on one
/// batcher thread, fed by any number of [`Client`] handles.
///
/// Dropping the server performs the same graceful shutdown as
/// [`shutdown`](Self::shutdown): queued requests are served, the
/// batcher is joined, and later submissions fail with
/// [`ServeError::Closed`] / [`TrySubmitError::Closed`] (see
/// [`shutdown`](Self::shutdown) for the exact guarantee under races).
#[derive(Debug)]
pub struct Server {
    tx: SyncSender<Request>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
    /// Per-shard traffic counters, when the served session is a
    /// `ShardedSession` and the caller registered its monitor.
    monitor: Option<ShardMonitor>,
}

impl Server {
    /// Prepares `model` on `backend` and starts serving it.
    ///
    /// The session is prepared on the calling thread so backend errors
    /// surface synchronously, then moved onto the batcher thread.
    ///
    /// This constructor validates its [`ServeConfig`] and reports
    /// problems as [`ServeError::Config`] — nothing ever panics
    /// mid-thread. [`try_spawn`](Self::try_spawn) is the same
    /// constructor under the fallible-twin name
    /// (mirroring `FastBackend::try_with_threads`), kept so call sites
    /// can spell out that configuration errors are expected and
    /// handled.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid [`ServeConfig`]
    /// (`max_batch == 0`, `queue_depth == 0`) and
    /// [`ServeError::Backend`] if the backend cannot realize the model.
    pub fn spawn(
        backend: &dyn ExecutionBackend,
        model: &HdModel,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let session = backend.prepare(model)?;
        Self::from_session(session, config)
    }

    /// The fallible-twin name of [`spawn`](Self::spawn), for call sites
    /// that want the `try_` convention of
    /// `FastBackend::try_with_threads` — identical semantics: an
    /// invalid [`ServeConfig`] (`max_batch == 0`, `queue_depth == 0`)
    /// comes back as [`ServeError::Config`] before any thread exists.
    ///
    /// # Errors
    ///
    /// As [`spawn`](Self::spawn).
    pub fn try_spawn(
        backend: &dyn ExecutionBackend,
        model: &HdModel,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::spawn(backend, model, config)
    }

    /// Serves an already-prepared session — the direct hand-off from
    /// one-shot training:
    /// `Server::from_training(trainer, config)` is covered separately;
    /// use this when the session came from
    /// [`ExecutionBackend::prepare`] or a custom construction.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for an invalid [`ServeConfig`].
    pub fn from_session(
        session: Box<dyn BackendSession>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let (tx, rx) = sync_channel(config.queue_depth);
        let shared = Arc::new(Shared {
            open: AtomicBool::new(true),
            recorder: Recorder::new(),
            started: Instant::now(),
        });
        let batcher_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("pulp-hd-serve".into())
            .spawn(move || batcher(session, &rx, &batcher_shared, config))
            .map_err(|e| ServeError::Config(format!("cannot spawn batcher thread: {e}")))?;
        Ok(Self {
            tx,
            shared,
            handle: Some(handle),
            monitor: None,
        })
    }

    /// The fallible-twin name of [`from_session`](Self::from_session) —
    /// identical semantics, see [`try_spawn`](Self::try_spawn).
    ///
    /// # Errors
    ///
    /// As [`from_session`](Self::from_session).
    pub fn try_from_session(
        session: Box<dyn BackendSession>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::from_session(session, config)
    }

    /// Registers the per-shard traffic counters of a served
    /// [`ShardedSession`](pulp_hd_core::backend::ShardedSession):
    /// subsequent [`stats`](Self::stats) snapshots fill
    /// [`ServerStats::shard_windows`] from it, giving the serving layer
    /// per-shard visibility without touching the session mid-flight.
    ///
    /// ```
    /// # use pulp_hd_core::backend::{HdModel, ShardSpec, ShardedBackend};
    /// # use pulp_hd_core::layout::AccelParams;
    /// # use pulp_hd_serve::{ServeConfig, Server};
    /// # let params = AccelParams { n_words: 16, ..AccelParams::emg_default() };
    /// # let model = HdModel::random(&params, 7);
    /// let backend = ShardedBackend::fast(ShardSpec::Batch(2))?;
    /// let session = backend.prepare_sharded(&model)?;
    /// let monitor = session.monitor();
    /// let server = Server::from_session(Box::new(session), ServeConfig::default())?
    ///     .with_shard_monitor(monitor);
    /// assert_eq!(server.stats().shard_windows.len(), 2);
    /// # drop(server.shutdown());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn with_shard_monitor(mut self, monitor: ShardMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Finalizes a training session and serves the trained model on its
    /// own backend — the train → deploy path
    /// ([`TrainingSession::into_serving`]) behind the serving layer.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] if finalization or serving
    /// preparation fails, [`ServeError::Config`] for an invalid
    /// [`ServeConfig`].
    pub fn from_training(
        trainer: Box<dyn TrainingSession>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        Self::from_session(trainer.into_serving()?, config)
    }

    /// A new client handle. Clients are cheap (`Clone` + `Send`), so
    /// hand one to every caller thread.
    #[must_use]
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// A snapshot of the server's telemetry, without stopping traffic.
    /// When a [`ShardMonitor`] is registered
    /// ([`with_shard_monitor`](Self::with_shard_monitor)), the snapshot
    /// includes the windows served per shard.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.shared.recorder.snapshot(self.shared.started.elapsed());
        if let Some(monitor) = &self.monitor {
            stats.shard_windows = monitor.windows();
        }
        stats
    }

    /// Graceful shutdown: stop accepting new requests, serve everything
    /// already queued, join the batcher, and return the final stats.
    ///
    /// Every outstanding [`Ticket`] resolves: tickets queued before
    /// this call (in particular, everything submitted from the calling
    /// thread) get their verdicts; a submission on another thread that
    /// races this call may instead resolve with [`ServeError::Closed`]
    /// — it is never left blocking.
    #[must_use = "the final stats are the server's life's work; ignore explicitly if unwanted"]
    pub fn shutdown(mut self) -> ServerStats {
        self.finish();
        self.stats()
    }

    fn finish(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.open.store(false, Ordering::SeqCst);
            // The blocking send is safe: the batcher only exits after
            // consuming a Drain (or after every sender is gone), so it
            // is still draining the queue ahead of this sentinel. If it
            // panicked instead, the send fails — nothing to drain.
            let _ = self.tx.send(Request::Drain);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

/// A cheap clonable handle for submitting windows to a [`Server`].
#[derive(Debug, Clone)]
pub struct Client {
    tx: SyncSender<Request>,
    shared: Arc<Shared>,
}

impl core::fmt::Debug for Shared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shared")
            .field("open", &self.open)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Submits one window, blocking while the queue is full, and
    /// returns a [`Ticket`] for its verdict.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server has shut down.
    pub fn submit(&self, window: Vec<Vec<u16>>) -> Result<Ticket, ServeError> {
        if !self.shared.open.load(Ordering::SeqCst) {
            return Err(ServeError::Closed);
        }
        let (ticket, pending) = Self::package(window);
        self.tx
            .send(Request::Classify(pending))
            .map_err(|_| ServeError::Closed)?;
        Ok(ticket)
    }

    /// Submits one window without blocking: full queue means
    /// [`TrySubmitError::Overloaded`] (the shed-load backpressure
    /// signal), not a wait.
    ///
    /// # Errors
    ///
    /// Returns [`TrySubmitError::Overloaded`] when the bounded queue is
    /// full, [`TrySubmitError::Closed`] if the server has shut down.
    pub fn try_submit(&self, window: Vec<Vec<u16>>) -> Result<Ticket, TrySubmitError> {
        if !self.shared.open.load(Ordering::SeqCst) {
            return Err(TrySubmitError::Closed);
        }
        let (ticket, pending) = Self::package(window);
        match self.tx.try_send(Request::Classify(pending)) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(_)) => {
                self.shared.recorder.record_rejected();
                Err(TrySubmitError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(TrySubmitError::Closed),
        }
    }

    /// Submit-and-wait: one window in, its [`Verdict`] out. The calling
    /// thread blocks (closed-loop callers self-pace — this is the
    /// backpressure-friendly way to drive the server hard).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] if the backend rejected this
    /// window, [`ServeError::Closed`] if the server shut down first.
    pub fn classify(&self, window: &[Vec<u16>]) -> Result<Verdict, ServeError> {
        self.submit(window.to_vec())?.wait()
    }

    fn package(window: Vec<Vec<u16>>) -> (Ticket, Pending) {
        // Capacity 1 and exactly one send ever: the batcher's reply can
        // never block, and a dropped ticket just discards the verdict.
        let (reply_tx, reply_rx) = sync_channel(1);
        (
            Ticket { reply: reply_rx },
            Pending {
                window,
                enqueued: Instant::now(),
                reply: reply_tx,
            },
        )
    }
}

/// An outstanding request: redeem it with [`wait`](Self::wait).
#[derive(Debug)]
pub struct Ticket {
    reply: Receiver<Result<Verdict, ServeError>>,
}

impl Ticket {
    /// Blocks until this request's verdict is ready.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Backend`] if the backend rejected this
    /// window, [`ServeError::Closed`] if the server shut down (or its
    /// batcher died) before answering.
    pub fn wait(self) -> Result<Verdict, ServeError> {
        self.reply.recv().map_err(|_| ServeError::Closed)?
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// As [`wait`](Self::wait); additionally returns `Ok(None)` — not an
    /// error — when the timeout elapses first (the ticket is consumed,
    /// the verdict is discarded when it arrives).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<Verdict>, ServeError> {
        match self.reply.recv_timeout(timeout) {
            Ok(result) => result.map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }
}

/// Consecutive empty-queue yield rounds after which the fill phase
/// concludes no more traffic is coming and closes the batch. Each round
/// costs one `yield_now` — nanoseconds when nothing else is runnable
/// (the sparse-caller case closes its batch almost instantly), a
/// scheduler slice that lets submitting threads actually reach the
/// queue when the machine is saturated (the crowd case fills the
/// batch).
const FILL_IDLE_ROUNDS: u32 = 8;

/// The batcher loop: block for the first request of a batch, top the
/// batch up (cooperative fill, bounded by `max_batch` and `max_delay`),
/// serve it, repeat — until a [`Request::Drain`] sentinel (graceful
/// shutdown) or channel disconnection (server handle and every client
/// dropped).
fn batcher(
    mut session: Box<dyn BackendSession>,
    rx: &Receiver<Request>,
    shared: &Shared,
    config: ServeConfig,
) {
    let mut pending: Vec<Pending> = Vec::with_capacity(config.max_batch);
    let mut windows: Vec<Vec<Vec<u16>>> = Vec::with_capacity(config.max_batch);
    let mut verdicts: Vec<Verdict> = Vec::with_capacity(config.max_batch);
    loop {
        let mut draining = match rx.recv() {
            Ok(Request::Classify(p)) => {
                pending.push(p);
                false
            }
            Ok(Request::Drain) => true,
            Err(_) => true,
        };
        if !draining {
            // Cooperative fill: sweep everything already queued, and
            // between sweeps yield so threads that are mid-submission
            // get the CPU to finish. Close once the queue stays empty
            // for FILL_IDLE_ROUNDS consecutive yields (no more traffic
            // in flight), at max_batch, or at the max_delay deadline —
            // whichever comes first.
            let deadline = Instant::now() + config.max_delay;
            let mut idle_rounds = 0;
            while pending.len() < config.max_batch && idle_rounds < FILL_IDLE_ROUNDS {
                match rx.try_recv() {
                    Ok(Request::Classify(p)) => {
                        pending.push(p);
                        idle_rounds = 0;
                    }
                    Ok(Request::Drain) | Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        draining = true;
                        break;
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => {
                        // The queue was empty at batch-open (nothing
                        // swept since the blocking recv) — a lone
                        // caller closes after this one sweep instead of
                        // paying the full cooperative yield loop; a
                        // crowd (anything swept) keeps filling.
                        if pending.len() == 1 {
                            break;
                        }
                        if Instant::now() >= deadline {
                            break;
                        }
                        idle_rounds += 1;
                        std::thread::yield_now();
                    }
                }
            }
        }
        serve_batch(
            session.as_mut(),
            &mut pending,
            &mut windows,
            &mut verdicts,
            shared,
        );
        if draining {
            // Serve everything already queued, then exit. Replies to
            // requests that sneak in after the final try_recv are
            // dropped with the channel — their tickets see `Closed`.
            loop {
                match rx.try_recv() {
                    Ok(Request::Classify(p)) => {
                        pending.push(p);
                        if pending.len() == config.max_batch {
                            serve_batch(
                                session.as_mut(),
                                &mut pending,
                                &mut windows,
                                &mut verdicts,
                                shared,
                            );
                        }
                    }
                    Ok(Request::Drain) => {}
                    Err(_) => break,
                }
            }
            serve_batch(
                session.as_mut(),
                &mut pending,
                &mut windows,
                &mut verdicts,
                shared,
            );
            return;
        }
    }
}

/// Serves one closed batch: run `classify_batch` over the collected
/// windows, record telemetry, fan each verdict back to its ticket.
///
/// A batch-level error falls back to per-window classification so the
/// error lands only on the request that caused it — every other ticket
/// in the batch still gets its verdict (bit-identical either way; the
/// core pins `classify_batch` to looped `classify`).
fn serve_batch(
    session: &mut dyn BackendSession,
    pending: &mut Vec<Pending>,
    windows: &mut Vec<Vec<Vec<u16>>>,
    verdicts: &mut Vec<Verdict>,
    shared: &Shared,
) {
    if pending.is_empty() {
        return;
    }
    windows.clear();
    windows.extend(pending.iter_mut().map(|p| std::mem::take(&mut p.window)));
    verdicts.clear();
    let service_start = Instant::now();
    match session.classify_batch_into(windows, verdicts) {
        Ok(()) => {
            shared.recorder.record_batch(service_start.elapsed());
            debug_assert_eq!(verdicts.len(), pending.len());
            for (p, v) in pending.drain(..).zip(verdicts.drain(..)) {
                shared.recorder.record_latency(p.enqueued.elapsed());
                let _ = p.reply.send(Ok(v));
            }
        }
        Err(_) => {
            for (p, w) in pending.drain(..).zip(windows.iter()) {
                let result = session.classify(w).map_err(ServeError::Backend);
                shared.recorder.record_latency(p.enqueued.elapsed());
                let _ = p.reply.send(result);
            }
            shared.recorder.record_batch(service_start.elapsed());
        }
    }
}
