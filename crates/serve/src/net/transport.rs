//! Byte transports: the stream abstraction the net layer reads and
//! writes, plus [`FaultTransport`] — the transport analog of the core's
//! [`FaultBackend`](pulp_hd_core::backend::FaultBackend), injecting
//! deterministic disconnects, truncations, garbage, and stalls on a
//! seeded schedule so the chaos suite can pin the server's and client's
//! behavior under every transport failure mode.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The byte-stream surface the net layer works over: TCP, Unix domain
/// sockets, and chaos wrappers around either. `try_clone_stream` hands
/// the writer half to the responder thread (both halves share one
/// socket), `set_stream_read_timeout` arms the slow-loris defense, and
/// `shutdown_stream` tears the connection down from either half.
pub trait WireStream: Read + Write + Send {
    /// A second handle to the same underlying stream (shared file
    /// description: reads and writes interleave with the original).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the OS-level duplication.
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>>;

    /// Sets the blocking-read timeout (reads then fail with
    /// [`io::ErrorKind::WouldBlock`] / `TimedOut` instead of hanging).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the OS.
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Sets the blocking-write timeout (writes into a full send buffer
    /// then fail with [`io::ErrorKind::WouldBlock`] / `TimedOut`
    /// instead of hanging on a peer that stopped reading).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the OS.
    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;

    /// Closes both directions, waking any thread blocked on the peer
    /// half. Best-effort: errors are ignored (the stream may already be
    /// gone).
    fn shutdown_stream(&self);
}

impl WireStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(timeout)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

impl WireStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_write_timeout(timeout)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// What an injected transport fault does when its scheduled operation
/// arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Kill the connection: the faulted operation fails (writes) or
    /// reports end-of-stream (reads), and every later operation on this
    /// transport fails too.
    Disconnect,
    /// Deliver/send only the first half of the operation's bytes, then
    /// kill the connection — a mid-frame cut.
    Truncate,
    /// XOR the operation's bytes with a seeded pseudo-random mask — a
    /// corrupted-but-delivered frame.
    Garbage,
    /// Sleep this long before performing the operation normally — a
    /// slow peer.
    Stall(Duration),
}

/// A deterministic transport-fault schedule: `(operation index, fault)`
/// entries, counted separately for reads and writes, shared across
/// clones of the wrapped stream (so the reader and writer halves of one
/// connection consume one schedule).
#[derive(Debug, Clone, Default)]
pub struct TransportPlan {
    reads: Vec<(u64, TransportFault)>,
    writes: Vec<(u64, TransportFault)>,
    seed: u64,
}

impl TransportPlan {
    /// An empty schedule (injects nothing) with the given garbage seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Schedules `fault` on the `op`-th read (0-based, counted across
    /// the transport and its clones).
    #[must_use]
    pub fn fault_read(mut self, op: u64, fault: TransportFault) -> Self {
        self.reads.push((op, fault));
        self
    }

    /// Schedules `fault` on the `op`-th write (0-based, counted across
    /// the transport and its clones).
    #[must_use]
    pub fn fault_write(mut self, op: u64, fault: TransportFault) -> Self {
        self.writes.push((op, fault));
        self
    }
}

/// Shared across clones: the plan plus the operation counters and the
/// dead flag.
#[derive(Debug)]
struct FaultState {
    plan: TransportPlan,
    reads: AtomicU64,
    writes: AtomicU64,
    dead: AtomicBool,
}

/// A chaos wrapper around any [`WireStream`]: consults a
/// [`TransportPlan`] before every read/write and injects the scheduled
/// fault. Deterministic given the schedule and the operation order.
#[derive(Debug)]
pub struct FaultTransport<S> {
    inner: S,
    state: Arc<FaultState>,
}

impl<S: WireStream> FaultTransport<S> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: S, plan: TransportPlan) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState {
                plan,
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            }),
        }
    }

    fn kill(&self) {
        // ORDERING: SeqCst kill flag, read by both stream halves on
        // their own threads; a half observing `dead` must also observe
        // every faulted operation that preceded the kill so the chaos
        // schedules stay deterministic.
        self.state.dead.store(true, Ordering::SeqCst);
        self.inner.shutdown_stream();
    }

    /// A deterministic garbage mask byte for (seed, op, index).
    fn mask(seed: u64, op: u64, i: usize) -> u8 {
        let mut x = seed
            .wrapping_add(op.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        // Never zero: every masked byte actually changes.
        (x as u8) | 1
    }

    fn fault_for(entries: &[(u64, TransportFault)], op: u64) -> Option<TransportFault> {
        entries.iter().find(|(at, _)| *at == op).map(|(_, f)| *f)
    }
}

impl<S: WireStream> Read for FaultTransport<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Ok(0);
        }
        // ORDERING: SeqCst — the op counter indexes the fault plan and
        // must be totally ordered with the `dead` flag so cloned halves
        // never replay or skip a scheduled fault.
        let op = self.state.reads.fetch_add(1, Ordering::SeqCst);
        match Self::fault_for(&self.state.plan.reads, op) {
            None => self.inner.read(buf),
            Some(TransportFault::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Some(TransportFault::Disconnect) => {
                self.kill();
                Ok(0)
            }
            Some(TransportFault::Truncate) => {
                let n = self.inner.read(buf)?;
                self.kill();
                Ok(n.div_ceil(2))
            }
            Some(TransportFault::Garbage) => {
                let n = self.inner.read(buf)?;
                let seed = self.state.plan.seed;
                for (i, b) in buf[..n].iter_mut().enumerate() {
                    *b ^= Self::mask(seed, op, i);
                }
                Ok(n)
            }
        }
    }
}

impl<S: WireStream> Write for FaultTransport<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.state.dead.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected transport disconnect",
            ));
        }
        // ORDERING: SeqCst, as for the read counter above.
        let op = self.state.writes.fetch_add(1, Ordering::SeqCst);
        match Self::fault_for(&self.state.plan.writes, op) {
            None => self.inner.write(buf),
            Some(TransportFault::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Some(TransportFault::Disconnect) => {
                self.kill();
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected transport disconnect",
                ))
            }
            Some(TransportFault::Truncate) => {
                let half = buf.len().div_ceil(2);
                let sent = self.inner.write(&buf[..half]);
                let _ = self.inner.flush();
                self.kill();
                sent
            }
            Some(TransportFault::Garbage) => {
                let seed = self.state.plan.seed;
                let masked: Vec<u8> = buf
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b ^ Self::mask(seed, op, i))
                    .collect();
                self.inner.write(&masked)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: CloneableStream + 'static> WireStream for FaultTransport<S> {
    fn try_clone_stream(&self) -> io::Result<Box<dyn WireStream>> {
        Ok(Box::new(Self {
            inner: self.inner.try_clone_typed()?,
            state: Arc::clone(&self.state),
        }))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_stream_read_timeout(timeout)
    }

    fn set_stream_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_stream_write_timeout(timeout)
    }

    fn shutdown_stream(&self) {
        self.kill();
    }
}

/// Typed cloning, so a cloned [`FaultTransport`] keeps sharing its
/// fault state instead of nesting a boxed wrapper. Implemented for the
/// concrete socket types.
pub trait CloneableStream: WireStream + Sized {
    /// A second typed handle to the same stream.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the OS-level duplication.
    fn try_clone_typed(&self) -> io::Result<Self>;
}

impl CloneableStream for TcpStream {
    fn try_clone_typed(&self) -> io::Result<Self> {
        self.try_clone()
    }
}

impl CloneableStream for UnixStream {
    fn try_clone_typed(&self) -> io::Result<Self> {
        self.try_clone()
    }
}
